"""The paper's main construction, end to end.

Takes a pair of promise 3SAT(13) formulas (one satisfiable, one with a
certified MAX-SAT gap), pushes both through the full reduction chain

    3SAT(13)  --Lemma 3-->  CLIQUE  --f_N-->  QO_N

and shows the cost landscape the reduction engineers: the satisfiable
formula's instance has a cheap plan (the Lemma 6 certificate, cost at
most K_{c,d}), while the unsatisfiable formula's instance provably has
none (Lemma 8 floors every plan above K), the gap being a factor
alpha^{Theta(n)} — more than any polylog of the optimal cost.

Costs are evaluated in the log2 domain (the numbers have tens of
thousands of bits).  Runtime ~30s: the query graphs have 528 relations.

Run:  python examples/hardness_gap_demo.py
"""

from fractions import Fraction

from repro.core.chains import hardness_chain_qon
from repro.core.gap import k_cd_log2, polylog_budget_log2
from repro.joinopt.cost import total_cost
from repro.joinopt.optimizers import greedy_min_cost, random_sampling
from repro.sat.gapfamilies import no_instance, yes_instance
from repro.utils.lognum import log2_of


def main() -> None:
    # A matched family: v = 24 variables / m = 64 clauses on both
    # sides, family gap theta = 1/8 (so dn = theta * m = 8).
    theta = Fraction(1, 8)
    yes_formula = yes_instance(24, 64, rng=1)
    no_formula = no_instance(8)  # eight disjoint 8-clause cores

    print("== source formulas ==")
    print(f"YES: {yes_formula.formula}, satisfiable, witness certified")
    print(
        f"NO:  {no_formula.formula}, at most "
        f"{1 - no_formula.theta} of clauses satisfiable (certified)"
    )

    yes_chain = hardness_chain_qon(yes_formula, alpha=4, family_theta=theta)
    no_chain = hardness_chain_qon(no_formula, alpha=4, family_theta=theta)

    fn = yes_chain.fn_step
    print("\n== reduction output (identical parameters on both sides) ==")
    print(f"query graph: n = {fn.n} relations, {fn.graph.num_edges} edges")
    print(f"alpha = {fn.alpha}, relation size t = alpha^{{(c-d/2)n}}")
    print(f"clique promise: k_yes = {fn.k_yes}, k_no = {fn.k_no}")

    print("\n== YES side (satisfiable formula) ==")
    certificate = yes_chain.certificate_sequence
    yes_log = yes_chain.instance.to_log_domain()
    cert_cost = total_cost(yes_log, certificate)
    k_log2 = float(
        k_cd_log2(fn.alpha_log2, log2_of(fn.edge_access_cost), fn.k_yes, fn.k_no)
    )
    print(f"Lemma 6 certificate plan cost:  2^{log2_of(cert_cost):.1f}")
    print(f"K_{{c,d}}(alpha, n) budget:       2^{k_log2:.1f}")

    print("\n== NO side (unsatisfiable formula) ==")
    nf = no_chain.fn_step
    floor_log2 = float(
        k_cd_log2(nf.alpha_log2, log2_of(nf.edge_access_cost), nf.k_yes, nf.k_no)
    ) + ((nf.k_yes - nf.k_no) // 2 - 1) * nf.alpha_log2
    print(f"Lemma 8 floor for EVERY plan:   2^{floor_log2:.1f}")
    no_log = no_chain.instance.to_log_domain()
    heuristic = greedy_min_cost(no_log, max_full_starts=4)
    sampled = random_sampling(no_log, samples=20, rng=1)
    print(f"greedy heuristic actually finds: 2^{log2_of(heuristic.cost):.1f}")
    print(f"best of 20 random plans:         2^{log2_of(sampled.cost):.1f}")

    print("\n== the gap ==")
    print(
        f"best plan found on the NO side sits "
        f"2^{log2_of(heuristic.cost) - log2_of(cert_cost):.1f} above the "
        "YES certificate;"
    )
    print(
        f"even the *provable* floor is 2^{floor_log2 - log2_of(cert_cost):.1f} "
        "above it."
    )
    budget = polylog_budget_log2(k_log2, delta=0.5)
    print(
        f"for scale: a 2^{{log^{{1/2}} K}} competitive ratio would be "
        f"2^{budget:.1f}, and the paper's alpha = 4^{{n^{{1/delta}}}} "
        "scaling drives the floor past every such budget (Theorem 9)."
    )
    print(
        "\nConclusion: a polynomial-time optimizer with a polylog "
        "competitive ratio would decide 3SAT."
    )


if __name__ == "__main__":
    main()
