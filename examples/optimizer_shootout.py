"""Heuristic shootout: competitive ratios, benign vs adversarial.

On ordinary workloads the polynomial-time heuristics stay within small
constant factors of the optimum.  On the paper's gap family the same
heuristics are *provably unable* (Theorem 9) to stay within any
polylogarithmic factor — and measurably blow up.

Both sections fan their optimizer x instance grid through the public
facade (:func:`repro.api.sweep`, backed by the instrumented runner),
so repeated cost evaluations are memoized and the cache/work counters
are printed at the end.

Run:  python examples/optimizer_shootout.py
"""

from statistics import mean

from repro import api
from repro.api import SweepResult
from repro.core.certificates import qon_certificate_sequence
from repro.joinopt.cost import total_cost
from repro.utils.lognum import log2_of
from repro.workloads.gaps import qon_gap_pair

#: (display name, runner registry name) — randomized ones get rng=<seed>.
HEURISTICS = [
    ("greedy-min-cost", "greedy-cost"),
    ("greedy-min-size", "greedy-size"),
    ("iterative-improve", "iterative"),
    ("simulated-anneal", "annealing"),
    ("random-sampling", "sampling"),
]
_SEEDED = {"iterative", "annealing", "sampling"}


def _kwargs_for(name: str, label: str) -> dict:
    if name in _SEEDED:
        return {"rng": int(label.rsplit("-s", 1)[1])}
    return {}


def _report_sweep(section: str, sweep: SweepResult) -> None:
    totals = sweep.cache_totals()
    print(
        f"[{section}] {len(sweep)} tasks in {sweep.wall_time:.2f}s "
        f"({sweep.mode}); plans explored: {sweep.explored_total}; "
        f"cost evaluations: {totals.misses} "
        f"(cache hits: {totals.hits}, hit rate {totals.hit_rate:.1%})"
    )


def benign_section() -> None:
    print("== benign workloads: ratio to the exact optimum (n = 8) ==")
    workloads = ["chain", "cycle", "clique", "random"]
    instances = [
        (f"{label}-s{seed}", api.generate(label, 8, seed=seed))
        for label in workloads
        for seed in range(5)
    ]
    optimizers = ["dp"] + [registry for _, registry in HEURISTICS]
    sweep = api.sweep(
        {
            "optimizers": optimizers,
            "instances": instances,
            "kwargs_for": _kwargs_for,
        },
        workers=1,
    )
    cells = {(o.label, o.optimizer): o.result for o in sweep if o.ok}
    print(f"{'workload':<10}" + "".join(f"{name:>20}" for name, _ in HEURISTICS))
    for label in workloads:
        ratios = {registry: [] for _, registry in HEURISTICS}
        for seed in range(5):
            optimum = cells[(f"{label}-s{seed}", "dp")].cost
            for _, registry in HEURISTICS:
                result = cells[(f"{label}-s{seed}", registry)]
                ratios[registry].append(result.ratio_to(optimum))
        print(
            f"{label:<10}"
            + "".join(
                f"{mean(ratios[registry]):>20.3f}" for _, registry in HEURISTICS
            )
        )
    _report_sweep("benign", sweep)


def adversarial_section() -> None:
    print("\n== the paper's gap family: log2(cost / certificate) ==")
    print("(each unit is a doubling; polylog budgets are single digits)")
    header = f"{'n':>4}{'k_yes':>7}{'k_no':>6}{'floor':>9}"
    header += "".join(f"{name:>20}" for name, _ in HEURISTICS)
    print(header)
    combos = [(8, 6, 2), (10, 8, 2), (12, 9, 3)]
    bounds = {}
    instances = []
    for n, k_yes, k_no in combos:
        pair = qon_gap_pair(n, k_yes, k_no, alpha=4**n)
        certificate = qon_certificate_sequence(pair.yes_reduction, pair.yes_clique)
        cert_log2 = log2_of(total_cost(pair.yes_reduction.instance, certificate))
        floor_log2 = log2_of(pair.no_reduction.no_cost_lower_bound())
        bounds[n] = (cert_log2, floor_log2)
        # Heuristics attack the NO instance (log-domain for speed).
        instances.append((f"gap-n{n}-s0", pair.no_reduction.instance.to_log_domain()))
    sweep = api.sweep(
        {
            "optimizers": [registry for _, registry in HEURISTICS],
            "instances": instances,
            "kwargs_for": _kwargs_for,
        },
        workers=1,
    )
    cells = {(o.label, o.optimizer): o.result for o in sweep if o.ok}
    for n, k_yes, k_no in combos:
        cert_log2, floor_log2 = bounds[n]
        row = f"{n:>4}{k_yes:>7}{k_no:>6}{floor_log2 - cert_log2:>9.1f}"
        for _, registry in HEURISTICS:
            found = cells[(f"gap-n{n}-s0", registry)]
            row += f"{log2_of(found.cost) - cert_log2:>20.1f}"
        print(row)
    print(
        "\nEvery heuristic lands at or above the Lemma 8 floor — no "
        "polynomial algorithm can do better than the floor on NO "
        "instances, which is the hardness gap."
    )
    _report_sweep("adversarial", sweep)


def main() -> None:
    benign_section()
    adversarial_section()


if __name__ == "__main__":
    main()
