"""Heuristic shootout: competitive ratios, benign vs adversarial.

On ordinary workloads the polynomial-time heuristics stay within small
constant factors of the optimum.  On the paper's gap family the same
heuristics are *provably unable* (Theorem 9) to stay within any
polylogarithmic factor — and measurably blow up.

Run:  python examples/optimizer_shootout.py
"""

from statistics import mean

from repro.core.certificates import qon_certificate_sequence
from repro.joinopt.cost import total_cost
from repro.joinopt.optimizers import (
    dp_optimal,
    greedy_min_cost,
    greedy_min_size,
    iterative_improvement,
    random_sampling,
    simulated_annealing,
)
from repro.utils.lognum import log2_of
from repro.workloads.gaps import qon_gap_pair
from repro.workloads.queries import chain_query, clique_query, cycle_query, random_query

HEURISTICS = [
    ("greedy-min-cost", lambda inst, seed: greedy_min_cost(inst)),
    ("greedy-min-size", lambda inst, seed: greedy_min_size(inst)),
    ("iterative-improve", lambda inst, seed: iterative_improvement(inst, rng=seed)),
    ("simulated-anneal", lambda inst, seed: simulated_annealing(inst, rng=seed)),
    ("random-sampling", lambda inst, seed: random_sampling(inst, rng=seed)),
]


def benign_section() -> None:
    print("== benign workloads: ratio to the exact optimum (n = 8) ==")
    workloads = [
        ("chain", chain_query),
        ("cycle", cycle_query),
        ("clique", clique_query),
        ("random", random_query),
    ]
    print(f"{'workload':<10}" + "".join(f"{name:>20}" for name, _ in HEURISTICS))
    for label, factory in workloads:
        ratios = {name: [] for name, _ in HEURISTICS}
        for seed in range(5):
            instance = factory(8, rng=seed)
            optimum = dp_optimal(instance).cost
            for name, run in HEURISTICS:
                ratios[name].append(run(instance, seed).ratio_to(optimum))
        print(
            f"{label:<10}"
            + "".join(f"{mean(ratios[name]):>20.3f}" for name, _ in HEURISTICS)
        )


def adversarial_section() -> None:
    print("\n== the paper's gap family: log2(cost / certificate) ==")
    print("(each unit is a doubling; polylog budgets are single digits)")
    header = f"{'n':>4}{'k_yes':>7}{'k_no':>6}{'floor':>9}"
    header += "".join(f"{name:>20}" for name, _ in HEURISTICS)
    print(header)
    for n, k_yes, k_no in [(8, 6, 2), (10, 8, 2), (12, 9, 3)]:
        pair = qon_gap_pair(n, k_yes, k_no, alpha=4**n)
        certificate = qon_certificate_sequence(pair.yes_reduction, pair.yes_clique)
        cert_log2 = log2_of(total_cost(pair.yes_reduction.instance, certificate))
        floor_log2 = log2_of(pair.no_reduction.no_cost_lower_bound())
        # Heuristics attack the NO instance (log-domain for speed).
        instance = pair.no_reduction.instance.to_log_domain()
        row = f"{n:>4}{k_yes:>7}{k_no:>6}{floor_log2 - cert_log2:>9.1f}"
        for name, run in HEURISTICS:
            found = run(instance, 0)
            row += f"{log2_of(found.cost) - cert_log2:>20.1f}"
        print(row)
    print(
        "\nEvery heuristic lands at or above the Lemma 8 floor — no "
        "polynomial algorithm can do better than the floor on NO "
        "instances, which is the hardness gap."
    )


def main() -> None:
    benign_section()
    adversarial_section()


if __name__ == "__main__":
    main()
