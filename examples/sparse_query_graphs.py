"""Section 6: the hardness survives any edge density.

The dense reductions produce query graphs with ~n²/2 edges, which
might suggest that *sparse* queries — the ones practice actually sees —
could be easier to approximate.  Section 6 closes that door: for any
target edge count e(m) between m + m^tau and the complete graph, the
padded reductions f_{N,e} hit the budget exactly while preserving the
cost gap.  This example builds the padding and measures both halves.

Run:  python examples/sparse_query_graphs.py
"""

import math

from repro.core.reductions.clique_to_qon import clique_to_qon
from repro.core.reductions.sparse import sparse_clique_to_qon
from repro.graphs.generators import complete_graph
from repro.joinopt.optimizers import dp_optimal
from repro.utils.lognum import log2_of
from repro.workloads.gaps import turan_graph


def main() -> None:
    alpha = 4**6
    yes_graph = complete_graph(4)       # omega = 4 (the YES promise)
    no_graph = turan_graph(4, 2)        # omega = 2 (the NO promise)

    print("== structural half: hit any edge budget exactly ==")
    print(f"{'tau':>5}{'m (vertices)':>14}{'e(m) target':>13}{'built':>8}{'connected':>11}")
    for tau in (1.0, 0.5, 0.34):
        reduction = sparse_clique_to_qon(
            yes_graph, k_yes=4, k_no=2, tau=tau, alpha=alpha, rng=0
        )
        m = reduction.m
        target = m + math.ceil(m**tau)
        print(
            f"{tau:>5}{m:>14}{target:>13}{reduction.query_graph.num_edges:>8}"
            f"{str(reduction.query_graph.is_connected()):>11}"
        )

    print("\n== cost half: the gap survives the padding (tau = 1) ==")
    rows = []
    for label, graph in [("YES (K4)", yes_graph), ("NO (Turan)", no_graph)]:
        dense = clique_to_qon(graph, k_yes=4, k_no=2, alpha=alpha)
        padded = sparse_clique_to_qon(
            graph, k_yes=4, k_no=2, tau=1.0, alpha=alpha, rng=1
        )
        dense_opt = dp_optimal(dense.instance)
        padded_opt = dp_optimal(padded.instance, max_relations=16)
        rows.append((label, dense_opt, padded_opt, padded))
        print(
            f"{label:<12} dense optimum 2^{log2_of(dense_opt.cost):.1f}  "
            f"padded optimum 2^{log2_of(padded_opt.cost):.1f}  "
            f"(aux budget alpha^O(1) = 2^{float(padded.aux_perturbation_log2()):.1f})"
        )

    yes_padded = rows[0][2].cost
    no_padded = rows[1][2].cost
    print(
        f"\npadded separation: NO / YES = "
        f"2^{log2_of(no_padded) - log2_of(yes_padded):.1f} — the dense gap, "
        "shifted by at most the auxiliary perturbation."
    )
    print(
        "\nConclusion (Theorems 16/17): only queries with m + o(m^tau) "
        "edges — essentially trees — can escape the hardness, and trees "
        "are exactly the IKKBZ-tractable family."
    )


if __name__ == "__main__":
    main()
