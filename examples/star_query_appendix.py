"""The appendix chain: PARTITION -> SPPCS -> SQO-CP.

Shows the NP-completeness machinery for star queries without cartesian
products (Appendix A/B): a number-partitioning instance becomes a
subset-product problem, which becomes a star-query optimization problem
whose optimal plan encodes the chosen subset in its *join order and
method mix* (nested loops for the subset, sort-merge for the rest).

Run:  python examples/star_query_appendix.py
"""

from repro.core.reductions.partition_to_sppcs import partition_to_sppcs
from repro.core.reductions.sppcs_to_sqocp import sppcs_to_sqocp
from repro.starqo.instance import JoinMethod
from repro.starqo.optimizer import best_plan
from repro.starqo.partition import PartitionInstance, find_partition, has_partition
from repro.starqo.sppcs import SPPCSInstance, sppcs_best_subset


def main() -> None:
    print("== step 0: PARTITION ==")
    yes_values = [10, 10]
    no_values = [10, 6]
    for values in (yes_values, no_values):
        instance = PartitionInstance(values)
        witness = find_partition(instance)
        print(
            f"{values}: partitionable = {has_partition(instance)}"
            + (f", witness indices {witness}" if witness else "")
        )

    print("\n== step 1: PARTITION -> SPPCS (repaired Appendix A.5) ==")
    construction = partition_to_sppcs(PartitionInstance(yes_values))
    sppcs = construction.instance
    print(
        f"SPPCS items (p_i bits, c_i bits): "
        f"{[(p.bit_length(), c.bit_length()) for p, c in sppcs.pairs]}"
    )
    best_value, subset = sppcs_best_subset(sppcs)
    print(
        f"optimal subset {subset}: objective meets bound? "
        f"{best_value <= sppcs.bound}"
    )

    print("\n== step 2: SPPCS -> SQO-CP (Appendix B) ==")
    # A small hand-made SPPCS instance keeps the star query readable.
    pairs = [(2, 2), (2, 3), (3, 1)]
    optimum, best_subset = sppcs_best_subset(SPPCSInstance(pairs, 0))
    print(f"SPPCS pairs {pairs}: optimum objective {optimum} at {best_subset}")
    reduction = sppcs_to_sqocp(SPPCSInstance(pairs, optimum))
    instance = reduction.instance
    print(
        f"star query: R0 (central) + {instance.num_satellites} satellites, "
        f"k_s = {instance.sort_passes}"
    )

    cost, plan = best_plan(instance)
    print(f"optimal plan cost <= threshold M? {cost <= reduction.threshold}")
    names = {JoinMethod.NESTED_LOOPS: "NL", JoinMethod.SORT_MERGE: "SM"}
    steps = [
        f"R{plan.sequence[i + 1]}[{names[plan.methods[i]]}]"
        for i in range(len(plan.methods))
    ]
    print(f"plan: R{plan.sequence[0]} -> " + " -> ".join(steps))

    anchor = instance.num_satellites  # R_{m+1} in paper numbering
    boundary = plan.sequence.index(anchor)
    encoded = sorted(s - 1 for s in plan.sequence[1:boundary])
    print(
        f"subset encoded by the plan (satellites before R_{anchor}): "
        f"{encoded} -> objective "
        f"{SPPCSInstance(pairs, 0).objective(encoded)} (= optimum)"
    )

    print("\n== step 2 on a NO instance ==")
    reduction_no = sppcs_to_sqocp(SPPCSInstance(pairs, optimum - 1))
    cost_no, _ = best_plan(reduction_no.instance)
    print(
        f"bound tightened to {optimum - 1}: optimal plan cost <= M? "
        f"{cost_no <= reduction_no.threshold}"
    )
    print(
        "\nConclusion (Appendix B): deciding SQO-CP plan cost <= M "
        "decides SPPCS, hence PARTITION — SQO-CP is NP-complete."
    )


if __name__ == "__main__":
    main()
