"""Is the paper's cost model physically meaningful?

Materializes synthetic relations engineered so the model's cardinality
estimates are exact (mixed-radix join-attribute assignment), runs the
plans on a real nested-loops executor, and compares:

* predicted intermediate sizes N_i vs measured output rows;
* predicted join costs H_i vs measured index-probe work;
* the model-optimal plan vs the model-worst plan in *measured* work.

Also prints the EXPLAIN rendering of the optimal plan.

Run:  python examples/cost_model_validation.py
"""

import itertools
from fractions import Fraction

from repro.engine import execute_sequence, generate_database
from repro.engine.data import harmonize_sizes
from repro.joinopt.cost import intermediate_sizes, join_costs, total_cost
from repro.joinopt.explain import explain
from repro.joinopt.optimizers import dp_optimal
from repro.workloads.queries import random_query


def main() -> None:
    instance = harmonize_sizes(
        random_query(5, rng=7, size_min=4, size_max=40, domain_min=2, domain_max=6)
    )
    database = generate_database(instance)
    print(
        f"query graph: {instance.graph}; sizes {list(instance.sizes)}; "
        f"{database.total_rows()} synthetic rows materialized "
        f"(exactness guaranteed: {database.exact})"
    )

    plan = dp_optimal(instance)
    print("\n== optimal plan (model) ==")
    print(explain(instance, plan.sequence))

    trace = execute_sequence(database, plan.sequence)
    predicted_n = intermediate_sizes(instance, plan.sequence)
    predicted_h = join_costs(instance, plan.sequence)
    print("\n== model vs measured, join by join ==")
    print(f"{'join':<6}{'N model':>10}{'N real':>10}{'H model':>10}{'H real':>10}")
    for index, join in enumerate(trace.joins):
        print(
            f"J_{index + 1:<4}{str(predicted_n[index]):>10}"
            f"{join.output_rows:>10}{str(predicted_h[index]):>10}"
            f"{join.probe_rows:>10}"
        )

    print("\n== does the model's ranking transfer? ==")
    sequences = list(itertools.permutations(range(5)))
    best = min(sequences, key=lambda z: total_cost(instance, z))
    worst = max(sequences, key=lambda z: total_cost(instance, z))
    work_best = execute_sequence(database, best).total_probe_rows
    work_worst = execute_sequence(database, worst).total_probe_rows
    print(f"model-optimal plan:  {work_best} probe rows measured")
    print(f"model-worst plan:    {work_worst} probe rows measured")
    print(f"real-work ratio:     {work_worst / max(1, work_best):.1f}x")
    print(
        "\nThe estimates the hardness theorems reason about are the "
        "physical truth on these instances — the gap is about real work."
    )


if __name__ == "__main__":
    main()
