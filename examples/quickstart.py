"""Quickstart: model a join-ordering problem and optimize it.

Builds a five-relation query, runs the exact optimizers and the
polynomial-time heuristics, and prints a comparison — the basic
workflow of the library.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro.graphs import Graph
from repro.joinopt import (
    QONInstance,
    dp_optimal,
    exhaustive_optimal,
    greedy_min_cost,
    greedy_min_size,
    ikkbz,
    iterative_improvement,
    random_sampling,
    simulated_annealing,
    total_cost,
)


def main() -> None:
    # A five-relation chain query: the classic tractable topology.
    #
    #   customers - orders - lineitems - parts - suppliers
    #
    # Vertices are relations; edges are join predicates with their
    # selectivities; sizes are in pages (one tuple = one page, as in
    # the paper's model).
    graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    sizes = [1_000, 20_000, 150_000, 5_000, 500]
    selectivities = {
        (0, 1): Fraction(1, 1_000),   # orders.customer_id = customers.id
        (1, 2): Fraction(1, 20_000),  # lineitems.order_id = orders.id
        (2, 3): Fraction(1, 5_000),   # lineitems.part_id = parts.id
        (3, 4): Fraction(1, 500),     # parts.supplier_id = suppliers.id
    }
    instance = QONInstance(graph, sizes, selectivities)

    print("Query graph:", instance)
    print(f"{'optimizer':<24}{'cost':>16}  sequence")
    optimizers = [
        exhaustive_optimal,
        dp_optimal,
        ikkbz,  # polynomial and exact: the query graph is a tree
        greedy_min_cost,
        greedy_min_size,
        lambda inst: iterative_improvement(inst, rng=0),
        lambda inst: simulated_annealing(inst, rng=0),
        lambda inst: random_sampling(inst, rng=0),
    ]
    optimal_cost = None
    for optimize in optimizers:
        result = optimize(instance)
        if result.is_exact and optimal_cost is None:
            optimal_cost = result.cost
        ratio = ""
        if optimal_cost is not None:
            ratio = f"  ({result.ratio_to(optimal_cost):.3f}x optimal)"
        print(
            f"{result.optimizer:<24}{str(result.cost):>16}  "
            f"{result.sequence}{ratio}"
        )

    # Every result can be re-checked against the cost model directly.
    best = dp_optimal(instance)
    assert total_cost(instance, best.sequence) == best.cost
    print("\nOptimal join sequence verified against the cost model.")


if __name__ == "__main__":
    main()
