"""Pipelined hash joins under a memory budget (the QO_H model).

Shows the Section 2.2 execution model on a concrete query: pipeline
decompositions, the optimal memory split within a pipeline (Lemma 10),
and the f_H reduction's trick of sizing one relation so large that it
is pinned to the head of every feasible plan.

Run:  python examples/pipelined_hash_joins.py
"""

from fractions import Fraction

from repro.graphs import Graph
from repro.hashjoin import (
    HashJoinCostModel,
    Pipeline,
    PipelineDecomposition,
    QOHInstance,
    best_decomposition,
    decomposition_cost,
    qoh_greedy,
    qoh_optimal,
)
from repro.hashjoin.pipeline import pipeline_allocation


def main() -> None:
    # A five-relation snowflake: facts joined to four dimensions.
    graph = Graph(5, [(0, 1), (0, 2), (0, 3), (3, 4)])
    sizes = [50_000, 400, 900, 1_600, 100]
    selectivities = {
        (0, 1): Fraction(1, 400),
        (0, 2): Fraction(1, 900),
        (0, 3): Fraction(1, 1_600),
        (3, 4): Fraction(1, 100),
    }
    memory = 2_000  # pages shared by each pipeline
    instance = QOHInstance(graph, sizes, selectivities, memory=memory)
    model: HashJoinCostModel = instance.model

    print("Relations (pages):", sizes, "| memory per pipeline:", memory)
    print(
        "hjmin per relation:",
        [model.hjmin(b) for b in sizes],
        "(hjmin(b) = ceil(sqrt(b)))",
    )

    sequence = (0, 1, 2, 3, 4)
    print(f"\nFixed sequence {sequence}: decomposition choices")
    for label, decomposition in [
        ("single pipeline", PipelineDecomposition.single(4)),
        ("fully materialized", PipelineDecomposition.fully_materialized(4)),
        ("split after join 2", PipelineDecomposition.from_breaks(4, [2])),
    ]:
        cost = decomposition_cost(instance, sequence, decomposition)
        print(f"  {label:<22} cost = {cost}")
    best = best_decomposition(instance, sequence)
    breaks = [p.last_join for p in best.decomposition.pipelines[:-1]]
    print(f"  optimal (DP)           cost = {best.cost}, breaks after {breaks}")

    print("\nLemma 10 in action: memory split inside the full pipeline")
    allocation = pipeline_allocation(instance, sequence, Pipeline(1, 4))
    for index, (share, cost) in enumerate(
        zip(allocation.allocation, allocation.join_costs), start=1
    ):
        starved = " (starved: pays hybrid-hash partitioning)" if index - 1 in allocation.starved else ""
        print(f"  join {index}: {share} pages, h = {cost}{starved}")

    print("\nFull plan search")
    optimal = qoh_optimal(instance)
    greedy = qoh_greedy(instance)
    print(f"  exhaustive optimum: cost {optimal.cost}, sequence {optimal.sequence}")
    print(f"  greedy heuristic:   cost {greedy.cost}, sequence {greedy.sequence}")

    # The f_H pinning trick: make relation 0 so large that hjmin(t0)
    # exceeds the memory budget — it can then never be an inner.
    giant = QOHInstance(
        graph,
        [memory * memory * 4] + sizes[1:],
        selectivities,
        memory=memory,
    )
    plan = qoh_optimal(giant)
    print(
        "\nWith t0 inflated past the memory budget, every feasible plan "
        f"starts with relation 0: optimal sequence = {plan.sequence}"
    )


if __name__ == "__main__":
    main()
