"""Setup shim: enables `python setup.py develop` in offline environments
where the `wheel` package (required by PEP 660 editable installs) is
unavailable.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
