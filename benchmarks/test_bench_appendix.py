"""EXP-A / EXP-B: the appendix chain, measured.

* EXP-A — PARTITION -> SPPCS: the *repaired* construction (module
  docstring of ``partition_to_sppcs``) agrees with ground truth on a
  randomized suite; the construction printed in the extended abstract
  is measured too and shown NOT to separate (its proof lives in an
  unavailable tech report and its constants are OCR-damaged).
* EXP-B — SPPCS -> SQO-CP: exhaustive plan search agrees with the
  SPPCS decision on both sides of the threshold.
* The composed chain PARTITION -> SPPCS -> SQO-CP on tiny instances.
"""

import pytest

from benchmarks._tables import emit_table
from repro.core.reductions.partition_to_sppcs import (
    partition_to_sppcs,
    partition_to_sppcs_verbatim,
)
from repro.core.reductions.sppcs_to_sqocp import sppcs_to_sqocp
from repro.starqo.optimizer import best_plan
from repro.starqo.partition import PartitionInstance, has_partition
from repro.starqo.sppcs import SPPCSInstance, sppcs_best_subset, sppcs_decide
from repro.workloads.gaps import partition_suite


def test_partition_to_sppcs_table(benchmark):
    def build():
        suite = partition_suite(10, 4, value_range=20, rng=0)
        rows = []
        agree_repaired = 0
        agree_verbatim = 0
        for instance, truth in suite:
            repaired = sppcs_decide(partition_to_sppcs(instance).instance)
            verbatim = sppcs_decide(
                partition_to_sppcs_verbatim(instance).instance
            )
            agree_repaired += repaired == truth
            agree_verbatim += verbatim == truth
            rows.append(
                (
                    list(instance.values),
                    truth,
                    repaired,
                    verbatim,
                )
            )
        rows.append(("agreement", f"{len(suite)}/{len(suite)}",
                     f"{agree_repaired}/{len(suite)}",
                     f"{agree_verbatim}/{len(suite)}"))
        table = emit_table(
            "EXP-A",
            "PARTITION -> SPPCS: ground truth vs repaired vs printed-verbatim",
            ["values", "partition?", "repaired SPPCS", "verbatim SPPCS"],
            rows,
        )
        assert agree_repaired == len(suite)
        return table

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_sppcs_to_sqocp_table(benchmark):
    def build():
        cases = [
            [(2, 1), (3, 2)],
            [(2, 2), (2, 3), (3, 1)],
            [(4, 1), (2, 5)],
            [(2, 1), (2, 1), (2, 1)],
            [(5, 2), (2, 9)],
        ]
        rows = []
        for pairs in cases:
            optimum, _ = sppcs_best_subset(SPPCSInstance(pairs, 0))
            for bound, expected in [(optimum, True), (optimum - 1, False)]:
                reduction = sppcs_to_sqocp(SPPCSInstance(pairs, bound))
                cost, _ = best_plan(reduction.instance)
                got = cost <= reduction.threshold
                rows.append(
                    (
                        pairs,
                        bound,
                        expected,
                        got,
                        "OK" if got == expected else "VIOLATED",
                    )
                )
        return emit_table(
            "EXP-B",
            "SPPCS -> SQO-CP: plan-cost decision vs SPPCS decision",
            ["pairs", "L", "SPPCS <= L", "plan <= M", "verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "VIOLATED" not in table


def test_full_chain_table(benchmark):
    def build():
        rows = []
        for values in ([10, 10], [10, 6], [4, 4], [8, 2]):
            instance = PartitionInstance(values)
            truth = has_partition(instance)
            sppcs = partition_to_sppcs(instance).instance
            reduction = sppcs_to_sqocp(sppcs)
            cost, _ = best_plan(reduction.instance)
            got = cost <= reduction.threshold
            rows.append(
                (values, truth, got, "OK" if got == truth else "VIOLATED")
            )
        return emit_table(
            "EXP-A",
            "Full chain PARTITION -> SPPCS -> SQO-CP (exhaustive plan search)",
            ["values", "partition?", "plan <= M", "verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "VIOLATED" not in table


def test_bench_partition_to_sppcs(benchmark):
    instance = PartitionInstance([12, 8, 6, 10])
    benchmark(lambda: partition_to_sppcs(instance))


def test_bench_sppcs_solver(benchmark):
    instance = partition_to_sppcs(PartitionInstance([12, 8, 6, 10])).instance
    benchmark(lambda: sppcs_best_subset(instance))


def test_bench_star_plan_search(benchmark):
    reduction = sppcs_to_sqocp(SPPCSInstance([(2, 2), (2, 3), (3, 1)], 5))
    benchmark(lambda: best_plan(reduction.instance))
