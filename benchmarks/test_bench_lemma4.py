"""EXP-L4: Lemma 4 — the 3SAT -> 2/3-CLIQUE gap, measured.

Paper claim: satisfiable formulas map to graphs with a clique of
exactly 2n/3 vertices; formulas with a theta MAX-SAT gap map to graphs
whose largest clique is at most (2 - eps) n / 3 with
eps = 3 * theta * m / n.
"""

import pytest

from benchmarks._tables import emit_table
from repro.core.reductions.sat_to_two_thirds_clique import (
    sat_to_two_thirds_clique,
)
from repro.graphs.clique import max_clique_size
from repro.sat.gapfamilies import no_instance, yes_instance


@pytest.fixture(scope="module")
def measurements():
    family = [
        ("YES v=3 m=6", yes_instance(3, 6, rng=0)),
        ("YES v=4 m=8", yes_instance(4, 8, rng=1)),
        ("NO  1 core", no_instance(1)),
        ("NO  2 cores", no_instance(2)),
    ]
    rows = []
    for label, gap in family:
        reduction = sat_to_two_thirds_clique(gap)
        omega = max_clique_size(reduction.graph)
        n = reduction.graph.num_vertices
        if gap.satisfiable:
            claim = f"omega = 2n/3 = {reduction.target}"
            holds = omega == reduction.target
            epsilon = "-"
        else:
            claim = f"omega <= {reduction.clique_bound_if_gap}"
            holds = omega <= reduction.clique_bound_if_gap
            epsilon = str(reduction.epsilon)
        rows.append((label, n, reduction.target, omega, epsilon, claim,
                     "OK" if holds else "VIOLATED"))
    return rows


def test_lemma4_gap_table(measurements, benchmark):
    table = benchmark.pedantic(
        lambda: emit_table(
            "EXP-L4",
            "Lemma 4: SAT->2/3-CLIQUE promise vs exact omega",
            ["family", "n", "2n/3", "omega(exact)", "eps", "paper claim", "verdict"],
            measurements,
        ),
        rounds=1,
        iterations=1,
    )
    assert "VIOLATED" not in table


def test_lemma4_divisibility(measurements, benchmark):
    """The construction always lands on n divisible by 3 (needed by
    f_H's n/3 pipelines)."""

    def check():
        for _, n, target, *_ in measurements:
            assert n % 3 == 0
            assert target == 2 * n // 3

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_bench_reduction_build(benchmark):
    gap = yes_instance(4, 8, rng=2)
    benchmark(lambda: sat_to_two_thirds_clique(gap))
