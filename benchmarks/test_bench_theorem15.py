"""EXP-L11/L13/T15: the QO_H hardness gap (Theorem 15), measured.

* Lemma 11: along the certificate sequence the materialized
  intermediates N_1, N_{n/3}, N_{2n/3}, N_{n-1}, N_n are all O(L);
* Lemma 13: on clique-free instances the mid-sequence intermediates
  N_{n/3+j} are Omega(G);
* Theorem 15: exact YES/NO separation at n = 6 (exhaustive), and
  certificate-vs-search separation at n = 9, 12;
* ablation: the five-pipeline certificate decomposition vs single
  pipeline vs fully materialized.
"""

from fractions import Fraction

import pytest

from benchmarks._tables import emit_table
from repro.core.certificates import qoh_certificate_plan
from repro.hashjoin.optimizer import best_decomposition, qoh_optimal
from repro.hashjoin.pipeline import PipelineDecomposition, decomposition_cost
from repro.utils.lognum import log2_of
from repro.utils.rng import make_rng
from repro.workloads.gaps import qoh_gap_pair


@pytest.fixture(scope="module")
def pair6():
    return qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)


def test_lemma11_intermediates_table(pair6, benchmark):
    def build():
        reduction = pair6.yes_reduction
        n = reduction.n
        plan = qoh_certificate_plan(reduction, pair6.yes_clique)
        sizes = reduction.instance.intermediate_sizes(plan.sequence)
        l_log2 = float(reduction.l_bound_log2())
        rows = []
        for label, index in [
            ("N_1", 1),
            (f"N_{n // 3}", n // 3),
            (f"N_{2 * n // 3}", 2 * n // 3),
            (f"N_{n - 1}", n - 1),
            (f"N_{n}", n),
        ]:
            value = float(log2_of(sizes[index]))
            rows.append(
                (
                    label,
                    f"{value:.1f}",
                    f"{l_log2:.1f}",
                    "OK" if value <= l_log2 + 2 else "VIOLATED",
                )
            )
        return emit_table(
            "EXP-T15",
            "Lemma 11: materialized intermediates are O(L) on the YES side (n=6)",
            ["intermediate", "log2 size", "log2 L", "verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "VIOLATED" not in table


def test_lemma13_no_side_intermediates(pair6, benchmark):
    """On the NO instance, the mid-sequence intermediates exceed the
    YES-side L bound for every feasible sequence prefix we sample."""

    def check():
        reduction = pair6.no_reduction
        n = reduction.n
        l_log2 = float(pair6.yes_reduction.l_bound_log2())
        rng = make_rng(0)
        for _ in range(50):
            order = [0] + [1 + v for v in rng.sample(range(n), n)]
            sizes = reduction.instance.intermediate_sizes(order)
            mid = min(
                float(log2_of(sizes[n // 3 + j])) for j in range(1, n // 3 + 1)
            )
            assert mid >= l_log2 - 2

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_theorem15_exact_separation_table(pair6, benchmark):
    def build():
        yes_plan = qoh_optimal(pair6.yes_reduction.instance)
        no_plan = qoh_optimal(pair6.no_reduction.instance)
        cert = qoh_certificate_plan(pair6.yes_reduction, pair6.yes_clique)
        rows = [
            (
                "YES (K6 source)",
                f"{log2_of(yes_plan.cost):.1f}",
                f"{log2_of(cert.cost):.1f}",
                f"{float(pair6.yes_reduction.l_bound_log2()):.1f}",
            ),
            (
                "NO (Turan source)",
                f"{log2_of(no_plan.cost):.1f}",
                "-",
                f"{float(pair6.no_reduction.g_bound_log2()):.1f}",
            ),
        ]
        table = emit_table(
            "EXP-T15",
            "Theorem 15 exact (n=6, alpha=4^6): log2 optimum vs certificate vs bound",
            ["side", "optimum", "certificate", "L / G bound"],
            rows,
        )
        assert no_plan.cost > yes_plan.cost
        return table

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_decomposition_ablation_table(pair6, benchmark):
    def build():
        reduction = pair6.yes_reduction
        cert = qoh_certificate_plan(reduction, pair6.yes_clique)
        sequence = cert.sequence
        n = reduction.n
        rows = []
        candidates = [
            ("five-pipeline (Lemma 12)", cert.decomposition),
            ("single pipeline", PipelineDecomposition.single(n)),
            ("fully materialized", PipelineDecomposition.fully_materialized(n)),
        ]
        best = best_decomposition(reduction.instance, sequence)
        for label, decomposition in candidates:
            cost = decomposition_cost(reduction.instance, sequence, decomposition)
            rows.append(
                (
                    label,
                    f"{log2_of(cost):.1f}" if cost is not None else "infeasible",
                )
            )
        rows.append(("optimal (DP over breaks)", f"{log2_of(best.cost):.1f}"))
        return emit_table(
            "EXP-T15",
            "Ablation: decomposition strategies on the certificate sequence (n=6)",
            ["decomposition", "log2 cost"],
            rows,
        )

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_search_scale_table(benchmark):
    """n = 9, 12: YES certificate vs the best NO plan that greedy, beam
    search, annealing and random sampling can find between them."""

    def build():
        from repro.runtime.costcache import CostCache, use_cache
        from repro.runtime.runner import grid_tasks, run_sweep
        from repro.hashjoin.search import cached_best_decomposition

        searcher_kwargs = {
            "qoh-greedy": {},
            "qoh-beam": {"beam_width": 8, "rng": 1},
            "qoh-annealing": {"steps_per_temperature": 4, "rng": 1},
        }
        rows = []
        for n in (9, 12):
            pair = qoh_gap_pair(n, Fraction(1, 2), alpha=4**n)
            cert = qoh_certificate_plan(pair.yes_reduction, pair.yes_clique)
            instance = pair.no_reduction.instance
            sweep = run_sweep(
                grid_tasks(
                    list(searcher_kwargs),
                    [(f"no-n{n}", instance)],
                    kwargs_for=lambda name, _label: searcher_kwargs[name],
                ),
                workers=1,
            )
            candidates = [o.result for o in sweep if o.ok]
            rng = make_rng(1)
            with use_cache(CostCache()):
                for _ in range(20):
                    order = [0] + [1 + v for v in rng.sample(range(n), n)]
                    candidates.append(
                        cached_best_decomposition(instance, tuple(order))
                    )
            costs = [plan.cost for plan in candidates if plan is not None]
            no_found = min(costs)
            gap = log2_of(no_found) - log2_of(cert.cost)
            rows.append(
                (
                    n,
                    f"{log2_of(cert.cost):.1f}",
                    f"{log2_of(no_found):.1f}",
                    f"{gap:+.1f}",
                    "OK" if gap > 0 else "NO SEPARATION",
                )
            )
        return emit_table(
            "EXP-T15",
            "Theorem 15 at search scale: YES certificate vs best NO plan found",
            ["n", "YES cert (log2)", "NO best found (log2)", "gap (doublings)", "verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "NO SEPARATION" not in table


def test_bench_decomposition_dp(pair6, benchmark):
    sequence = tuple(range(7))
    benchmark(lambda: best_decomposition(pair6.yes_reduction.instance, sequence))


def test_bench_qoh_exhaustive(pair6, benchmark):
    benchmark.pedantic(
        lambda: qoh_optimal(pair6.no_reduction.instance), rounds=1, iterations=1
    )
