"""EXP-T16/T17: the sparse-query-graph reductions (Section 6), measured.

Paper claim: for any tau in (0, 1], padding with an auxiliary graph
meets an exact edge budget e(m) in [m + m^tau, m(m-1)/2 - m^tau] while
preserving the QO_N / QO_H gaps up to an alpha^{O(1)} perturbation.

We verify (a) the structural half exactly — vertex count m = n^k, edge
count == e(m), connectivity — and (b) the cost half by comparing the
padded instances' certificate/search costs against the unpadded ones.
"""

import math
from fractions import Fraction

import pytest

from benchmarks._tables import emit_table
from repro.core.reductions.clique_to_qon import clique_to_qon
from repro.core.reductions.sparse import (
    sparse_clique_to_qoh,
    sparse_clique_to_qon,
)
from repro.graphs.generators import complete_graph
from repro.joinopt.optimizers import dp_optimal, greedy_min_cost
from repro.utils.lognum import log2_of
from repro.workloads.gaps import turan_graph


def test_sparse_fn_structure_table(benchmark):
    def build():
        rows = []
        for tau in (1.0, 0.5):
            for n in (3, 4):
                reduction = sparse_clique_to_qon(
                    complete_graph(n), k_yes=n, k_no=2 - (n % 2),
                    tau=tau, alpha=4**6, rng=0,
                )
                m = reduction.m
                target = m + math.ceil(m**tau)
                graph = reduction.query_graph
                ok = (
                    graph.num_edges == target
                    and graph.is_connected()
                    and m == n**reduction.k
                )
                rows.append(
                    (
                        tau,
                        n,
                        reduction.k,
                        m,
                        target,
                        graph.num_edges,
                        "OK" if ok else "VIOLATED",
                    )
                )
        return emit_table(
            "EXP-T16",
            "f_{N,e}: exact edge budgets e(m) = m + ceil(m^tau)",
            ["tau", "n", "k", "m = n^k", "e(m) target", "edges built", "verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "VIOLATED" not in table


def test_sparse_fn_gap_preserved_table(benchmark):
    """Exact check at n=3, k=2 (9-relation query): the padded YES
    optimum still sits below the padded NO optimum, and both stay
    within the auxiliary perturbation budget of the unpadded optima."""

    def build():
        alpha = 4**6
        rows = []
        for label, graph, k_yes, k_no in [
            ("YES (K4)", complete_graph(4), 4, 2),
            ("NO (Turan 4/2)", turan_graph(4, 2), 4, 2),
        ]:
            dense = clique_to_qon(graph, k_yes, k_no, alpha=alpha)
            sparse = sparse_clique_to_qon(
                graph, k_yes, k_no, tau=1.0, alpha=alpha, rng=1
            )
            dense_opt = dp_optimal(dense.instance)
            sparse_opt = dp_optimal(sparse.instance, max_relations=16)
            slack = float(sparse.aux_perturbation_log2())
            drift = abs(log2_of(sparse_opt.cost) - log2_of(dense_opt.cost))
            rows.append(
                (
                    label,
                    f"{log2_of(dense_opt.cost):.1f}",
                    f"{log2_of(sparse_opt.cost):.1f}",
                    f"{drift:.1f}",
                    f"{slack:.1f}",
                    "OK" if drift <= slack else "VIOLATED",
                )
            )
        # Gap preserved: padded NO above padded YES.
        yes_row, no_row = rows
        assert float(no_row[2]) > float(yes_row[2])
        return emit_table(
            "EXP-T16",
            "f_{N,e}: padded vs dense optima (exact DP, alpha=4^6, tau=1)",
            ["side", "dense opt", "padded opt", "drift", "alpha^{O(1)} budget", "verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "VIOLATED" not in table


def test_sparse_fh_structure_table(benchmark):
    def build():
        rows = []
        for tau in (1.0, 0.5):
            reduction = sparse_clique_to_qoh(
                complete_graph(3), tau=tau, alpha=4**4, rng=2
            )
            m = reduction.m
            target = m + math.ceil(m**tau)
            graph = reduction.query_graph
            ok = graph.num_edges == target and graph.is_connected()
            rows.append(
                (
                    tau,
                    reduction.n,
                    m,
                    target,
                    graph.num_edges,
                    "OK" if ok else "VIOLATED",
                )
            )
        return emit_table(
            "EXP-T17",
            "f_{H,e}: exact edge budgets for the QO_H padding",
            ["tau", "n", "m", "e(m) target", "edges built", "verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "VIOLATED" not in table


def test_sparse_fh_hub_pinned(benchmark):
    """The f_{H,e} padding keeps the reduction's key mechanism: the hub
    can still never be an inner relation."""

    def check():
        from repro.hashjoin.optimizer import is_feasible_sequence

        reduction = sparse_clique_to_qoh(
            complete_graph(3), tau=0.5, alpha=4**4, rng=3
        )
        instance = reduction.instance
        order = list(range(instance.num_relations))
        assert is_feasible_sequence(instance, order)
        assert not is_feasible_sequence(instance, [1, 0] + order[2:])

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_bench_sparse_fn_build(benchmark):
    benchmark(
        lambda: sparse_clique_to_qon(
            complete_graph(3), k_yes=3, k_no=1, tau=0.5, alpha=4**6, rng=4
        )
    )


def test_bench_greedy_on_padded(benchmark):
    reduction = sparse_clique_to_qon(
        complete_graph(4), k_yes=4, k_no=2, tau=0.5, alpha=4**6, rng=5
    )
    instance = reduction.instance.to_log_domain()
    benchmark(lambda: greedy_min_cost(instance, max_full_starts=4))
