"""Table emission for the benchmark harness.

Each experiment prints its paper-vs-measured table and also writes it
to ``benchmarks/results/<experiment>.txt`` so the numbers survive
pytest's output capture.  EXPERIMENTS.md is the curated summary of
these files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def emit_table(
    experiment: str,
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Print the table and persist it under benchmarks/results/."""
    text = format_table(title, headers, rows)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    if experiment in _written_this_run:
        path.write_text(path.read_text() + text + "\n\n")
    else:
        path.write_text(text + "\n\n")
        _written_this_run.add(experiment)
    return text


_written_this_run: set[str] = set()
