"""EXP-SCALE: why approximation matters — exact optimization explodes.

The paper's motivation: exact join ordering is exponential (n! plans,
2^n DP states).  We measure plans explored and wall time for the exact
optimizers against the polynomial heuristics across n, and ablate
exhaustive-with-pruning vs subset DP.
"""

import time

import pytest

from benchmarks._tables import emit_table
from repro.joinopt.optimizers import (
    branch_and_bound,
    dp_optimal,
    exhaustive_optimal,
    greedy_min_cost,
)
from repro.workloads.queries import random_query


def test_scaling_table(benchmark):
    def build():
        rows = []
        for n in (5, 7, 9, 11):
            instance = random_query(n, rng=n)
            timings = {}
            explored = {}
            for name, run in [
                ("exhaustive", lambda: exhaustive_optimal(instance)),
                ("branch&bound", lambda: branch_and_bound(instance)),
                ("subset DP", lambda: dp_optimal(instance)),
                ("greedy", lambda: greedy_min_cost(instance)),
            ]:
                start = time.perf_counter()
                result = run()
                timings[name] = time.perf_counter() - start
                explored[name] = result.explored
            rows.append(
                (
                    n,
                    explored["exhaustive"],
                    f"{timings['exhaustive'] * 1e3:.1f}",
                    explored["branch&bound"],
                    f"{timings['branch&bound'] * 1e3:.1f}",
                    explored["subset DP"],
                    f"{timings['subset DP'] * 1e3:.1f}",
                    explored["greedy"],
                    f"{timings['greedy'] * 1e3:.1f}",
                )
            )
        return emit_table(
            "EXP-SCALE",
            "Exact vs heuristic optimizer work (plans/states explored, ms)",
            ["n", "exh. expl", "exh. ms", "B&B expl", "B&B ms",
             "DP expl", "DP ms", "greedy expl", "greedy ms"],
            rows,
        )

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_dp_always_matches_exhaustive(benchmark):
    """Ablation sanity: both exact algorithms agree on every seed."""

    def check():
        for seed in range(6):
            instance = random_query(7, rng=seed)
            exact = exhaustive_optimal(instance).cost
            assert dp_optimal(instance).cost == exact
            assert branch_and_bound(instance).cost == exact

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.parametrize("n", [6, 8, 10])
def test_bench_exhaustive(benchmark, n):
    instance = random_query(n, rng=n)
    benchmark.pedantic(
        lambda: exhaustive_optimal(instance), rounds=3, iterations=1
    )


@pytest.mark.parametrize("n", [6, 10, 14])
def test_bench_dp(benchmark, n):
    instance = random_query(n, rng=n)
    benchmark.pedantic(lambda: dp_optimal(instance), rounds=3, iterations=1)


@pytest.mark.parametrize("n", [10, 20, 40])
def test_bench_greedy(benchmark, n):
    instance = random_query(n, rng=n)
    benchmark(lambda: greedy_min_cost(instance))
