"""EXP-SCALE: why approximation matters — exact optimization explodes.

The paper's motivation: exact join ordering is exponential (n! plans,
2^n DP states).  We measure plans explored and wall time for the exact
optimizers against the polynomial heuristics across n, and ablate
exhaustive-with-pruning vs subset DP.
"""

import pytest

from benchmarks._tables import emit_table
from repro.joinopt.optimizers import (
    branch_and_bound,
    dp_optimal,
    exhaustive_optimal,
    greedy_min_cost,
)
from repro.runtime.runner import grid_tasks, run_sweep
from repro.workloads.queries import random_query

#: table column label -> runner registry name
SCALING_OPTIMIZERS = [
    ("exhaustive", "exhaustive"),
    ("branch&bound", "bnb"),
    ("subset DP", "dp"),
    ("greedy", "greedy-cost"),
]


def test_scaling_table(benchmark):
    def build():
        instances = [
            (f"n{n}", random_query(n, rng=n)) for n in (5, 7, 9, 11)
        ]
        sweep = run_sweep(
            grid_tasks([reg for _, reg in SCALING_OPTIMIZERS], instances),
            workers=1,  # serial: one shared cache, deterministic timings
        )
        cells = {(o.label, o.optimizer): o for o in sweep}
        rows = []
        for label, _ in instances:
            n = int(label[1:])
            row = [n]
            for _, registry_name in SCALING_OPTIMIZERS:
                outcome = cells[(label, registry_name)]
                assert outcome.ok, outcome.error
                row.append(outcome.explored)
                row.append(f"{outcome.wall_time * 1e3:.1f}")
            rows.append(tuple(row))
        return emit_table(
            "EXP-SCALE",
            "Exact vs heuristic optimizer work (plans/states explored, ms)",
            ["n", "exh. expl", "exh. ms", "B&B expl", "B&B ms",
             "DP expl", "DP ms", "greedy expl", "greedy ms"],
            rows,
        )

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_dp_always_matches_exhaustive(benchmark):
    """Ablation sanity: both exact algorithms agree on every seed."""

    def check():
        for seed in range(6):
            instance = random_query(7, rng=seed)
            exact = exhaustive_optimal(instance).cost
            assert dp_optimal(instance).cost == exact
            assert branch_and_bound(instance).cost == exact

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.parametrize("n", [6, 8, 10])
def test_bench_exhaustive(benchmark, n):
    instance = random_query(n, rng=n)
    benchmark.pedantic(
        lambda: exhaustive_optimal(instance), rounds=3, iterations=1
    )


@pytest.mark.parametrize("n", [6, 10, 14])
def test_bench_dp(benchmark, n):
    instance = random_query(n, rng=n)
    benchmark.pedantic(lambda: dp_optimal(instance), rounds=3, iterations=1)


@pytest.mark.parametrize("n", [10, 20, 40])
def test_bench_greedy(benchmark, n):
    instance = random_query(n, rng=n)
    benchmark(lambda: greedy_min_cost(instance))
