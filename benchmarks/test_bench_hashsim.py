"""EXP-HMODEL: the abstract h(m, b_R, b_S) vs mechanical hybrid-hash I/O.

The QO_H cost function is an abstraction; the page-level simulator
derives I/O from spill mechanics.  This experiment sweeps the memory
axis and compares the two: identical endpoints (one scan when the
inner is resident; Theta(b_R + b_S) at minimum memory), both linear
and decreasing in between, correlation ~1.
"""

import pytest

from benchmarks._tables import emit_table
from repro.analysis import fit_power_law
from repro.engine.hashsim import model_join_cost, simulate_hash_join
from repro.hashjoin.cost_model import HashJoinCostModel


def test_memory_sweep_table(benchmark):
    def build():
        model = HashJoinCostModel()
        inner, outer = 400, 1600
        floor = model.hjmin(inner)
        rows = []
        points = []
        for step in range(6):
            memory = floor + (inner - floor) * step // 5
            abstract = model_join_cost(model, memory, outer, inner)
            mechanical = simulate_hash_join(memory, outer, inner).total_io
            points.append((float(abstract), float(mechanical)))
            rows.append(
                (
                    memory,
                    f"{float(abstract):.0f}",
                    f"{float(mechanical):.0f}",
                    f"{float(mechanical) / float(abstract):.2f}",
                )
            )
        # Pearson correlation across the sweep.
        n = len(points)
        mean_a = sum(a for a, _ in points) / n
        mean_m = sum(m for _, m in points) / n
        cov = sum((a - mean_a) * (m - mean_m) for a, m in points)
        var_a = sum((a - mean_a) ** 2 for a, _ in points) ** 0.5
        var_m = sum((m - mean_m) ** 2 for _, m in points) ** 0.5
        correlation = cov / (var_a * var_m)
        rows.append(("corr", f"{correlation:.4f}", "-", "-"))
        table = emit_table(
            "EXP-HMODEL",
            "Abstract h vs mechanical hybrid-hash I/O (b_S=400, b_R=1600)",
            ["memory", "h (model)", "io (simulated)", "ratio"],
            rows,
        )
        assert correlation > 0.999
        return table

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_endpoints_agree(benchmark):
    def check():
        model = HashJoinCostModel()
        for inner, outer in [(100, 50), (256, 4096), (1000, 1000)]:
            # Resident inner: both are exactly one scan.
            assert (
                simulate_hash_join(inner, outer, inner).total_io
                == model_join_cost(model, inner, outer, inner)
                == inner
            )
            # Starved inner: both are Theta(b_R + b_S).
            floor = model.hjmin(inner)
            simulated = float(simulate_hash_join(floor, outer, inner).total_io)
            abstract = float(model_join_cost(model, floor, outer, inner))
            scale = inner + outer
            assert scale / 2 <= simulated <= 3 * scale
            assert scale / 2 <= abstract <= 3 * scale

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_bench_simulator(benchmark):
    benchmark(lambda: simulate_hash_join(123, 5000, 400))
