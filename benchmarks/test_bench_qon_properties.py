"""EXP-L5 / EXP-L7: structural lemmas of the QO_N analysis, measured.

* Lemma 5: on an f_N instance without cartesian products, the join
  costs decay by at least a factor alpha^... >= 2 per step beyond
  position cn (we measure the per-step decay exponent).
* Lemma 7: |E| <= n(n-1)/2 - n + omega — measured against Turan
  graphs, where both sides are known in closed form.
"""

import pytest

from benchmarks._tables import emit_table
from repro.core.certificates import qon_certificate_sequence
from repro.core.reductions.clique_to_qon import clique_to_qon
from repro.graphs.generators import complete_graph
from repro.graphs.properties import lemma7_edge_bound
from repro.joinopt.cost import join_costs
from repro.utils.lognum import log2_of
from repro.workloads.gaps import turan_graph


@pytest.fixture(scope="module")
def decay_profile():
    """Join-cost decay along the Lemma 6 certificate of K_30."""
    graph = complete_graph(30)
    reduction = clique_to_qon(graph, k_yes=28, k_no=2, alpha=4)
    sequence = qon_certificate_sequence(reduction, list(range(28)))
    costs = join_costs(reduction.instance, sequence)
    logs = [log2_of(c) for c in costs]
    return reduction, logs


def test_lemma5_decay_table(decay_profile, benchmark):
    def build():
        reduction, logs = decay_profile
        c_position = reduction.k_yes
        rows = []
        for i in range(len(logs) - 1):
            region = "clique" if i + 1 < c_position else "tail (Lemma 5)"
            rows.append((i + 1, f"{logs[i]:.1f}", f"{logs[i + 1] - logs[i]:+.1f}", region))
        return emit_table(
            "EXP-L5",
            "Lemma 5: log2 H_i profile along the certificate (K_30, alpha=4)",
            ["join i", "log2 H_i", "step", "region"],
            rows[::3],  # thin the table for readability
        )

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_lemma5_tail_halves(decay_profile, benchmark):
    """Beyond position cn every step decays by >= 1 doubling."""

    def check():
        reduction, logs = decay_profile
        for i in range(reduction.k_yes, len(logs) - 1):
            assert logs[i + 1] <= logs[i] - 1.0

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_lemma7_turan_table(benchmark):
    def build():
        rows = []
        for n, parts in [(9, 3), (12, 4), (15, 5), (20, 4)]:
            graph = turan_graph(n, parts)
            bound = lemma7_edge_bound(n, parts)
            rows.append(
                (
                    f"T({n},{parts})",
                    parts,
                    graph.num_edges,
                    bound,
                    "OK" if graph.num_edges <= bound else "VIOLATED",
                )
            )
        return emit_table(
            "EXP-L7",
            "Lemma 7: |E| <= n(n-1)/2 - n + omega on Turan graphs",
            ["graph", "omega", "|E|", "bound", "verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "VIOLATED" not in table


def test_bench_join_costs_kernel(benchmark):
    graph = complete_graph(24)
    reduction = clique_to_qon(graph, k_yes=22, k_no=2, alpha=4)
    sequence = qon_certificate_sequence(reduction, list(range(22)))
    benchmark(lambda: join_costs(reduction.instance, sequence))
