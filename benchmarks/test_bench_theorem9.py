"""EXP-L6/L8/T9: the QO_N hardness gap (Theorem 9), measured.

Three layers:

1. exact small scale (n <= 10): the YES certificate stays below
   K_{c,d} *computed exactly*, and the exhaustive/DP optimum of the
   matched NO instance stays above the Lemma 8 floor;
2. certificate scale (n up to 60, log domain): certificate cost vs K,
   floor vs best heuristic plan on the NO side;
3. the asymptotic table: log K = Theta(n^2 log alpha) and the gap
   exponent vs the 2^{log^{1-delta} K} budget, as delta shrinks.
"""

import pytest

from benchmarks._tables import RESULTS_DIR, emit_table
from repro.core.certificates import qon_certificate_sequence
from repro.core.gap import (
    default_alpha_exponent,
    exceeds_every_polylog,
    gap_factor_log2,
    k_cd_log2,
    polylog_budget_log2,
)
from repro.joinopt.cost import total_cost
from repro.joinopt.optimizers import dp_optimal, greedy_min_cost
from repro.observability import counter_totals, hot_span, validate_trace
from repro.runtime.metrics import sweep_metrics, validate_metrics, write_metrics
from repro.runtime.runner import grid_tasks, run_sweep
from repro.utils.lognum import log2_of
from repro.workloads.gaps import qon_gap_pair


def test_exact_small_scale_table(benchmark):
    def build():
        combos = [(8, 6, 2), (9, 7, 3), (10, 8, 2)]
        pairs = {
            n: qon_gap_pair(n, k_yes, k_no, alpha=4)
            for n, k_yes, k_no in combos
        }
        sweep = run_sweep(
            grid_tasks(
                ["dp"],
                [(f"no-n{n}", pairs[n].no_reduction.instance) for n, _, _ in combos],
            ),
            workers=1,
        )
        no_optima = {o.label: o.result.cost for o in sweep if o.ok}
        rows = []
        for n, k_yes, k_no in combos:
            pair = pairs[n]
            cert = qon_certificate_sequence(pair.yes_reduction, pair.yes_clique)
            yes_cost = total_cost(pair.yes_reduction.instance, cert)
            k_bound = pair.yes_reduction.yes_cost_bound()
            no_cost = no_optima[f"no-n{n}"]
            floor = pair.no_reduction.no_cost_lower_bound()
            ok = yes_cost <= k_bound and no_cost >= floor and no_cost > yes_cost
            rows.append(
                (
                    n,
                    k_yes,
                    k_no,
                    f"{log2_of(yes_cost):.1f}",
                    f"{log2_of(k_bound):.1f}",
                    f"{log2_of(no_cost):.1f}",
                    f"{log2_of(floor):.1f}",
                    "OK" if ok else "VIOLATED",
                )
            )
        return emit_table(
            "EXP-T9",
            "Theorem 9 exact (alpha=4): log2 of certificate / K / NO-optimum / floor",
            ["n", "k_yes", "k_no", "cert", "K_{c,d}", "NO opt", "floor", "verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "VIOLATED" not in table


def test_cached_sweep_ablation_table(benchmark):
    """The Theorem 9 grid through the cached runner: identical results,
    measurably fewer cost evaluations, hit-rate > 0, metrics emitted,
    and a traced "where did the time go" attribution per task."""

    def build():
        # n = 8 keeps the exhaustive baseline fast: pruning cannot help
        # on the complete gap graph, so n = 9 would cost ~9! evaluations.
        instances = []
        for n, k_yes, k_no in [(8, 6, 2)]:
            pair = qon_gap_pair(n, k_yes, k_no, alpha=4)
            instances.append((f"yes-n{n}", pair.yes_reduction.instance))
            instances.append((f"no-n{n}", pair.no_reduction.instance))
        optimizers = ["dp", "bnb", "exhaustive"]
        tasks = grid_tasks(optimizers, instances)
        cached = run_sweep(tasks, workers=1, cache=True, trace=True)
        baseline = run_sweep(tasks, workers=1, cache=False)

        # Identical sweeps produce identical tables.
        for with_cache, without in zip(cached, baseline):
            assert with_cache.ok and without.ok
            assert with_cache.result.cost == without.result.cost
            assert with_cache.result.sequence == without.result.sequence
        totals = cached.cache_totals()
        assert totals.hits > 0
        assert cached.evaluations < baseline.evaluations

        payload = sweep_metrics(
            cached,
            grid={
                "experiment": "EXP-T9-ablation",
                "optimizers": optimizers,
                "instances": [label for label, _ in instances],
                "baseline_evaluations": baseline.evaluations,
            },
        )
        validate_metrics(payload)
        write_metrics(payload, RESULTS_DIR / "EXP-T9-metrics.json")

        # "Where did the time go": per-task wall-clock share from the
        # span trace; the counters must agree with the runner exactly.
        records = cached.trace_records()
        validate_trace(records)
        assert counter_totals(records)["cost_evaluations"] == (
            cached.evaluations
        )
        wall = records[0]["duration_s"] or 1.0
        share_of = {
            (r["attrs"]["label"], r["attrs"]["optimizer"]):
                r["duration_s"] / wall
            for r in records if r["name"] == "task"
        }

        rows = []
        for label, _ in instances:
            for name in optimizers:
                outcome = next(
                    o for o in cached
                    if o.label == label and o.optimizer == name
                )
                rows.append(
                    (
                        label,
                        name,
                        f"{log2_of(outcome.result.cost):.1f}",
                        outcome.explored,
                        outcome.cache.hits,
                        outcome.cache.misses,
                        f"{share_of[(label, name)]:.1%}",
                    )
                )
        saved = baseline.evaluations - cached.evaluations
        hot = hot_span(records)
        rows.append(
            (
                "TOTAL",
                f"{cached.evaluations} vs {baseline.evaluations} evals",
                "-",
                cached.explored_total,
                totals.hits,
                f"{totals.misses} (saved {saved})",
                f"hot: {hot[0]}" if hot else "-",
            )
        )
        return emit_table(
            "EXP-T9",
            "Theorem 9 grid through the cached runner (alpha=4): "
            "cache ablation vs uncached baseline, with traced time shares",
            ["instance", "optimizer", "log2 cost", "explored", "hits",
             "misses", "% wall"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "TOTAL" in table


def test_certificate_scale_table(benchmark):
    def build():
        rows = []
        for n in (20, 40, 60):
            k_yes, k_no = n - 4, 4 if (n - 4 + 4) % 2 == 0 else 5
            pair = qon_gap_pair(n, k_yes, k_no, alpha=4**n)
            cert = qon_certificate_sequence(pair.yes_reduction, pair.yes_clique)
            log_instance = pair.yes_reduction.instance.to_log_domain()
            cert_log2 = log2_of(total_cost(log_instance, cert))
            fn = pair.yes_reduction
            k_log2 = float(
                k_cd_log2(
                    fn.alpha_log2, log2_of(fn.edge_access_cost), fn.k_yes, fn.k_no
                )
            )
            no_log = pair.no_reduction.instance.to_log_domain()
            heuristic_log2 = log2_of(greedy_min_cost(no_log).cost)
            floor_log2 = k_log2 + float(
                gap_factor_log2(fn.alpha_log2, fn.k_yes, fn.k_no)
            )
            ok = cert_log2 <= k_log2 + 1 and heuristic_log2 >= floor_log2
            rows.append(
                (
                    n,
                    f"{cert_log2:.0f}",
                    f"{k_log2:.0f}",
                    f"{floor_log2:.0f}",
                    f"{heuristic_log2:.0f}",
                    "OK" if ok else "VIOLATED",
                )
            )
        return emit_table(
            "EXP-T9",
            "Theorem 9 at certificate scale (alpha=4^n, log2 costs)",
            ["n", "cert", "K_{c,d}", "Lemma 8 floor", "greedy on NO", "verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "VIOLATED" not in table


def test_asymptotic_budget_table(benchmark):
    """log K = Theta(n^2 log alpha); gap vs polylog budgets as delta
    shrinks — the quantitative content of Theorem 9's conclusion."""

    def build():
        rows = []
        for n in (24, 48, 96):
            for delta in (1.0, 0.5):
                alpha_log2 = default_alpha_exponent(n, delta)
                k_yes, k_no = n - 2, n // 3 + (n - 2 - n // 3) % 2
                w_log2 = alpha_log2 * ((k_yes + k_no) // 2 - 1)
                k_log2 = float(k_cd_log2(alpha_log2, w_log2, k_yes, k_no))
                gap_log2 = float(gap_factor_log2(alpha_log2, k_yes, k_no))
                budget = polylog_budget_log2(k_log2, delta=0.5)
                rows.append(
                    (
                        n,
                        delta,
                        f"{k_log2:.3g}",
                        f"{k_log2 / (n * n * alpha_log2):.3f}",
                        f"{gap_log2:.3g}",
                        f"{budget:.3g}",
                        "gap wins" if gap_log2 > budget else "budget wins",
                    )
                )
        return emit_table(
            "EXP-T9",
            "Theorem 9 asymptotics: log2 K, its n^2 log alpha ratio, gap vs 2^{log^{1/2} K}",
            ["n", "delta", "log2 K", "log2K/(n^2 lg a)", "gap (log2)", "budget (log2)", "winner"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    # With delta = 0.5 the gap must beat the log^{1/2} budget at n >= 48.
    assert table.count("gap wins") >= 2


def test_gap_exceeds_every_polylog(benchmark):
    def check():
        n = 96
        alpha_log2 = default_alpha_exponent(n, 0.5)
        k_yes, k_no = n - 2, n // 3 + (n - 2 - n // 3) % 2
        w_log2 = alpha_log2 * ((k_yes + k_no) // 2 - 1)
        k_log2 = k_cd_log2(alpha_log2, w_log2, k_yes, k_no)
        gap_log2 = gap_factor_log2(alpha_log2, k_yes, k_no)
        assert exceeds_every_polylog(gap_log2, k_log2)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_bench_dp_on_gap_instance(benchmark):
    pair = qon_gap_pair(9, 7, 3, alpha=4)
    benchmark(lambda: dp_optimal(pair.no_reduction.instance))


def test_bench_certificate_cost_log_domain(benchmark):
    pair = qon_gap_pair(40, 36, 4, alpha=4**40)
    cert = qon_certificate_sequence(pair.yes_reduction, pair.yes_clique)
    instance = pair.yes_reduction.instance.to_log_domain()
    benchmark(lambda: total_cost(instance, cert))
