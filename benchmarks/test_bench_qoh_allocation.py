"""EXP-L10: optimal pipeline memory allocation (Lemma 10), measured.

Paper claim, for M = (n/3 - 1) t + 2 hjmin(t):

* pipelines with <= n/3 - 1 joins: all hash tables resident, cost
  O(N_{i-1} + N_k);
* pipelines with n/3 joins: exactly one join starved (the smallest
  outer), adding one O(N_{j-1} + t) term;
* pipelines with n/3 + 1 joins: exactly two starved joins.
"""

import pytest

from benchmarks._tables import emit_table
from repro.core.reductions.clique_to_qoh import clique_to_qoh
from repro.graphs.generators import complete_graph
from repro.hashjoin.allocation import allocate_memory
from repro.hashjoin.pipeline import Pipeline, pipeline_allocation


@pytest.fixture(scope="module")
def reduction():
    return clique_to_qoh(complete_graph(9), alpha=4**9)


def test_lemma10_starvation_table(reduction, benchmark):
    def build():
        sequence = tuple(range(10))
        n = 9
        rows = []
        cases = [
            ("n/3 - 1 joins", Pipeline(2, 2 + n // 3 - 2)),
            ("n/3 joins", Pipeline(2, 2 + n // 3 - 1)),
            ("n/3 + 1 joins", Pipeline(2, 2 + n // 3)),
        ]
        for label, pipeline in cases:
            allocation = pipeline_allocation(reduction.instance, sequence, pipeline)
            expected = {
                "n/3 - 1 joins": 0,
                "n/3 joins": 1,
                "n/3 + 1 joins": 2,
            }[label]
            starved = len(allocation.starved) if allocation else "infeasible"
            rows.append(
                (
                    label,
                    pipeline.num_joins,
                    starved,
                    expected,
                    "OK" if starved == expected else "VIOLATED",
                )
            )
        return emit_table(
            "EXP-L10",
            "Lemma 10: starved joins per pipeline length (n=9, M=(n/3-1)t+2hjmin)",
            ["pipeline", "#joins", "starved (measured)", "starved (paper)", "verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "VIOLATED" not in table


def test_lemma10_starves_smallest_outers(reduction, benchmark):
    def check():
        sequence = tuple(range(10))
        pipeline = Pipeline(2, 2 + 9 // 3)  # n/3 + 1 joins
        allocation = pipeline_allocation(reduction.instance, sequence, pipeline)
        outers = reduction.instance.intermediate_sizes(sequence)
        pipeline_outers = [
            outers[j - 1] for j in range(pipeline.first_join, pipeline.last_join + 1)
        ]
        starved_outers = {pipeline_outers[i] for i in allocation.starved}
        fed_outers = {
            pipeline_outers[i]
            for i in range(pipeline.num_joins)
            if i not in allocation.starved
        }
        assert max(starved_outers) <= min(fed_outers)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_bench_allocator(benchmark, reduction):
    from fractions import Fraction

    t = reduction.satellite_size
    outers = [Fraction(10**k) for k in range(3, 9)]
    inners = [t] * 6
    benchmark(
        lambda: allocate_memory(
            reduction.instance.model, outers, inners, reduction.instance.memory * 3
        )
    )
