"""EXP-MODEL: the cost model vs ground-truth execution.

The paper's results are about the *estimated* cost C(Z).  This
experiment closes the loop: synthetic relations are materialized so
the estimates should be exact (mixed-radix attribute assignment), a
real nested-loops executor runs the plans, and the measured work is
compared against N_i and H_i — confirming that optimizing the model
optimizes something physically meaningful.
"""

from fractions import Fraction

import pytest

from benchmarks._tables import emit_table
from repro.engine import execute_sequence, generate_database
from repro.engine.data import harmonize_sizes
from repro.joinopt.cost import intermediate_sizes, join_costs, total_cost
from repro.joinopt.optimizers import dp_optimal, greedy_min_cost
from repro.utils.lognum import log2_of
from repro.workloads.queries import chain_query, cycle_query, random_query


def _small(factory, n, seed):
    instance = factory(n, rng=seed, size_min=4, size_max=40, domain_min=2, domain_max=6)
    return harmonize_sizes(instance)


def test_model_vs_truth_table(benchmark):
    def build():
        rows = []
        for label, factory, n, seed in [
            ("chain", chain_query, 5, 0),
            ("cycle", cycle_query, 5, 1),
            ("random", random_query, 5, 2),
        ]:
            instance = _small(factory, n, seed)
            database = generate_database(instance)
            plan = dp_optimal(instance)
            trace = execute_sequence(database, plan.sequence)
            predicted_n = intermediate_sizes(instance, plan.sequence)
            measured_n = [join.output_rows for join in trace.joins]
            predicted_h = join_costs(instance, plan.sequence)
            measured_h = [join.probe_rows for join in trace.joins]
            n_exact = all(
                Fraction(m) == p for m, p in zip(measured_n, predicted_n)
            )
            h_exact = all(
                Fraction(m) == p for m, p in zip(measured_h, predicted_h)
            )
            rows.append(
                (
                    label,
                    database.exact,
                    trace.result_rows,
                    str(predicted_n[-1]),
                    "exact" if n_exact else "drift",
                    "exact" if h_exact else "drift",
                )
            )
        return emit_table(
            "EXP-MODEL",
            "Cost model vs real execution (harmonized synthetic data)",
            ["workload", "guaranteed", "|result| measured", "|result| model",
             "N_i", "H_i"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "drift" not in table


def test_plan_choice_transfers_to_real_work(benchmark):
    """The model-optimal plan does less *measured* probe work than the
    model-worst plan — the model's ordering is physically meaningful."""

    def check():
        import itertools

        instance = _small(random_query, 5, 3)
        database = generate_database(instance)
        sequences = list(itertools.permutations(range(5)))
        model_best = min(sequences, key=lambda z: total_cost(instance, z))
        model_worst = max(sequences, key=lambda z: total_cost(instance, z))
        work_best = execute_sequence(database, model_best).total_probe_rows
        work_worst = execute_sequence(database, model_worst).total_probe_rows
        assert work_best <= work_worst

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_heuristic_vs_optimal_measured(benchmark):
    def build():
        rows = []
        for seed in range(3):
            instance = _small(random_query, 5, 10 + seed)
            database = generate_database(instance)
            optimal = dp_optimal(instance)
            heuristic = greedy_min_cost(instance)
            optimal_work = execute_sequence(
                database, optimal.sequence
            ).total_probe_rows
            heuristic_work = execute_sequence(
                database, heuristic.sequence
            ).total_probe_rows
            rows.append(
                (
                    seed,
                    optimal_work,
                    heuristic_work,
                    f"{heuristic_work / max(1, optimal_work):.3f}",
                )
            )
        return emit_table(
            "EXP-MODEL",
            "Measured probe work: exact optimizer vs greedy heuristic",
            ["seed", "optimal work", "greedy work", "ratio"],
            rows,
        )

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_bench_generation(benchmark):
    instance = _small(random_query, 6, 4)
    benchmark(lambda: generate_database(instance))


def test_bench_execution(benchmark):
    instance = _small(chain_query, 6, 5)
    database = generate_database(instance)
    plan = dp_optimal(instance)
    benchmark(lambda: execute_sequence(database, plan.sequence))
