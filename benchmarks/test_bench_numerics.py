"""Numerics ablation: exact big-int/Fraction costs vs log2-domain.

The hardness instances manipulate numbers with thousands of bits; the
library supports both exact arithmetic (default) and a log2-domain
float representation.  This bench quantifies the trade:

* agreement — the log-domain exponent matches the exact one to float
  precision, and plan *rankings* agree;
* speed — log-domain cost evaluation is orders of magnitude faster on
  large instances.
"""

import itertools

import pytest

from benchmarks._tables import emit_table
from repro.core.certificates import qon_certificate_sequence
from repro.joinopt.cost import total_cost
from repro.utils.lognum import log2_of
from repro.workloads.gaps import qon_gap_pair
from repro.workloads.queries import random_query


def test_agreement_table(benchmark):
    def build():
        rows = []
        for n, alpha_exp in [(8, 8), (12, 24), (16, 32)]:
            pair = qon_gap_pair(n, n - 2, 2, alpha=4**alpha_exp)
            cert = qon_certificate_sequence(pair.yes_reduction, pair.yes_clique)
            exact = total_cost(pair.yes_reduction.instance, cert)
            logged = total_cost(pair.yes_reduction.instance.to_log_domain(), cert)
            exact_log2 = log2_of(exact)
            error = abs(exact_log2 - logged.log2)
            rows.append(
                (
                    n,
                    f"4^{alpha_exp}",
                    f"{exact_log2:.3f}",
                    f"{logged.log2:.3f}",
                    f"{error:.2e}",
                    "OK" if error < 1e-6 * max(1.0, exact_log2) else "DRIFT",
                )
            )
        return emit_table(
            "EXP-NUM",
            "Exact vs log-domain certificate cost (log2 exponents)",
            ["n", "alpha", "exact", "log-domain", "abs err", "verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "DRIFT" not in table


def test_ranking_agreement(benchmark):
    """Plan orderings agree between the two representations."""

    def check():
        instance = random_query(6, rng=3)
        logged = instance.to_log_domain()
        plans = list(itertools.permutations(range(6)))[:120]
        exact_order = sorted(plans, key=lambda z: total_cost(instance, z))
        log_order = sorted(plans, key=lambda z: total_cost(logged, z).log2)
        # Identical up to float ties: compare cost sequences.
        exact_costs = [total_cost(instance, z) for z in exact_order]
        log_costs = [total_cost(instance, z) for z in log_order]
        assert exact_costs == log_costs

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def big_pair():
    return qon_gap_pair(40, 36, 4, alpha=4**40)


def test_bench_exact_cost_big(benchmark, big_pair):
    cert = qon_certificate_sequence(big_pair.yes_reduction, big_pair.yes_clique)
    instance = big_pair.yes_reduction.instance
    benchmark.pedantic(lambda: total_cost(instance, cert), rounds=3, iterations=1)


def test_bench_log_cost_big(benchmark, big_pair):
    cert = qon_certificate_sequence(big_pair.yes_reduction, big_pair.yes_clique)
    instance = big_pair.yes_reduction.instance.to_log_domain()
    benchmark(lambda: total_cost(instance, cert))
