"""EXP-HEUR: the paper's implication, measured.

Theorem 9 says no polynomial-time algorithm can guarantee a
competitive ratio within any polylog of the optimum.  We drive the
library's polynomial heuristics over (a) benign workloads, where they
sit within small constant factors of the exact optimum, and (b) the
gap family, where every plan they find is provably (Lemma 8) at least
alpha^{dn/2 - 1} above the YES-side cost — far beyond the polylog
budget already at modest n.
"""

from statistics import mean

import pytest

from benchmarks._tables import emit_table
from repro.core.certificates import qon_certificate_sequence
from repro.core.gap import polylog_budget_log2
from repro.joinopt.cost import total_cost
from repro.joinopt.optimizers import greedy_min_cost, simulated_annealing
from repro.runtime.runner import grid_tasks, run_sweep
from repro.utils.lognum import log2_of
from repro.workloads.gaps import qon_gap_pair
from repro.workloads.queries import chain_query, clique_query, cycle_query, random_query

#: (table column, runner registry name, seed-independent kwargs).  The
#: randomized heuristics additionally get ``rng=<seed>`` per cell.
HEURISTICS = [
    ("greedy-min-cost", "greedy-cost", {}),
    ("greedy-min-size", "greedy-size", {}),
    ("iter-improve", "iterative", {"restarts": 5}),
    ("sim-anneal", "annealing", {}),
    ("sampling", "sampling", {"samples": 100}),
    ("genetic", "genetic", {"generations": 15}),
]
_SEEDED = {"iterative", "annealing", "sampling", "genetic"}
_EXTRA = {registry: extra for _, registry, extra in HEURISTICS}


def _heuristic_kwargs(registry_name: str, seed: int) -> dict:
    kwargs = dict(_EXTRA.get(registry_name, {}))
    if registry_name in _SEEDED:
        kwargs["rng"] = seed
    return kwargs


def test_benign_ratio_table(benchmark):
    def build():
        optimizers = ["dp"] + [registry for _, registry, _ in HEURISTICS]
        rows = []
        for label, factory in [
            ("chain", chain_query),
            ("cycle", cycle_query),
            ("clique", clique_query),
            ("random", random_query),
        ]:
            instances = [
                (f"{label}-s{seed}", factory(8, rng=seed))
                for seed in range(4)
            ]
            sweep = run_sweep(
                grid_tasks(
                    optimizers,
                    instances,
                    kwargs_for=lambda name, inst_label: (
                        {} if name == "dp" else _heuristic_kwargs(
                            name, int(inst_label.rsplit("-s", 1)[1])
                        )
                    ),
                ),
                workers=1,
            )
            cells = {(o.label, o.optimizer): o for o in sweep}
            ratios = {registry: [] for _, registry, _ in HEURISTICS}
            for inst_label, _ in instances:
                optimum = cells[(inst_label, "dp")].result.cost
                for _, registry, _ in HEURISTICS:
                    outcome = cells[(inst_label, registry)]
                    assert outcome.ok, outcome.error
                    ratios[registry].append(outcome.result.ratio_to(optimum))
            rows.append(
                [label]
                + [f"{mean(ratios[registry]):.3f}" for _, registry, _ in HEURISTICS]
            )
        return emit_table(
            "EXP-HEUR",
            "Benign workloads (n=8): mean competitive ratio vs exact optimum",
            ["workload"] + [name for name, _, _ in HEURISTICS],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    # On benign workloads everything stays within a small factor.
    assert table  # ratios are recorded in the table


def test_gap_family_table(benchmark):
    def build():
        heuristic_names = [registry for _, registry, _ in HEURISTICS]
        bounds = {}
        instances = []
        for n in (8, 10, 12):
            k_yes = n - 2
            k_no = 2 + (k_yes % 2)
            pair = qon_gap_pair(n, k_yes, k_no, alpha=4**n)
            certificate = qon_certificate_sequence(
                pair.yes_reduction, pair.yes_clique
            )
            cert_log2 = log2_of(
                total_cost(pair.yes_reduction.instance.to_log_domain(), certificate)
            )
            floor_log2 = log2_of(pair.no_reduction.no_cost_lower_bound())
            k_log2 = log2_of(pair.yes_reduction.yes_cost_bound())
            bounds[n] = (cert_log2, floor_log2, polylog_budget_log2(k_log2, delta=0.5))
            instances.append(
                (f"gap-n{n}", pair.no_reduction.instance.to_log_domain())
            )
        sweep = run_sweep(
            grid_tasks(
                heuristic_names,
                instances,
                kwargs_for=lambda name, _label: _heuristic_kwargs(name, 0),
            ),
            workers=1,
        )
        cells = {(o.label, o.optimizer): o for o in sweep}
        rows = []
        for inst_label, _ in instances:
            n = int(inst_label.rsplit("-n", 1)[1])
            cert_log2, floor_log2, budget = bounds[n]
            row = [n, f"{floor_log2 - cert_log2:.0f}", f"{budget:.0f}"]
            beats = True
            for registry in heuristic_names:
                outcome = cells[(inst_label, registry)]
                assert outcome.ok, outcome.error
                found = log2_of(outcome.result.cost) - cert_log2
                row.append(f"{found:.0f}")
                beats = beats and found > budget
            row.append("gap >> budget" if beats else "check")
            rows.append(row)
        return emit_table(
            "EXP-HEUR",
            "Gap family (alpha=4^n): log2 ratio to YES certificate vs 2^{log^{1/2} K} budget",
            ["n", "provable floor", "polylog budget"]
            + [name for name, _, _ in HEURISTICS]
            + ["verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "check" not in table


def test_bench_greedy_gap_instance(benchmark):
    pair = qon_gap_pair(12, 10, 2, alpha=4**12)
    instance = pair.no_reduction.instance.to_log_domain()
    benchmark(lambda: greedy_min_cost(instance))


def test_bench_annealing_gap_instance(benchmark):
    pair = qon_gap_pair(12, 10, 2, alpha=4**12)
    instance = pair.no_reduction.instance.to_log_domain()
    benchmark.pedantic(
        lambda: simulated_annealing(instance, rng=0), rounds=2, iterations=1
    )
