"""EXP-HEUR: the paper's implication, measured.

Theorem 9 says no polynomial-time algorithm can guarantee a
competitive ratio within any polylog of the optimum.  We drive the
library's polynomial heuristics over (a) benign workloads, where they
sit within small constant factors of the exact optimum, and (b) the
gap family, where every plan they find is provably (Lemma 8) at least
alpha^{dn/2 - 1} above the YES-side cost — far beyond the polylog
budget already at modest n.
"""

from statistics import mean

import pytest

from benchmarks._tables import emit_table
from repro.core.certificates import qon_certificate_sequence
from repro.core.gap import polylog_budget_log2
from repro.joinopt.cost import total_cost
from repro.joinopt.optimizers import (
    dp_optimal,
    genetic_algorithm,
    greedy_min_cost,
    greedy_min_size,
    iterative_improvement,
    random_sampling,
    simulated_annealing,
)
from repro.utils.lognum import log2_of
from repro.workloads.gaps import qon_gap_pair
from repro.workloads.queries import chain_query, clique_query, cycle_query, random_query

HEURISTICS = [
    ("greedy-min-cost", lambda inst, seed: greedy_min_cost(inst)),
    ("greedy-min-size", lambda inst, seed: greedy_min_size(inst)),
    ("iter-improve", lambda inst, seed: iterative_improvement(inst, restarts=5, rng=seed)),
    ("sim-anneal", lambda inst, seed: simulated_annealing(inst, rng=seed)),
    ("sampling", lambda inst, seed: random_sampling(inst, samples=100, rng=seed)),
    ("genetic", lambda inst, seed: genetic_algorithm(inst, generations=15, rng=seed)),
]


def test_benign_ratio_table(benchmark):
    def build():
        rows = []
        for label, factory in [
            ("chain", chain_query),
            ("cycle", cycle_query),
            ("clique", clique_query),
            ("random", random_query),
        ]:
            ratios = {name: [] for name, _ in HEURISTICS}
            for seed in range(4):
                instance = factory(8, rng=seed)
                optimum = dp_optimal(instance).cost
                for name, run in HEURISTICS:
                    ratios[name].append(run(instance, seed).ratio_to(optimum))
            rows.append(
                [label]
                + [f"{mean(ratios[name]):.3f}" for name, _ in HEURISTICS]
            )
        return emit_table(
            "EXP-HEUR",
            "Benign workloads (n=8): mean competitive ratio vs exact optimum",
            ["workload"] + [name for name, _ in HEURISTICS],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    # On benign workloads everything stays within a small factor.
    assert table  # ratios are recorded in the table


def test_gap_family_table(benchmark):
    def build():
        rows = []
        for n in (8, 10, 12):
            k_yes = n - 2
            k_no = 2 + (k_yes % 2)
            pair = qon_gap_pair(n, k_yes, k_no, alpha=4**n)
            certificate = qon_certificate_sequence(
                pair.yes_reduction, pair.yes_clique
            )
            cert_log2 = log2_of(
                total_cost(pair.yes_reduction.instance.to_log_domain(), certificate)
            )
            floor_log2 = log2_of(pair.no_reduction.no_cost_lower_bound())
            k_log2 = log2_of(pair.yes_reduction.yes_cost_bound())
            budget = polylog_budget_log2(k_log2, delta=0.5)
            instance = pair.no_reduction.instance.to_log_domain()
            row = [n, f"{floor_log2 - cert_log2:.0f}", f"{budget:.0f}"]
            beats = True
            for name, run in HEURISTICS:
                found = log2_of(run(instance, 0).cost) - cert_log2
                row.append(f"{found:.0f}")
                beats = beats and found > budget
            row.append("gap >> budget" if beats else "check")
            rows.append(row)
        return emit_table(
            "EXP-HEUR",
            "Gap family (alpha=4^n): log2 ratio to YES certificate vs 2^{log^{1/2} K} budget",
            ["n", "provable floor", "polylog budget"]
            + [name for name, _ in HEURISTICS]
            + ["verdict"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "check" not in table


def test_bench_greedy_gap_instance(benchmark):
    pair = qon_gap_pair(12, 10, 2, alpha=4**12)
    instance = pair.no_reduction.instance.to_log_domain()
    benchmark(lambda: greedy_min_cost(instance))


def test_bench_annealing_gap_instance(benchmark):
    pair = qon_gap_pair(12, 10, 2, alpha=4**12)
    instance = pair.no_reduction.instance.to_log_domain()
    benchmark.pedantic(
        lambda: simulated_annealing(instance, rng=0), rounds=2, iterations=1
    )
