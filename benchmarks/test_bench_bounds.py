"""EXP-BOUNDS: tightness of the sound lower bounds.

The library certifies NO-side costs with machine-checkable lower
bounds.  This experiment measures how tight each bound is against the
exact optimum across instance families: the Lemma 8 generalization is
within one alpha-granule on the uniform reduction instances, while the
generic dominance bound degrades on heterogeneous statistics — which
is exactly why the reduction makes its instances uniform.
"""

import pytest

from benchmarks._tables import emit_table
from repro.core.reductions.clique_to_qon import clique_to_qon
from repro.joinopt.bounds import (
    dominance_lower_bound,
    first_join_lower_bound,
    lemma8_style_lower_bound,
)
from repro.joinopt.optimizers import dp_optimal
from repro.utils.lognum import log2_of
from repro.workloads.gaps import turan_graph
from repro.workloads.queries import random_query


def test_bound_tightness_table(benchmark):
    def build():
        rows = []
        # Uniform reduction instances (Lemma 8 bound applies).
        for n, parts in [(8, 2), (8, 4), (9, 3)]:
            graph = turan_graph(n, parts)
            k_no = parts + (n - parts) % 2
            reduction = clique_to_qon(graph, k_yes=n, k_no=k_no, alpha=4)
            optimum = dp_optimal(reduction.instance)
            lemma8 = lemma8_style_lower_bound(reduction, parts)
            dominance = max(
                dominance_lower_bound(reduction.instance, p)
                for p in range(2, n)
            )
            first = first_join_lower_bound(reduction.instance)
            rows.append(
                (
                    f"f_N(Turan {n}/{parts})",
                    f"{log2_of(optimum.cost):.1f}",
                    f"{log2_of(lemma8):.1f}",
                    f"{log2_of(dominance):.1f}",
                    f"{log2_of(first):.1f}",
                )
            )
        # Heterogeneous workload instances (generic bounds only).
        for seed in (0, 1):
            instance = random_query(7, rng=seed)
            optimum = dp_optimal(instance)
            dominance = max(
                dominance_lower_bound(instance, p) for p in range(2, 7)
            )
            first = first_join_lower_bound(instance)
            rows.append(
                (
                    f"random n=7 seed={seed}",
                    f"{log2_of(optimum.cost):.1f}",
                    "-",
                    f"{log2_of(dominance):.1f}",
                    f"{log2_of(first):.1f}",
                )
            )
        return emit_table(
            "EXP-BOUNDS",
            "Lower-bound tightness (log2): optimum vs Lemma-8 / dominance / first-join",
            ["instance", "optimum", "Lemma 8", "dominance", "first join"],
            rows,
        )

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_lemma8_within_one_granule(benchmark):
    """On Turan-based f_N instances the Lemma 8 bound tracks the
    optimum within a handful of alpha-doublings."""

    def check():
        graph = turan_graph(8, 2)
        reduction = clique_to_qon(graph, k_yes=8, k_no=2, alpha=4)
        optimum = dp_optimal(reduction.instance)
        bound = lemma8_style_lower_bound(reduction, 2)
        assert bound <= optimum.cost
        gap_doublings = log2_of(optimum.cost) - log2_of(bound)
        assert gap_doublings <= 10 * reduction.alpha_log2

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_bench_dominance_bound(benchmark):
    instance = random_query(10, rng=2)
    benchmark(lambda: dominance_lower_bound(instance, 5))


def test_bench_lemma8_bound(benchmark):
    reduction = clique_to_qon(turan_graph(10, 2), k_yes=10, k_no=2, alpha=4)
    benchmark(lambda: lemma8_style_lower_bound(reduction, 2))
