"""EXP-SQO: SQO-CP optimizer ablation and appendix-instance scaling.

Supports the Appendix A/B experiments: the subset-DP optimizer agrees
with exhaustive search while scaling past it, which is what makes the
EXP-B verification affordable.
"""

import time
from fractions import Fraction

import pytest

from benchmarks._tables import emit_table
from repro.core.reductions.sppcs_to_sqocp import sppcs_to_sqocp
from repro.starqo.dp import dp_best_plan
from repro.starqo.instance import SQOCPInstance
from repro.starqo.optimizer import best_plan
from repro.starqo.sppcs import SPPCSInstance


def _random_instance(seed: int, m: int) -> SQOCPInstance:
    from repro.utils.rng import make_rng

    rng = make_rng(seed)
    tuples = [rng.randint(10, 500) for _ in range(m + 1)]
    pages = [max(1, t // rng.randint(1, 4)) for t in tuples]
    return SQOCPInstance(
        num_satellites=m,
        sort_passes=4,
        page_size=8,
        tuples=tuples,
        pages=pages,
        sort_costs=[p * 4 for p in pages],
        selectivities=[
            Fraction(1, rng.randint(1, tuples[i + 1])) for i in range(m)
        ],
        satellite_access=[rng.randint(1, 50) for _ in range(m)],
        center_access=[rng.randint(1, 500) for _ in range(m)],
    )


def test_dp_vs_exhaustive_table(benchmark):
    def build():
        rows = []
        for m in (3, 4, 5, 6):
            instance = _random_instance(m, m)
            start = time.perf_counter()
            exhaustive_cost, _ = best_plan(instance)
            exhaustive_ms = (time.perf_counter() - start) * 1e3
            start = time.perf_counter()
            dp_cost, _ = dp_best_plan(instance)
            dp_ms = (time.perf_counter() - start) * 1e3
            rows.append(
                (
                    m,
                    f"{exhaustive_ms:.1f}",
                    f"{dp_ms:.1f}",
                    "OK" if dp_cost == exhaustive_cost else "MISMATCH",
                )
            )
        return emit_table(
            "EXP-SQO",
            "SQO-CP ablation: exhaustive plan search vs subset DP (ms)",
            ["satellites", "exhaustive ms", "DP ms", "agreement"],
            rows,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "MISMATCH" not in table


def test_dp_on_appendix_instances(benchmark):
    """The DP reproduces the EXP-B decisions at a fraction of the cost."""

    def check():
        pairs = [(2, 2), (2, 3), (3, 1)]
        from repro.starqo.sppcs import sppcs_best_subset

        optimum, _ = sppcs_best_subset(SPPCSInstance(pairs, 0))
        for bound, expected in [(optimum, True), (optimum - 1, False)]:
            reduction = sppcs_to_sqocp(SPPCSInstance(pairs, bound))
            cost, _ = dp_best_plan(reduction.instance)
            assert (cost <= reduction.threshold) == expected

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.parametrize("m", [4, 6, 8])
def test_bench_dp(benchmark, m):
    instance = _random_instance(m, m)
    benchmark.pedantic(lambda: dp_best_plan(instance), rounds=3, iterations=1)


def test_bench_exhaustive(benchmark):
    instance = _random_instance(5, 5)
    benchmark.pedantic(lambda: best_plan(instance), rounds=2, iterations=1)
