"""EXP-L3: Lemma 3 — the 3SAT -> CLIQUE gap, measured.

Paper claim: satisfiable 3SAT(13) formulas map to graphs with
omega >= cn; formulas with at most (1-theta) satisfiable clauses map
to graphs with omega <= (c-d)n, where cn = 5v + 4m and dn = theta*m.

We regenerate the claim with exact clique computation on both promise
sides, and ablate the clique-search strategy (exact branch-and-bound
vs the greedy heuristic the certificates could have used).
"""

import pytest

from benchmarks._tables import emit_table
from repro.core.reductions.sat_to_clique import sat_to_clique
from repro.graphs.clique import greedy_clique, max_clique_size
from repro.sat.gapfamilies import no_instance, yes_instance


def _family():
    return [
        ("YES v=3 m=6", yes_instance(3, 6, rng=0)),
        ("YES v=4 m=8", yes_instance(4, 8, rng=1)),
        ("NO  1 core", no_instance(1)),
        ("NO  2 cores", no_instance(2)),
    ]


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for label, gap in _family():
        reduction = sat_to_clique(gap)
        omega = max_clique_size(reduction.graph)
        greedy = len(greedy_clique(reduction.graph))
        claim = (
            f"omega >= {reduction.clique_if_satisfiable}"
            if gap.satisfiable
            else f"omega <= {reduction.clique_bound_if_gap}"
        )
        holds = (
            omega >= reduction.clique_if_satisfiable
            if gap.satisfiable
            else omega <= reduction.clique_bound_if_gap
        )
        rows.append(
            (
                label,
                reduction.graph.num_vertices,
                omega,
                greedy,
                claim,
                "OK" if holds else "VIOLATED",
            )
        )
    return rows


def test_lemma3_gap_table(measurements, benchmark):
    table = benchmark.pedantic(
        lambda: emit_table(
            "EXP-L3",
            "Lemma 3: SAT->CLIQUE promise vs exact omega",
            ["family", "n", "omega(exact)", "omega(greedy)", "paper claim", "verdict"],
            measurements,
        ),
        rounds=1,
        iterations=1,
    )
    assert "VIOLATED" not in table


def test_lemma3_greedy_ablation(measurements, benchmark):
    """Ablation: on the dense padded graphs the greedy clique gets
    within a few vertices of the exact optimum (the universal padding
    is always picked up), so certificate construction could fall back
    to it — but the YES-side *equality* needs the witness mapping."""

    def check():
        for label, n, omega, greedy, claim, verdict in measurements:
            assert greedy <= omega
            if label.startswith("YES"):
                # Greedy always captures the universal padding plus a
                # maximal core clique: within 10% of omega here.
                assert greedy >= omega - max(2, omega // 10)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_bench_reduction_build(benchmark):
    gap = yes_instance(4, 8, rng=2)
    benchmark(lambda: sat_to_clique(gap))


def test_bench_exact_clique(benchmark):
    gap = yes_instance(3, 6, rng=3)
    graph = sat_to_clique(gap).graph
    benchmark(lambda: max_clique_size(graph))


def test_bench_greedy_clique(benchmark):
    gap = yes_instance(3, 6, rng=3)
    graph = sat_to_clique(gap).graph
    benchmark(lambda: greedy_clique(graph))
