"""Tests for the ``repro bench`` microbenchmark harness.

The suite runs the smoke grid once (module-scoped) and asserts the
acceptance criteria on the resulting payload: schema validity, the
cross-check that both evaluation paths agree on every case, and the
deterministic >= 5x multiplication reduction on the EXP-T9 grid at
``n >= 12``.  Schema rejection paths and the CLI wiring are covered
against the same payload.
"""

import copy
import json

import pytest

from repro import api
from repro.cli import main
from repro.perf.bench import (
    MULT_REDUCTION_TARGET,
    SCHEMA,
    bench_summary_lines,
    load_bench,
    run_bench,
    validate_bench,
    write_bench,
)
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def smoke_payload():
    return run_bench(smoke=True, seed=0)


class TestRunBench:
    def test_schema_and_structure(self, smoke_payload):
        validate_bench(smoke_payload)
        assert smoke_payload["schema"] == SCHEMA == "repro.bench/1"
        assert smoke_payload["smoke"] is True
        families = [case["family"] for case in smoke_payload["cases"]]
        assert "qon-t9" in families
        assert "qoh-t15" in families

    def test_both_paths_identical_on_every_case(self, smoke_payload):
        assert smoke_payload["totals"]["identical"] is True
        assert all(case["identical"] for case in smoke_payload["cases"])

    def test_mult_reduction_target_met(self, smoke_payload):
        """The headline acceptance number: >= 5x fewer multiplications."""
        assert smoke_payload["totals"]["meets_mult_target"] is True
        for case in smoke_payload["cases"]:
            if case["family"] == "qon-t9" and case["n"] >= 12:
                assert case["mult_reduction"] >= MULT_REDUCTION_TARGET
                assert (
                    case["kernel"]["mults_per_eval"]
                    < case["reference"]["mults_per_eval"]
                )

    def test_qoh_fragments_are_shared(self, smoke_payload):
        for case in smoke_payload["cases"]:
            if case["family"] == "qoh-t15":
                assert case["kernel"]["lp_solves"] < case["reference"]["lp_solves"]
                assert case["kernel"]["fragments_reused"] > 0

    def test_deterministic_measures_reproducible(self, smoke_payload):
        """Op counts are machine-independent: a re-run matches exactly."""
        again = run_bench(smoke=True, seed=0)
        for first, second in zip(smoke_payload["cases"], again["cases"]):
            if first["family"] == "qon-t9":
                assert (
                    first["reference"]["mults_per_eval"]
                    == second["reference"]["mults_per_eval"]
                )
                assert (
                    first["kernel"]["mults_per_eval"]
                    == second["kernel"]["mults_per_eval"]
                )
                assert first["kernel"]["rebase_mults"] == second["kernel"]["rebase_mults"]
            else:
                assert first["reference"]["lp_solves"] == second["reference"]["lp_solves"]
                assert first["kernel"]["lp_solves"] == second["kernel"]["lp_solves"]

    def test_summary_lines(self, smoke_payload):
        lines = bench_summary_lines(smoke_payload)
        assert len(lines) == len(smoke_payload["cases"]) + 1
        assert any("qon-t9" in line for line in lines)
        assert any("qoh-t15" in line for line in lines)
        assert "met" in lines[-1]


class TestBenchIO:
    def test_write_load_roundtrip(self, smoke_payload, tmp_path):
        target = tmp_path / "nested" / "BENCH_test.json"
        written = write_bench(smoke_payload, target)
        assert written == target
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["schema"] == SCHEMA
        assert load_bench(target) == smoke_payload

    def test_run_bench_writes_when_out_given(self, tmp_path):
        target = tmp_path / "BENCH_out.json"
        payload = run_bench(smoke=True, seed=1, out=target)
        assert load_bench(target) == payload


class TestValidateBench:
    def test_rejects_wrong_schema(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        bad["schema"] = "repro.bench/0"
        with pytest.raises(ValidationError):
            validate_bench(bad)

    def test_rejects_missing_case_field(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        del bad["cases"][0]["mult_reduction"]
        with pytest.raises(ValidationError):
            validate_bench(bad)

    def test_rejects_unknown_family(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        bad["cases"][0]["family"] = "qon-t10"
        with pytest.raises(ValidationError):
            validate_bench(bad)

    def test_rejects_bool_where_number_expected(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        bad["totals"]["min_qon_mult_reduction"] = True
        with pytest.raises(ValidationError):
            validate_bench(bad)

    def test_rejects_totals_case_count_mismatch(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        bad["totals"]["cases"] = len(bad["cases"]) + 1
        with pytest.raises(ValidationError):
            validate_bench(bad)

    def test_rejects_empty_cases(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        bad["cases"] = []
        with pytest.raises(ValidationError):
            validate_bench(bad)


class TestApiFacade:
    def test_facade_exports(self):
        for name in (
            "run_bench", "validate_bench", "write_bench",
            "load_bench", "bench_summary_lines",
        ):
            assert name in api.__all__
            assert callable(getattr(api, name))

    def test_facade_round_trip(self, smoke_payload, tmp_path):
        target = tmp_path / "BENCH_api.json"
        api.write_bench(smoke_payload, target)
        assert api.load_bench(target) == smoke_payload
        assert api.bench_summary_lines(smoke_payload)


class TestBenchCli:
    def test_smoke_run_exits_zero_and_writes(self, tmp_path, capsys):
        target = tmp_path / "BENCH_cli.json"
        assert main(["bench", "--smoke", "--out", str(target)]) == 0
        out = capsys.readouterr().out
        assert "qon-t9" in out
        assert str(target) in out
        payload = load_bench(target)
        assert payload["smoke"] is True
        assert payload["totals"]["meets_mult_target"] is True

    def test_seed_is_recorded(self, tmp_path, capsys):
        target = tmp_path / "BENCH_seeded.json"
        assert main(
            ["bench", "--smoke", "--seed", "7", "--out", str(target)]
        ) == 0
        assert load_bench(target)["seed"] == 7
