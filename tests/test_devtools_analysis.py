"""Tests for the whole-program analyzer (``repro analyze``).

Covers, per ISSUE requirements:

* per-pass fixture packages: tainted vs clean call chains, locked vs
  unlocked attribute access, orphan vs fully-registered schemas;
* interprocedural taint through two call hops, with exact file, line
  and rule-id assertions for a seeded taint bug and a seeded
  unguarded lock access;
* ``# repro: boundary[exactness]`` annotations and ``# repro: noqa``
  suppressions of ANA codes;
* baseline add/expire behavior (including ``--update-baseline``);
* the ``repro.analysis/1`` JSON reporter schema;
* the ``repro analyze`` CLI (exit codes 0 clean / 1 findings /
  2 usage);
* the clean-tree assertion: the real ``src`` tree analyzes to zero
  unsuppressed findings against the committed baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools import analyze_paths, validate_analysis
from repro.devtools.analysis import (
    ANALYSIS_CODES,
    ANALYSIS_SCHEMA_VERSION,
    analysis_codes,
    analysis_payload,
    load_baseline,
    render_analysis_json,
    render_analysis_text,
    render_pass_list,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_tree(root: Path, files: dict) -> Path:
    """Materialize ``{relative path: source}`` under ``root``."""
    for relative, content in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return root


def codes_of(report) -> list:
    return [diagnostic.code for diagnostic in report.diagnostics]


# ---------------------------------------------------------------------
# Exactness-taint pass (ANA101 / ANA102)
# ---------------------------------------------------------------------


class TestTaintPass:
    def test_two_hop_interprocedural_taint_into_sink(self, tmp_path):
        """A float source two calls away from the sink is still found,
        with the exact file, line and rule id."""
        tree = make_tree(tmp_path, {
            "src/repro/helpers.py": """\
                import time

                def leak():
                    return time.time()

                def relay():
                    return leak()
            """,
            "src/repro/joinopt/cost.py": """\
                from repro.helpers import relay

                def total_cost(x):
                    return relay() + x
            """,
        })
        report = analyze_paths([tree])
        assert codes_of(report) == ["ANA101"]
        finding = report.diagnostics[0]
        assert finding.path.endswith("cost.py")
        assert finding.line == 4
        assert finding.rule == "tainted-value-in-exact-sink"
        assert "float-tainted" in finding.message

    def test_tainted_argument_into_sink(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/joinopt/cost.py": """\
                def total_cost(x):
                    return x
            """,
            "src/repro/driver.py": """\
                from repro.joinopt.cost import total_cost

                def run():
                    scale = 1.5
                    return total_cost(scale)
            """,
        })
        report = analyze_paths([tree])
        assert codes_of(report) == ["ANA102"]
        finding = report.diagnostics[0]
        assert finding.path.endswith("driver.py")
        assert finding.line == 5
        assert finding.rule == "tainted-argument-to-exact-sink"
        assert "'x'" in finding.message

    def test_division_in_sink_is_a_float_source(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/starqo/cost.py": """\
                def probe_cost(pages, span):
                    return pages / span
            """,
        })
        report = analyze_paths([tree])
        assert codes_of(report) == ["ANA101"]
        assert "true division" in report.diagnostics[0].message

    def test_fraction_division_is_exact(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/starqo/cost.py": """\
                from fractions import Fraction

                def probe_cost(pages, span):
                    return Fraction(pages) / span
            """,
        })
        assert analyze_paths([tree]).ok

    def test_fraction_annotated_parameter_is_exact(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/starqo/cost.py": """\
                from fractions import Fraction

                def probe_cost(pages: Fraction, span: int):
                    return pages / span
            """,
        })
        assert analyze_paths([tree]).ok

    def test_boundary_annotation_declares_the_function_clean(
        self, tmp_path
    ):
        tree = make_tree(tmp_path, {
            "src/repro/perf/kernels.py": """\
                def ratio(a, b):  # repro: boundary[exactness]
                    return a / b

                def evaluate(a, b):
                    return ratio(a, b)
            """,
        })
        assert analyze_paths([tree]).ok

    def test_clean_exact_chain_has_no_findings(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/helpers.py": """\
                from fractions import Fraction

                def scale(x):
                    return Fraction(3, 2) * x
            """,
            "src/repro/joinopt/cost.py": """\
                from repro.helpers import scale

                def total_cost(x):
                    return scale(x) + 1
            """,
        })
        assert analyze_paths([tree]).ok

    def test_noqa_suppresses_taint_finding(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/joinopt/cost.py": """\
                import time

                def total_cost(x):
                    return time.time() + x  # repro: noqa[ANA101]
            """,
        })
        assert analyze_paths([tree]).ok


# ---------------------------------------------------------------------
# Lock-discipline pass (ANA201)
# ---------------------------------------------------------------------

_LOCKED_CLASS = """\
    import threading

    class Server:
        def __init__(self):
            self._lock = threading.Lock()
            self._ready = threading.Condition(self._lock)
            self._pending = []
            self._count = 0

        def add(self, item):
            with self._lock:
                self._pending.append(item)
                self._count += 1

        def drain(self):
            with self._ready:
                self._pending.clear()

        def peek(self):
            return len(self._pending)
"""


class TestLockPass:
    def test_seeded_unguarded_read_is_found(self, tmp_path):
        """The seeded unguarded access is reported with the exact
        file, line and rule id; the Condition alias write counts as
        guarded."""
        tree = make_tree(tmp_path, {
            "src/repro/service/server.py": _LOCKED_CLASS,
        })
        report = analyze_paths([tree])
        assert codes_of(report) == ["ANA201"]
        finding = report.diagnostics[0]
        assert finding.path.endswith("server.py")
        assert finding.line == 20
        assert finding.rule == "unguarded-attribute-access"
        assert "'self._pending'" in finding.message
        assert "'peek'" in finding.message

    def test_unguarded_write_is_found(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/service/server.py": """\
                import threading

                class Server:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def reset(self):
                        self._count = 0
            """,
        })
        report = analyze_paths([tree])
        assert codes_of(report) == ["ANA201"]
        assert "written here" in report.diagnostics[0].message

    def test_fully_locked_class_is_clean(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/service/server.py": """\
                import threading

                class Server:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._pending = []

                    def add(self, item):
                        with self._lock:
                            self._pending.append(item)

                    def size(self):
                        with self._lock:
                            return len(self._pending)
            """,
        })
        assert analyze_paths([tree]).ok

    def test_unlocked_class_is_out_of_scope(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/service/state.py": """\
                class Bag:
                    def __init__(self):
                        self.items = []

                    def add(self, item):
                        self.items.append(item)
            """,
        })
        assert analyze_paths([tree]).ok

    def test_init_writes_do_not_establish_guarding(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/service/server.py": """\
                import threading

                class Server:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._name = "srv"

                    def name(self):
                        return self._name
            """,
        })
        assert analyze_paths([tree]).ok

    def test_noqa_suppresses_lock_finding(self, tmp_path):
        source = _LOCKED_CLASS.replace(
            "return len(self._pending)",
            "return len(self._pending)  # repro: noqa[ANA201]",
        )
        tree = make_tree(tmp_path, {
            "src/repro/service/server.py": source,
        })
        assert analyze_paths([tree]).ok


# ---------------------------------------------------------------------
# Schema-registry pass (ANA301-ANA303)
# ---------------------------------------------------------------------


class TestSchemaPass:
    def test_orphan_schema_missing_validator_and_consumer(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/metrics.py": """\
                SCHEMA = "repro.orphan/1"

                def snapshot():
                    return {"schema": SCHEMA, "n": 1}
            """,
        })
        report = analyze_paths([tree])
        assert codes_of(report) == ["ANA301", "ANA303"]
        assert all("'repro.orphan/1'" in d.message
                   for d in report.diagnostics)
        assert report.diagnostics[0].line == 1

    def test_declared_but_unused_schema_misses_every_role(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/metrics.py": 'DEAD = "repro.dead/1"\n',
        })
        report = analyze_paths([tree])
        assert codes_of(report) == ["ANA301", "ANA302", "ANA303"]

    def test_fully_registered_schema_is_clean(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/metrics.py": """\
                SCHEMA = "repro.sweep/1"

                def snapshot():
                    return {"schema": SCHEMA}

                def validate_snapshot(payload):
                    if payload.get("schema") != SCHEMA:
                        raise ValueError("bad schema")
            """,
        })
        assert analyze_paths([tree]).ok

    def test_roles_aggregate_across_modules(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/metrics.py": """\
                SCHEMA = "repro.sweep/1"

                def snapshot():
                    return {"schema": SCHEMA}
            """,
            "src/repro/checks.py": """\
                from repro.metrics import SCHEMA

                def validate_payload(payload):
                    if payload.get("schema") != SCHEMA:
                        raise ValueError("bad schema")
            """,
        })
        assert analyze_paths([tree]).ok

    def test_docstring_mentions_are_ignored(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/notes.py": '"""About repro.ghost/1 payloads."""\n',
        })
        assert analyze_paths([tree]).ok


# ---------------------------------------------------------------------
# Engine: parse errors, baseline add/expire
# ---------------------------------------------------------------------


class TestEngineAndBaseline:
    def test_parse_error_is_an_ana000_finding(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/broken.py": "def oops(:\n",
        })
        report = analyze_paths([tree])
        assert codes_of(report) == ["ANA000"]
        assert not report.ok

    def _seeded_tree(self, tmp_path):
        return make_tree(tmp_path, {
            "src/repro/joinopt/cost.py": """\
                import time

                def total_cost(x):
                    return time.time() + x
            """,
        })

    def test_baseline_add_then_expire(self, tmp_path):
        tree = self._seeded_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        first = analyze_paths([tree])
        assert codes_of(first) == ["ANA101"]

        entries = write_baseline(baseline, first.diagnostics)
        assert len(entries) == 1
        assert load_baseline(baseline) == entries

        # Added: the finding is absorbed by the baseline.
        second = analyze_paths([tree], baseline=baseline)
        assert second.ok
        assert second.baselined == 1

        # Expired: fixing the code turns the entry stale (ANA901).
        (tree / "src/repro/joinopt/cost.py").write_text(
            "def total_cost(x):\n    return x\n", encoding="utf-8"
        )
        third = analyze_paths([tree], baseline=baseline)
        assert codes_of(third) == ["ANA901"]
        assert third.baselined == 0
        assert "matched no finding" in third.diagnostics[0].message

    def test_update_baseline_preserves_reasons(self, tmp_path):
        tree = self._seeded_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        first = analyze_paths([tree])
        write_baseline(baseline, first.diagnostics)
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        payload["findings"][0]["reason"] = "deliberate test boundary"
        baseline.write_text(json.dumps(payload), encoding="utf-8")

        entries = write_baseline(
            baseline, first.diagnostics, load_baseline(baseline)
        )
        assert entries[0].reason == "deliberate test boundary"

    def test_baseline_schema_is_checked(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"schema": "nope", "findings": []}')
        with pytest.raises(ValueError, match="schema"):
            load_baseline(bad)


# ---------------------------------------------------------------------
# repro.analysis/1 JSON schema
# ---------------------------------------------------------------------


class TestAnalysisSchema:
    def test_payload_round_trips_and_validates(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/joinopt/cost.py": """\
                import time

                def total_cost(x):
                    return time.time() + x
            """,
        })
        report = analyze_paths([tree])
        payload = json.loads(render_analysis_json(report))
        validate_analysis(payload)
        assert payload["version"] == ANALYSIS_SCHEMA_VERSION
        assert payload["ok"] is False
        assert payload["counts"] == {"ANA101": 1}
        diagnostic = payload["diagnostics"][0]
        assert diagnostic["code"] == "ANA101"
        assert diagnostic["rule"] == "tainted-value-in-exact-sink"

    def test_validate_rejects_corrupt_payloads(self, tmp_path):
        tree = make_tree(tmp_path, {"src/repro/ok.py": "X = 1\n"})
        payload = analysis_payload(analyze_paths([tree]))
        for mutate in (
            lambda p: p.update(version="repro.analysis/0"),
            lambda p: p.update(ok="yes"),
            lambda p: p.update(counts=[1]),
            lambda p: p.update(diagnostics=[{"path": 3}]),
            lambda p: p.update(ok=False),
        ):
            broken = json.loads(json.dumps(payload))
            mutate(broken)
            with pytest.raises(ValueError):
                validate_analysis(broken)

    def test_text_report_mentions_counts(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/starqo/cost.py": """\
                def probe_cost(pages, span):
                    return pages / span
            """,
        })
        text = render_analysis_text(analyze_paths([tree]))
        assert "ANA101 x1" in text
        assert "1 finding" in text

    def test_every_code_has_a_catalogue_entry(self):
        assert analysis_codes() == sorted(ANALYSIS_CODES)
        listing = render_pass_list()
        for code in analysis_codes():
            assert code in listing


# ---------------------------------------------------------------------
# CLI: exit codes and the clean real tree
# ---------------------------------------------------------------------


class TestAnalyzeCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        make_tree(tmp_path, {"src/repro/ok.py": "X = 1\n"})
        assert main(["analyze", str(tmp_path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/joinopt/cost.py": """\
                import time

                def total_cost(x):
                    return time.time() + x
            """,
        })
        assert main(["analyze", str(tmp_path)]) == 1
        assert "ANA101" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_exit_two_on_missing_explicit_baseline(self, tmp_path, capsys):
        make_tree(tmp_path, {"src/repro/ok.py": "X = 1\n"})
        assert main([
            "analyze", str(tmp_path),
            "--baseline", str(tmp_path / "missing.json"),
        ]) == 2

    def test_json_output_validates(self, tmp_path, capsys):
        make_tree(tmp_path, {"src/repro/ok.py": "X = 1\n"})
        assert main(["analyze", str(tmp_path), "--output", "json"]) == 0
        validate_analysis(json.loads(capsys.readouterr().out))

    def test_list_passes(self, capsys):
        assert main(["analyze", "--list-passes"]) == 0
        out = capsys.readouterr().out
        for code in analysis_codes():
            assert code in out

    def test_update_baseline_flow(self, tmp_path, capsys):
        tree = make_tree(tmp_path, {
            "src/repro/joinopt/cost.py": """\
                import time

                def total_cost(x):
                    return time.time() + x
            """,
        })
        baseline = tmp_path / "baseline.json"
        assert main([
            "analyze", str(tree),
            "--baseline", str(baseline), "--update-baseline",
        ]) == 0
        assert "1 baselined finding" in capsys.readouterr().out
        assert main([
            "analyze", str(tree), "--baseline", str(baseline),
        ]) == 0

    def test_real_tree_is_clean_against_committed_baseline(self):
        assert main([
            "analyze", str(REPO_ROOT / "src"),
            "--baseline", str(REPO_ROOT / "analysis-baseline.json"),
        ]) == 0
