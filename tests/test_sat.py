"""Tests for the SAT substrate: CNF model, DIMACS, solver, MAX-SAT."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import dimacs
from repro.sat.bounded import (
    bound_occurrences,
    lift_assignment,
    max_occurrences,
    project_assignment,
)
from repro.sat.cnf import all_assignments, Clause, CNFFormula
from repro.sat.generators import (
    chain_implication_clauses,
    pigeonhole_formula,
    random_3sat,
    random_planted_3sat,
    unsatisfiable_core,
)
from repro.sat.maxsat import (
    is_k_satisfiable,
    local_search_maxsat,
    max_satisfiable_clauses,
    max_satisfiable_fraction,
)
from repro.sat.solver import DPLLSolver, is_satisfiable, solve
from repro.utils.validation import ValidationError


class TestClause:
    def test_dedup(self):
        assert Clause([1, 1, 2]).literals == (1, 2)

    def test_zero_rejected(self):
        with pytest.raises(ValidationError):
            Clause([0])

    def test_tautology(self):
        assert Clause([1, -1, 2]).is_tautology()
        assert not Clause([1, 2, 3]).is_tautology()

    def test_variables(self):
        assert Clause([-3, 1]).variables() == (1, 3)

    def test_satisfied_by(self):
        clause = Clause([1, -2])
        assert clause.is_satisfied_by({1: True, 2: True})
        assert clause.is_satisfied_by({1: False, 2: False})
        assert not clause.is_satisfied_by({1: False, 2: True})

    def test_contains(self):
        assert -2 in Clause([1, -2])


class TestCNFFormula:
    def test_out_of_range_literal(self):
        with pytest.raises(ValidationError):
            CNFFormula(2, [[3]])

    def test_is_3cnf(self):
        assert CNFFormula(4, [[1, 2, 3], [4]]).is_3cnf()
        assert not CNFFormula(4, [[1, 2, 3], [1, 2, 3, 4]]).is_3cnf()

    def test_exactly_3cnf(self):
        assert CNFFormula(3, [[1, 2, 3]]).is_exactly_3cnf()
        assert not CNFFormula(3, [[1, 2]]).is_exactly_3cnf()

    def test_occurrence_counts(self):
        formula = CNFFormula(2, [[1, 2], [1, -2], [-1, 2]])
        assert formula.occurrence_counts() == {1: 3, 2: 3}

    def test_occurrences_bounded(self):
        formula = CNFFormula(2, [[1, 2]] * 5)
        assert formula.occurrences_bounded_by(5)
        assert not formula.occurrences_bounded_by(4)

    def test_count_satisfied(self):
        formula = CNFFormula(2, [[1], [2], [-1, -2]])
        assert formula.count_satisfied({1: True, 2: False}) == 2

    def test_satisfied_fraction_empty(self):
        assert CNFFormula(0, []).satisfied_fraction({}) == 1.0

    def test_conjoin_and_shift(self):
        a = CNFFormula(2, [[1, 2]])
        b = CNFFormula(2, [[1, -2]])
        shifted = b.shift_variables(2)
        combined = a.conjoin(shifted)
        assert combined.num_vars == 4
        assert combined.num_clauses == 2
        assert combined.clauses[1].literals == (3, -4)

    def test_equality_and_hash(self):
        a = CNFFormula(2, [[1, 2]])
        b = CNFFormula(2, [[2, 1]])
        assert a == b
        assert hash(a) == hash(b)

    def test_all_assignments_count(self):
        assert len(list(all_assignments(3))) == 8


class TestDimacs:
    def test_roundtrip(self):
        formula = CNFFormula(3, [[1, -2, 3], [-1, 2]])
        assert dimacs.loads(dimacs.dumps(formula)) == formula

    def test_comments_ignored(self):
        text = "c hello\np cnf 2 1\n1 -2 0\n"
        assert dimacs.loads(text) == CNFFormula(2, [[1, -2]])

    def test_missing_problem_line(self):
        with pytest.raises(ValidationError):
            dimacs.loads("1 2 0\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(ValidationError):
            dimacs.loads("p cnf 2 2\n1 0\n")

    def test_file_roundtrip(self, tmp_path):
        formula = random_3sat(5, 10, rng=1)
        path = tmp_path / "f.cnf"
        dimacs.write_file(formula, path)
        assert dimacs.read_file(path) == formula


class TestSolver:
    def test_satisfiable_simple(self):
        formula = CNFFormula(2, [[1, 2], [-1, 2]])
        model = solve(formula)
        assert model is not None
        assert formula.is_satisfied_by(model)

    def test_unsatisfiable_pair(self):
        formula = CNFFormula(1, [[1], [-1]])
        assert solve(formula) is None

    def test_unsatisfiable_core(self):
        assert not is_satisfiable(unsatisfiable_core())

    def test_pigeonhole_unsat(self):
        assert not is_satisfiable(pigeonhole_formula(2))

    def test_empty_formula(self):
        assert is_satisfiable(CNFFormula(2, []))

    def test_empty_clause(self):
        assert not is_satisfiable(CNFFormula(1, [[]]))

    def test_model_is_total(self):
        formula = CNFFormula(5, [[1]])
        model = solve(formula)
        assert set(model) == {1, 2, 3, 4, 5}

    def test_planted_always_sat(self):
        for seed in range(5):
            formula, planted = random_planted_3sat(6, 15, rng=seed)
            assert formula.is_satisfied_by(planted)
            assert is_satisfiable(formula)

    def test_decision_budget(self):
        formula = pigeonhole_formula(4)
        solver = DPLLSolver(formula, max_decisions=1)
        with pytest.raises(RuntimeError):
            solver.solve()


class TestMaxSat:
    def test_core_is_seven_eighths(self):
        best, assignment = max_satisfiable_clauses(unsatisfiable_core())
        assert best == 7
        assert unsatisfiable_core().count_satisfied(assignment) == 7

    def test_satisfiable_formula_reaches_all(self):
        formula, _ = random_planted_3sat(5, 12, rng=2)
        best, _ = max_satisfiable_clauses(formula)
        assert best == formula.num_clauses

    def test_is_k_satisfiable(self):
        core = unsatisfiable_core()
        assert is_k_satisfiable(core, 7)
        assert not is_k_satisfiable(core, 8)

    def test_fraction(self):
        assert max_satisfiable_fraction(unsatisfiable_core()) == pytest.approx(7 / 8)

    def test_fraction_empty(self):
        assert max_satisfiable_fraction(CNFFormula(1, [])) == 1.0

    def test_local_search_respects_exact(self):
        core = unsatisfiable_core()
        best, assignment = local_search_maxsat(core, rng=3)
        assert best <= 7
        assert best == core.count_satisfied(assignment)

    def test_local_search_finds_satisfying(self):
        formula, _ = random_planted_3sat(6, 10, rng=4)
        best, _ = local_search_maxsat(formula, max_flips=2000, rng=4)
        assert best == formula.num_clauses


class TestGenerators:
    def test_random_3sat_shape(self):
        formula = random_3sat(6, 20, rng=0)
        assert formula.num_clauses == 20
        assert formula.is_exactly_3cnf()

    def test_random_3sat_deterministic(self):
        assert random_3sat(6, 10, rng=42) == random_3sat(6, 10, rng=42)

    def test_chain_clauses_cycle(self):
        clauses = chain_implication_clauses([1, 2, 3])
        assert clauses == [[-1, 2], [-2, 3], [-3, 1]]

    def test_chain_single(self):
        assert chain_implication_clauses([5]) == []

    def test_pigeonhole_shape(self):
        formula = pigeonhole_formula(2)
        assert formula.num_vars == 6


class TestBoundedOccurrences:
    def test_already_bounded_unchanged(self):
        formula = CNFFormula(3, [[1, 2, 3]])
        bounded, copy_map = bound_occurrences(formula, bound=13)
        assert bounded == formula
        assert copy_map == {1: [1], 2: [2], 3: [3]}

    def test_bounding_caps_occurrences(self):
        # Variable 1 in 20 clauses.
        clauses = [[1, 2, 3] for _ in range(10)] + [[-1, 2, 3] for _ in range(10)]
        formula = CNFFormula(3, clauses)
        bounded, _ = bound_occurrences(formula, bound=13)
        assert max_occurrences(bounded) <= 13

    def test_preserves_satisfiability(self):
        formula, _ = random_planted_3sat(4, 16, rng=5)
        bounded, _ = bound_occurrences(formula, bound=3)
        assert is_satisfiable(bounded)

    def test_preserves_unsatisfiability(self):
        # Stack the 8-clause core with duplicated clauses to push
        # occurrences over a small bound.
        core = unsatisfiable_core()
        doubled = CNFFormula(3, list(core.clauses) + list(core.clauses))
        bounded, _ = bound_occurrences(doubled, bound=3)
        assert not is_satisfiable(bounded)

    def test_lift_and_project(self):
        clauses = [[1, 2, 3] for _ in range(6)]
        formula = CNFFormula(3, clauses)
        bounded, copy_map = bound_occurrences(formula, bound=3)
        lifted = lift_assignment({1: True, 2: False, 3: True}, copy_map)
        assert bounded.is_satisfied_by(lifted)
        back = project_assignment(lifted, copy_map)
        assert back == {1: True, 2: False, 3: True}

    def test_small_bound_rejected(self):
        with pytest.raises(ValidationError):
            bound_occurrences(CNFFormula(1, [[1]]), bound=2)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_random_3sat_satisfied_fraction_bounds(seed):
    formula = random_3sat(5, 8, rng=seed)
    best, assignment = max_satisfiable_clauses(formula)
    # Any 3CNF admits an assignment satisfying >= 7/8 of clauses.
    assert best >= (7 * formula.num_clauses) // 8
    assert formula.count_satisfied(assignment) == best
