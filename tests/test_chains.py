"""Tests for the end-to-end hardness chains (Theorems 9 and 15)."""

from fractions import Fraction

import pytest

from repro.core.chains import hardness_chain_qoh, hardness_chain_qon
from repro.core.gap import exceeds_every_polylog, polylog_budget_log2
from repro.joinopt.cost import has_cartesian_product, total_cost
from repro.sat.gapfamilies import no_instance, yes_instance
from repro.utils.lognum import log2_of
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def yes_formula():
    return yes_instance(8, 16, rng=0)


@pytest.fixture(scope="module")
def no_formula():
    return no_instance(2)  # 16 clauses, theta = 1/8


class TestQONChain:
    def test_yes_chain_has_certificate(self, yes_formula):
        chain = hardness_chain_qon(yes_formula, alpha=4)
        assert chain.certificate_sequence is not None
        sequence = chain.certificate_sequence
        assert sorted(sequence) == list(range(chain.fn_step.n))
        assert not has_cartesian_product(chain.instance, sequence)

    def test_yes_certificate_cost_near_k(self, yes_formula):
        """At small family gaps (dn/2 < 15, outside Lemma 6's premise)
        the certificate still lands within alpha^{O(1)} of K."""
        chain = hardness_chain_qon(yes_formula, alpha=4)
        cost = total_cost(chain.instance, chain.certificate_sequence)
        k_log2 = log2_of(chain.yes_cost_bound())
        alpha_log2 = chain.fn_step.alpha_log2
        assert log2_of(cost) <= k_log2 + 16 * alpha_log2

    def test_no_chain_promise_consistency(self, no_formula):
        chain = hardness_chain_qon(no_formula, alpha=4)
        assert chain.certificate_sequence is None
        assert chain.fn_step.k_no >= chain.clique_step.clique_bound_if_gap
        # At the minimal even gap (deficit 2) the Lemma 8 floor equals K.
        assert chain.no_cost_lower_bound() >= chain.yes_cost_bound()

    def test_no_chain_strict_gap_with_more_cores(self):
        chain = hardness_chain_qon(no_instance(4), alpha=4)
        # deficit = ceil(32 / 8) = 4: the floor exceeds K by alpha^1.
        assert chain.no_cost_lower_bound() == chain.yes_cost_bound() * 4

    def test_family_theta_matched_pair(self, no_formula):
        """With the same family theta, YES and NO instances of equal
        formula shape (v, m) get identical reduction parameters."""
        theta = Fraction(1, 8)
        matched_yes = yes_instance(6, 16, rng=5)  # same v=6, m=16 shape
        yes_chain = hardness_chain_qon(matched_yes, alpha=4, family_theta=theta)
        no_chain = hardness_chain_qon(no_formula, alpha=4, family_theta=theta)
        assert yes_chain.fn_step.n == no_chain.fn_step.n
        assert yes_chain.fn_step.k_yes == no_chain.fn_step.k_yes
        assert yes_chain.fn_step.k_no == no_chain.fn_step.k_no

    def test_gap_exceeds_polylog_budget_at_scale(self):
        """Theorem 9's message: with alpha = 4^{n^2} (delta = 1/2) the
        gap factor overwhelms 2^{log^{1/2} K} already at this size."""
        formula = yes_instance(12, 32, rng=1)
        chain = hardness_chain_qon(
            formula, delta=0.5, family_theta=Fraction(1, 8)
        )
        fn = chain.fn_step
        from repro.core.gap import gap_factor_log2, k_cd_log2

        k_log2 = k_cd_log2(
            fn.alpha_log2, log2_of(fn.edge_access_cost), fn.k_yes, fn.k_no
        )
        gap_log2 = gap_factor_log2(fn.alpha_log2, fn.k_yes, fn.k_no)
        budget = polylog_budget_log2(k_log2, delta=0.5)
        assert float(gap_log2) > budget
        assert exceeds_every_polylog(gap_log2, k_log2)

    def test_tiny_formula_rejected(self):
        tiny = yes_instance(3, 6, rng=2)
        with pytest.raises(ValidationError):
            hardness_chain_qon(tiny, alpha=4, family_theta=Fraction(1, 8))


class TestQOHChain:
    def test_yes_chain_certificate(self, yes_formula):
        chain = hardness_chain_qoh(yes_formula, alpha=4)
        plan = chain.certificate_plan
        assert plan is not None
        assert plan.sequence[0] == 0  # hub first
        assert len(plan.decomposition.pipelines) == 5

    def test_certificate_cost_near_l(self, yes_formula):
        chain = hardness_chain_qoh(yes_formula, alpha=4)
        cost_log2 = log2_of(chain.certificate_plan.cost)
        l_log2 = float(chain.fh_step.l_bound_log2())
        assert cost_log2 <= l_log2 + 8

    def test_no_chain_epsilon(self, no_formula):
        chain = hardness_chain_qoh(no_formula, alpha=4)
        assert chain.certificate_plan is None
        assert chain.fh_step.epsilon is not None
        assert chain.fh_step.epsilon > 0
        assert chain.fh_step.g_bound_log2() is not None

    def test_source_n_divisible_by_three(self, yes_formula):
        chain = hardness_chain_qoh(yes_formula, alpha=4)
        assert chain.fh_step.n % 3 == 0
        assert chain.instance.num_relations == chain.fh_step.n + 1
