"""Tests for the unified PlanResult type and its deprecated aliases."""

import dataclasses
from fractions import Fraction

import pytest

from repro.core.results import (
    OptimizerResult,
    PlanResult,
    QOHPlan,
    _reset_deprecation_warnings,
)


class TestPlanResult:
    def test_defaults_and_identity(self):
        result = PlanResult(cost=10, sequence=(0, 1, 2))
        assert result.optimizer == ""
        assert result.explored == 0
        assert not result.is_exact
        assert result.plan is None
        assert result.decomposition is None

    def test_frozen(self):
        result = PlanResult(cost=10, sequence=(0, 1))
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.cost = 11

    def test_trace_excluded_from_equality(self):
        a = PlanResult(cost=10, sequence=(0, 1), trace="task-3")
        b = PlanResult(cost=10, sequence=(0, 1), trace=None)
        assert a == b

    def test_decomposition_property_mirrors_qoh_plan(self):
        class FakeDecomposition:
            pipelines = ((0, 1),)

        plan = FakeDecomposition()
        result = PlanResult(cost=10, sequence=(0, 1), plan=plan)
        assert result.decomposition is plan
        # A StarPlan-like object without pipelines is not one.
        result = PlanResult(cost=10, sequence=(0, 1), plan=object())
        assert result.decomposition is None

    def test_replace_works(self):
        result = PlanResult(cost=10, sequence=(0, 1), optimizer="dp")
        updated = dataclasses.replace(result, optimizer="dp-2")
        assert updated.optimizer == "dp-2"
        assert updated.cost == 10


class TestRatioTo:
    def test_plain_ratio(self):
        result = PlanResult(cost=12, sequence=(0,))
        assert result.ratio_to(4) == pytest.approx(3.0)
        assert result.ratio_to(12) == 1.0

    def test_fraction_costs(self):
        result = PlanResult(cost=Fraction(9, 2), sequence=(0,))
        assert result.ratio_to(Fraction(3, 2)) == pytest.approx(3.0)

    def test_huge_gap_is_inf_not_underflow(self):
        result = PlanResult(cost=2**5000, sequence=(0,))
        assert result.ratio_to(1) == float("inf")

    def test_below_optimal_raises(self):
        """The old silent-underflow path (2.0**negative -> 0.0) is gone:
        a plan "better than optimal" now fails loudly."""
        result = PlanResult(cost=3, sequence=(0,))
        with pytest.raises(ValueError, match="below the claimed optimum"):
            result.ratio_to(4)
        huge = PlanResult(cost=2**100, sequence=(0,))
        with pytest.raises(ValueError):
            huge.ratio_to(2**5000)

    def test_near_equal_huge_costs_clamp_to_one(self):
        cost = 2**4000 + 1
        result = PlanResult(cost=cost, sequence=(0,))
        assert result.ratio_to(cost) >= 1.0


class TestDeprecatedAliases:
    def test_optimizer_result_warns_once(self):
        _reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="OptimizerResult"):
            result = OptimizerResult(cost=5, sequence=(1, 0), optimizer="x")
        assert isinstance(result, PlanResult)
        assert result.sequence == (1, 0)
        # Second construction is silent (warn-once latch).
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            OptimizerResult(cost=5, sequence=(1, 0))

    def test_qohplan_accepts_decomposition_keyword(self):
        _reset_deprecation_warnings()

        class FakeDecomposition:
            pipelines = ((0, 1),)

        plan = FakeDecomposition()
        with pytest.warns(DeprecationWarning, match="QOHPlan"):
            result = QOHPlan(sequence=(0, 1), decomposition=plan, cost=7)
        assert isinstance(result, PlanResult)
        assert result.plan is plan
        assert result.decomposition is plan
        assert result.cost == 7

    def test_aliases_survive_dataclasses_replace(self):
        _reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            result = OptimizerResult(cost=5, sequence=(1, 0), optimizer="x")
        updated = dataclasses.replace(result, explored=3)
        assert updated.explored == 3
        assert updated.cost == 5

    def test_aliases_importable_from_old_homes(self):
        from repro.hashjoin.optimizer import QOHPlan as FromHashjoin
        from repro.joinopt.optimizers.base import (
            OptimizerResult as FromBase,
        )

        assert FromBase is OptimizerResult
        assert FromHashjoin is QOHPlan
