"""Tests for the parallel sweep runner, cost cache and metrics layer.

The differential identity test is the load-bearing one: a parallel
sweep must return exactly what the serial sweep returns, in the same
order, regardless of worker completion order.
"""

import json
import time
from fractions import Fraction

import pytest

from repro.graphs.graph import Graph
from repro.hashjoin.instance import QOHInstance
from repro.runtime import metrics as metrics_mod
from repro.runtime.costcache import CostCache, fingerprint, use_cache
from repro.runtime.metrics import (
    SCHEMA,
    ValidationError,
    load_metrics,
    sweep_metrics,
    validate_metrics,
    write_metrics,
)
from repro.runtime.runner import (
    OPTIMIZERS,
    SweepTask,
    SweepTimeout,
    _call_with_timeout,
    default_workers,
    grid_tasks,
    run_sweep,
)
from repro.starqo.instance import SQOCPInstance
from repro.workloads.queries import chain_query, random_query

_RANDOMIZED = {"iterative", "annealing", "sampling", "genetic"}


def _qoh_instance():
    """Path query 0-1-2-3, small enough for every QO_H searcher."""
    graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
    return QOHInstance(
        graph,
        [64, 32, 128, 16],
        {(0, 1): Fraction(1, 8), (1, 2): Fraction(1, 16), (2, 3): Fraction(1, 4)},
        memory=64,
    )


def _sqocp_instance():
    """Three-satellite star, small enough for both SQO-CP solvers."""
    return SQOCPInstance(
        num_satellites=3,
        sort_passes=2,
        page_size=8,
        tuples=[120, 40, 80, 24],
        pages=[15, 5, 10, 3],
        sort_costs=[60, 20, 40, 12],
        selectivities=[Fraction(1, 4), Fraction(1, 8), Fraction(1, 2)],
        satellite_access=[4, 6, 2],
        center_access=[12, 20, 8],
    )


def _instance_for(name):
    if name.startswith("qoh-"):
        return _qoh_instance()
    if name.startswith("sqocp-"):
        return _sqocp_instance()
    if name == "ikkbz":  # tree queries only
        return chain_query(5, rng=1)
    return random_query(5, rng=1)


def _grid():
    instances = [
        (f"g-s{seed}", random_query(5, rng=seed)) for seed in range(3)
    ]
    return grid_tasks(
        ["dp", "bnb", "greedy-cost", "sampling"],
        instances,
        kwargs_for=lambda name, label: (
            {"rng": 0, "samples": 30} if name == "sampling" else {}
        ),
    )


def _slow_optimizer(instance, **_kwargs):
    time.sleep(5.0)
    return OPTIMIZERS["greedy-cost"](instance)


def _broken_optimizer(instance, **_kwargs):
    raise RuntimeError("boom")


class TestEveryOptimizerReportsWork:
    """Satellite: ``OptimizerResult.explored`` gaps are fixed for good."""

    @pytest.mark.parametrize("name", sorted(OPTIMIZERS))
    def test_explored_positive(self, name):
        kwargs = {"rng": 0} if name in _RANDOMIZED else {}
        result = OPTIMIZERS[name](_instance_for(name), **kwargs)
        assert result is not None
        assert result.explored > 0, (
            f"{name} returned explored={result.explored}; every "
            "optimizer must report the plans it examined"
        )


class TestSerialSweep:
    def test_outcomes_in_task_order(self):
        tasks = _grid()
        result = run_sweep(tasks, workers=1)
        assert result.mode == "serial"
        assert len(result) == len(tasks)
        for index, (outcome, task) in enumerate(zip(result, tasks)):
            assert outcome.index == index
            assert outcome.label == task.label
            assert outcome.optimizer == task.optimizer_name
            assert outcome.ok
            assert outcome.explored > 0
            assert outcome.wall_time >= 0

    def test_shared_cache_accumulates_hits(self):
        result = run_sweep(_grid(), workers=1, cache=True)
        totals = result.cache_totals()
        assert totals.misses > 0
        assert totals.hits > 0  # dp/bnb share the subset-size lattice
        assert 0.0 <= totals.hit_rate <= 1.0

    def test_uncached_baseline_counts_evaluations(self):
        cached = run_sweep(_grid(), workers=1, cache=True)
        baseline = run_sweep(_grid(), workers=1, cache=False)
        assert baseline.cache_totals().hits == 0
        assert baseline.evaluations > cached.evaluations
        for a, b in zip(cached, baseline):
            assert a.result.cost == b.result.cost
            assert a.result.sequence == b.result.sequence

    def test_error_is_an_outcome_not_a_crash(self):
        task = SweepTask(
            optimizer=_broken_optimizer,
            instance=random_query(4, rng=0),
            label="broken",
        )
        result = run_sweep([task], workers=1)
        outcome = result.outcomes[0]
        assert not outcome.ok
        assert "RuntimeError" in outcome.error
        assert outcome.result is None


class TestParallelSweep:
    def test_parallel_matches_serial(self):
        """Differential identity: same plans, costs, explored, order."""
        tasks = _grid()
        serial = run_sweep(tasks, workers=1)
        parallel = run_sweep(tasks, workers=2)
        if parallel.mode != "parallel":
            pytest.skip("no multiprocessing pool available here")
        assert [o.label for o in parallel] == [o.label for o in serial]
        for s, p in zip(serial, parallel):
            assert p.index == s.index
            assert p.optimizer == s.optimizer
            assert p.result.cost == s.result.cost
            assert p.result.sequence == s.result.sequence
            assert p.explored == s.explored

    def test_parallel_aggregates_cache_counters(self):
        tasks = _grid()
        parallel = run_sweep(tasks, workers=2)
        if parallel.mode != "parallel":
            pytest.skip("no multiprocessing pool available here")
        totals = parallel.cache_totals()
        assert totals.misses > 0
        assert any(o.cache.misses > 0 for o in parallel)

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        from repro.runtime import runner as runner_mod

        def explode(*_args, **_kwargs):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(runner_mod, "_make_pool", explode)
        tasks = _grid()
        result = run_sweep(tasks, workers=4)
        assert result.mode == "serial"
        assert all(o.ok for o in result)

    def test_default_workers_is_sane(self):
        workers = default_workers()
        assert 1 <= workers <= 8


class TestTimeouts:
    def test_timeout_marks_partial_outcome(self):
        task = SweepTask(
            optimizer=_slow_optimizer,
            instance=random_query(4, rng=0),
            label="slow",
            timeout=0.2,
        )
        start = time.perf_counter()
        result = run_sweep([task], workers=1)
        elapsed = time.perf_counter() - start
        outcome = result.outcomes[0]
        assert outcome.timed_out
        assert not outcome.ok
        assert "timeout" in outcome.error
        assert outcome.result is None
        assert elapsed < 4.0  # the 5s sleep was actually interrupted

    def test_timeout_does_not_poison_later_tasks(self):
        tasks = [
            SweepTask(
                optimizer=_slow_optimizer,
                instance=random_query(4, rng=0),
                label="slow",
                timeout=0.2,
            ),
            SweepTask(
                optimizer="dp",
                instance=random_query(4, rng=0),
                label="fast",
            ),
        ]
        result = run_sweep(tasks, workers=1)
        assert result.outcomes[0].timed_out
        assert result.outcomes[1].ok
        assert result.outcomes[1].result.cost is not None

    def test_nested_timed_calls_restore_the_outer_alarm(self):
        """Regression: an inner timed call must not disarm the outer one.

        Before the fix, the inner ``_call_with_timeout`` cleared the
        SIGALRM itimer on exit, so the outer 0.3s budget was lost and
        the trailing sleep ran its full 10 seconds.
        """

        def outer():
            inner = _call_with_timeout(lambda: "inner-ok", 5.0)
            assert inner == "inner-ok"
            time.sleep(10)
            return "never"

        start = time.perf_counter()
        with pytest.raises(SweepTimeout):
            _call_with_timeout(outer, 0.3)
        assert time.perf_counter() - start < 4.0

    def test_inner_timeout_restores_handler_when_task_raises(self):
        def outer():
            with pytest.raises(RuntimeError):
                _call_with_timeout(self._boom, 5.0)
            time.sleep(10)
            return "never"

        start = time.perf_counter()
        with pytest.raises(SweepTimeout):
            _call_with_timeout(outer, 0.3)
        assert time.perf_counter() - start < 4.0

    @staticmethod
    def _boom():
        raise RuntimeError("task failed inside the inner timer")


class TestCostCacheUnit:
    def test_get_or_compute_counts(self):
        instance = random_query(4, rng=0)
        cache = CostCache()
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute(instance, "k", 1, compute) == 42
        assert cache.get_or_compute(instance, "k", 1, compute) == 42
        assert len(calls) == 1
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1

    def test_distinct_instances_do_not_collide(self):
        a = random_query(4, rng=0)
        b = random_query(4, rng=1)
        assert fingerprint(a) != fingerprint(b)
        cache = CostCache()
        assert cache.get_or_compute(a, "k", 1, lambda: "a") == "a"
        assert cache.get_or_compute(b, "k", 1, lambda: "b") == "b"

    def test_passthrough_mode_stores_nothing(self):
        instance = random_query(4, rng=0)
        cache = CostCache(maxsize=0)
        for _ in range(3):
            cache.get_or_compute(instance, "k", 1, lambda: 7)
        stats = cache.stats()
        assert stats.hits == 0
        assert stats.misses == 3
        assert stats.size == 0


class TestMetrics:
    def _payload(self):
        result = run_sweep(_grid(), workers=1)
        return sweep_metrics(result, grid={"purpose": "unit-test"})

    def test_schema_round_trip(self, tmp_path):
        payload = self._payload()
        validate_metrics(payload)
        assert payload["schema"] == SCHEMA
        path = tmp_path / "metrics.json"
        write_metrics(payload, path)
        loaded = load_metrics(path)
        assert loaded == payload
        # The file is plain JSON, usable outside this codebase.
        assert json.loads(path.read_text())["totals"]["tasks"] == len(_grid())

    def test_totals_are_consistent(self):
        payload = self._payload()
        totals = payload["totals"]
        assert totals["tasks"] == len(payload["tasks"])
        assert totals["ok"] == sum(1 for t in payload["tasks"] if t["ok"])
        assert totals["plans_explored"] == sum(
            t["explored"] for t in payload["tasks"]
        )
        assert 0.0 <= totals["cache_hit_rate"] <= 1.0

    def test_validation_rejects_corrupt_payloads(self):
        payload = self._payload()
        broken = dict(payload, schema="bogus/9")
        with pytest.raises(ValidationError):
            validate_metrics(broken)
        broken = json.loads(json.dumps(payload))
        broken["totals"]["cache_hit_rate"] = 3.5
        with pytest.raises(ValidationError):
            validate_metrics(broken)
        broken = json.loads(json.dumps(payload))
        del broken["totals"]["tasks"]
        with pytest.raises(ValidationError):
            validate_metrics(broken)

    def test_metrics_module_is_lazy_loaded(self):
        import repro.runtime as runtime

        assert runtime.sweep_metrics is metrics_mod.sweep_metrics
