"""Tests for the project invariant linter (``repro.devtools``).

Covers, per ISSUE requirements:

* one failing fixture per RPR rule (miniature ``repro`` trees under a
  tmpdir, exercising the path-based classification);
* the clean-tree assertion: ``repro lint`` over the real ``src``,
  ``benchmarks`` and ``examples`` trees reports zero violations;
* ``# repro: noqa`` suppression semantics;
* the ``repro.lint/1`` JSON reporter schema;
* the ``repro lint`` CLI subcommand (exit codes, --select, --format,
  --list-rules).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools import (
    JSON_SCHEMA_VERSION,
    RULES,
    lint_paths,
    render_json,
    render_text,
    rule_codes,
)
from repro.devtools.diagnostics import PARSE_ERROR_CODE
from repro.devtools.engine import collect_files

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_tree(root: Path, files: dict) -> Path:
    """Materialize ``{relative path: source}`` under ``root``."""
    for relative, content in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return root


def codes_of(report) -> list:
    return [diagnostic.code for diagnostic in report.diagnostics]


# ---------------------------------------------------------------------
# Per-rule failing fixtures
# ---------------------------------------------------------------------


class TestRuleFixtures:
    def test_rpr001_flags_floats_in_cost_model(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/joinopt/cost.py": """\
                import math
                SCALE = 0.5

                def total_cost(x):
                    return float(x) * math.sqrt(2)
            """,
        })
        report = lint_paths([tree])
        assert codes_of(report) == ["RPR001", "RPR001", "RPR001"]
        messages = " ".join(d.message for d in report.diagnostics)
        assert "float literal" in messages
        assert "float(...)" in messages
        assert "math import" in messages

    def test_rpr001_ignores_floats_elsewhere(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/joinopt/explain.py": "SHARE = 0.5\n",
        })
        assert lint_paths([tree]).ok

    def test_rpr002_flags_direct_random(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py": """\
                import random
                from numpy.random import default_rng
            """,
        })
        report = lint_paths([tree])
        assert codes_of(report) == ["RPR002", "RPR002"]

    def test_rpr002_allows_rng_home(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/utils/rng.py": "import random\n",
        })
        assert lint_paths([tree]).ok

    def test_rpr003_flags_deprecated_alias_import(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/engine/data.py": """\
                from repro.joinopt.optimizers import OptimizerResult

                def build(plan: OptimizerResult):
                    return plan
            """,
            "src/repro/hashjoin/search.py": """\
                import repro.hashjoin.optimizer as opt

                def best():
                    return opt.QOHPlan
            """,
        })
        report = lint_paths([tree])
        assert codes_of(report).count("RPR003") == len(report.diagnostics)
        # import site + annotation use + attribute access
        assert len(report.diagnostics) == 3

    def test_rpr003_allows_the_alias_home(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/results.py": """\
                class PlanResult:
                    pass

                class OptimizerResult(PlanResult):
                    pass

                class QOHPlan(PlanResult):
                    pass
            """,
        })
        assert lint_paths([tree]).ok

    def test_rpr004_traced_but_unregistered(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/runtime/runner.py": """\
                OPTIMIZERS = {"dp": dp_optimal}
            """,
            "src/repro/joinopt/optimizers/exact.py": """\
                @traced("optimize.secret")
                def secret_optimizer(instance):
                    return None
            """,
        })
        report = lint_paths([tree], select=["RPR004"])
        assert codes_of(report) == ["RPR004"]
        assert "not registered" in report.diagnostics[0].message

    def test_rpr004_registered_but_untraced(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/runtime/runner.py": """\
                OPTIMIZERS = {"dp": dp_optimal}
            """,
            "src/repro/joinopt/optimizers/exact.py": """\
                def dp_optimal(instance):
                    return None
            """,
        })
        report = lint_paths([tree], select=["RPR004"])
        assert codes_of(report) == ["RPR004"]
        assert "lacks" in report.diagnostics[0].message

    def test_rpr004_clean_when_traced_and_registered(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/runtime/runner.py": """\
                OPTIMIZERS = {"dp": dp_optimal}
            """,
            "src/repro/joinopt/optimizers/exact.py": """\
                @traced("optimize.dp")
                def dp_optimal(instance):
                    return None
            """,
        })
        assert lint_paths([tree], select=["RPR004"]).ok

    def test_rpr005_bare_and_swallowed_excepts(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/runtime/worker.py": """\
                def run(task):
                    try:
                        task()
                    except:
                        raise
                    try:
                        task()
                    except Exception:
                        pass
            """,
        })
        report = lint_paths([tree], select=["RPR005"])
        assert codes_of(report) == ["RPR005", "RPR005"]

    def test_rpr005_allows_handled_broad_except(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/runtime/worker.py": """\
                def run(task):
                    try:
                        task()
                    except Exception as exc:
                        return str(exc)
            """,
        })
        assert lint_paths([tree], select=["RPR005"]).ok

    def test_rpr006_mutable_defaults(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/engine/data.py": """\
                def build(rows=[], lookup={}, tags=set(), *, extra=list()):
                    return rows, lookup, tags, extra
            """,
        })
        report = lint_paths([tree], select=["RPR006"])
        assert codes_of(report) == ["RPR006"] * 4

    def test_rpr007_cli_must_route_through_facade(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/cli.py": """\
                from repro import api, io
                from repro.joinopt.instance import QONInstance
                from repro import joinopt
                import repro.runtime.runner
            """,
        })
        report = lint_paths([tree], select=["RPR007"])
        assert codes_of(report) == ["RPR007"] * 3

    def test_rpr007_ignores_non_cli_modules(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/engine/data.py": """\
                from repro.joinopt.instance import QONInstance
            """,
        })
        assert lint_paths([tree], select=["RPR007"]).ok

    def test_rpr008_benchmark_global_mutation(self, tmp_path):
        tree = make_tree(tmp_path, {
            "benchmarks/test_bench_demo.py": """\
                import os
                from repro.runtime import cache
                from repro.runtime.cache import install_cache

                COUNTER = 0

                def test_bench():
                    global COUNTER
                    cache.default_size = 10
                    os.environ["REPRO_MODE"] = "bench"
                    install_cache()
            """,
        })
        report = lint_paths([tree], select=["RPR008"])
        assert codes_of(report) == ["RPR008"] * 4

    def test_rpr008_only_applies_to_benchmarks(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/runtime/cache.py": """\
                import os

                def configure():
                    os.environ["REPRO_MODE"] = "cache"
            """,
        })
        assert lint_paths([tree], select=["RPR008"]).ok

    def test_rpr009_floats_in_perf_kernels(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/perf/kernels.py": """\
                import math
                EPSILON = 1e-9

                def approx(value):
                    return float(value) * math.sqrt(2)
            """,
        })
        report = lint_paths([tree], select=["RPR009"])
        assert codes_of(report) == ["RPR009"] * 3
        messages = " ".join(d.message for d in report.diagnostics)
        assert "float literal" in messages
        assert "float(...)" in messages
        assert "math import" in messages

    def test_rpr009_evaluator_must_import_cost_cache(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/perf/incremental.py": """\
                def evaluate(sequence):
                    return sum(sequence)
            """,
        })
        report = lint_paths([tree], select=["RPR009"])
        assert codes_of(report) == ["RPR009"]
        assert "CostCache" in report.diagnostics[0].message

    def test_rpr009_clean_when_exact_and_routed(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/perf/incremental.py": """\
                from fractions import Fraction

                from repro.runtime.costcache import active_cache

                def evaluate(sequence):
                    return Fraction(sum(sequence))
            """,
        })
        assert lint_paths([tree], select=["RPR009"]).ok

    def test_rpr009_ignores_bench_and_instrument(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/perf/bench.py": "SCALE = 0.5\n",
            "src/repro/perf/instrument.py": "RATE = 2.5\n",
        })
        assert lint_paths([tree], select=["RPR009"]).ok

    def test_rpr010_flags_fault_plan_outside_resilience(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/api.py": """\
                from repro.runtime.resilience import FaultPlan

                def chaos_sweep(tasks):
                    return FaultPlan(faults=())
            """,
        })
        report = lint_paths([tree], select=["RPR010"])
        assert codes_of(report) == ["RPR010"]
        assert "resilience" in report.diagnostics[0].message

    def test_rpr010_flags_attribute_construction(self, tmp_path):
        tree = make_tree(tmp_path, {
            "benchmarks/test_bench_chaos.py": """\
                from repro.runtime import resilience

                PLAN = resilience.FaultPlan(faults=())
            """,
        })
        report = lint_paths([tree], select=["RPR010"])
        assert codes_of(report) == ["RPR010"]

    def test_rpr010_allows_the_chaos_home(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/runtime/resilience.py": """\
                class FaultPlan:
                    pass

                def seeded_plan():
                    return FaultPlan()
            """,
        })
        assert lint_paths([tree], select=["RPR010"]).ok

    def test_rpr010_allows_passing_plans_through(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/api.py": """\
                def sweep(tasks, fault_plan=None):
                    return run_resilient_sweep(tasks, fault_plan=fault_plan)
            """,
        })
        assert lint_paths([tree], select=["RPR010"]).ok

    def test_rpr011_flags_service_importing_internals(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/service/bad.py": """\
                import repro.runtime.runner
                from repro import joinopt
                from repro.joinopt.optimizers.exact import dp_optimal
            """,
        })
        report = lint_paths([tree], select=["RPR011"])
        assert codes_of(report) == ["RPR011"] * 3
        messages = " ".join(d.message for d in report.diagnostics)
        assert "repro.api request objects" in messages

    def test_rpr011_allows_the_facade_and_friends(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/service/good.py": """\
                from repro import api
                from repro.service import protocol
                from repro.observability.tracer import Tracer
                from repro.utils.validation import require
                import repro.io
            """,
        })
        assert lint_paths([tree], select=["RPR011"]).ok

    def test_rpr011_ignores_non_service_modules(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/engine/data.py": """\
                import repro.runtime.runner
            """,
        })
        assert lint_paths([tree], select=["RPR011"]).ok

    def test_rpr013_flags_registry_outside_runtime(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/api.py": """\
                from repro.runtime.registry import InstanceRegistry

                def private_store():
                    return InstanceRegistry(max_live=4)
            """,
        })
        report = lint_paths([tree], select=["RPR013"])
        assert codes_of(report) == ["RPR013"]
        assert "InstanceRef" in report.diagnostics[0].message

    def test_rpr013_flags_classmethod_construction(self, tmp_path):
        tree = make_tree(tmp_path, {
            "benchmarks/bench_registry.py": """\
                from repro.runtime.registry import InstanceRegistry

                STORE = InstanceRegistry.from_payloads({})
            """,
        })
        report = lint_paths([tree], select=["RPR013"])
        assert codes_of(report) == ["RPR013"]

    def test_rpr013_allows_runtime_and_service(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/runtime/runner.py": """\
                from repro.runtime.registry import InstanceRegistry

                def _make_pool():
                    return InstanceRegistry()
            """,
            "src/repro/service/server.py": """\
                from repro import api

                def build(config):
                    return api.InstanceRegistry(max_live=8)
            """,
        })
        assert lint_paths([tree], select=["RPR013"]).ok

    def test_rpr013_allows_passing_refs_through(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/api.py": """\
                from repro.runtime.registry import InstanceRef

                def resolve(ref: InstanceRef):
                    return ref.key
            """,
        })
        assert lint_paths([tree], select=["RPR013"]).ok

    def test_rpr014_flags_adhoc_module_counter(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/runtime/widgets.py": """\
                _CALLS = 0

                def frob():
                    global _CALLS
                    _CALLS += 1
            """,
        })
        report = lint_paths([tree], select=["RPR014"])
        assert codes_of(report) == ["RPR014"]
        assert "metrics registry" in report.diagnostics[0].message

    def test_rpr014_ignores_non_telemetry_packages(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/joinopt/search.py": """\
                _CALLS = 0

                def frob():
                    global _CALLS
                    _CALLS += 1
            """,
        })
        assert lint_paths([tree], select=["RPR014"]).ok

    def test_rpr014_ignores_non_counter_globals(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/service/config.py": """\
                _LIMIT = 0
                _MODE = None

                def set_limit(value):
                    global _LIMIT
                    _LIMIT = value

                def set_mode(mode):
                    global _MODE
                    _MODE = mode
            """,
        })
        assert lint_paths([tree], select=["RPR014"]).ok

    def test_rpr014_grandfathers_kernel_compile_counter(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/perf/kernels.py": """\
                _COMPILES = 0

                def compile_qon(instance):
                    global _COMPILES
                    _COMPILES += 1
                    return instance
            """,
        })
        assert lint_paths([tree], select=["RPR014"]).ok

    def test_rpr000_parse_error_is_a_finding(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/broken.py": "def oops(:\n",
        })
        report = lint_paths([tree])
        assert codes_of(report) == [PARSE_ERROR_CODE]
        assert not report.ok

    def test_every_rule_has_a_registry_entry(self):
        assert rule_codes() == [
            "RPR001", "RPR002", "RPR003", "RPR004",
            "RPR005", "RPR006", "RPR007", "RPR008",
            "RPR009", "RPR010", "RPR011", "RPR012",
            "RPR013", "RPR014",
        ]
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.name
            assert rule.description


# ---------------------------------------------------------------------
# noqa suppression
# ---------------------------------------------------------------------


class TestNoqa:
    def test_repro_noqa_with_code_suppresses(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py":
                "import random  # repro: noqa[RPR002]\n",
        })
        assert lint_paths([tree]).ok

    def test_repro_noqa_bare_suppresses_all(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py": "import random  # repro: noqa\n",
        })
        assert lint_paths([tree]).ok

    def test_wrong_code_does_not_suppress(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py":
                "import random  # repro: noqa[RPR001]\n",
        })
        report = lint_paths([tree])
        assert codes_of(report) == ["RPR002"]

    def test_plain_flake8_noqa_is_not_honored(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py": "import random  # noqa\n",
        })
        report = lint_paths([tree])
        assert codes_of(report) == ["RPR002"]

    def test_multiple_codes_in_one_suppression(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/joinopt/cost.py":
                "import random  # repro: noqa[RPR002,RPR001]\n",
        })
        assert lint_paths([tree]).ok

    def test_rpr012_flags_unknown_suppression_code(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py":
                "import random  # repro: noqa[RPR002,RPR02]\n",
        })
        report = lint_paths([tree])
        assert codes_of(report) == ["RPR012"]
        assert "'RPR02'" in report.diagnostics[0].message

    def test_rpr012_accepts_analyzer_codes(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py":
                "X = 1  # repro: noqa[ANA101]\n",
        })
        assert lint_paths([tree]).ok


# ---------------------------------------------------------------------
# Engine behavior
# ---------------------------------------------------------------------


class TestEngine:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "definitely-not-here"])

    def test_unknown_select_raises(self, tmp_path):
        make_tree(tmp_path, {"src/repro/a.py": "X = 1\n"})
        with pytest.raises(ValueError):
            lint_paths([tmp_path], select=["RPR999"])

    def test_select_is_case_insensitive(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py": "import random\n",
        })
        report = lint_paths([tree], select=["rpr002"])
        assert codes_of(report) == ["RPR002"]

    def test_collect_skips_caches_and_hidden_dirs(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/a.py": "X = 1\n",
            "src/repro/__pycache__/a.py": "X = 1\n",
            "src/.hidden/b.py": "X = 1\n",
            "src/repro.egg-info/c.py": "X = 1\n",
        })
        files = collect_files([tmp_path])
        assert [path.name for path in files] == ["a.py"]

    def test_counts_aggregates_per_code(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py": "import random\n",
            "src/repro/engine/data.py": "def f(x=[]):\n    return x\n",
        })
        report = lint_paths([tree])
        assert report.counts() == {"RPR002": 1, "RPR006": 1}


# ---------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------


class TestReporters:
    def test_json_schema(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py": "import random\n",
        })
        report = lint_paths([tree])
        payload = json.loads(render_json(report))
        assert payload["version"] == JSON_SCHEMA_VERSION == "repro.lint/1"
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"RPR002": 1}
        (entry,) = payload["diagnostics"]
        assert set(entry) == {
            "path", "line", "col", "code", "rule", "message",
        }
        assert entry["code"] == "RPR002"
        assert entry["line"] == 1

    def test_text_report_lists_findings_and_summary(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py": "import random\n",
        })
        text = render_text(lint_paths([tree]))
        assert "RPR002" in text
        assert "workloads.py:1:" in text
        assert "1 violation" in text

    def test_text_report_clean(self, tmp_path):
        tree = make_tree(tmp_path, {"src/repro/a.py": "X = 1\n"})
        text = render_text(lint_paths([tree]))
        assert "no invariant violations" in text


# ---------------------------------------------------------------------
# The real tree is clean
# ---------------------------------------------------------------------


class TestCleanTree:
    def test_repo_sources_pass_their_own_linter(self):
        report = lint_paths([
            REPO_ROOT / "src",
            REPO_ROOT / "benchmarks",
            REPO_ROOT / "examples",
        ])
        assert report.diagnostics == ()
        assert report.files_checked > 100

    def test_lint_cli_on_src_exits_zero(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        out = capsys.readouterr().out
        assert "no invariant violations" in out


# ---------------------------------------------------------------------
# CLI subcommand
# ---------------------------------------------------------------------


class TestLintCli:
    def test_findings_exit_one(self, tmp_path, capsys):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py": "import random\n",
        })
        assert main(["lint", str(tree)]) == 1
        out = capsys.readouterr().out
        assert "RPR002" in out

    def test_json_format(self, tmp_path, capsys):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py": "import random\n",
        })
        assert main(["lint", str(tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "repro.lint/1"
        assert payload["ok"] is False

    def test_select_limits_rules(self, tmp_path, capsys):
        tree = make_tree(tmp_path, {
            "src/repro/workloads.py": "import random\n",
        })
        assert main(["lint", str(tree), "--select", "RPR006"]) == 0
        assert "no invariant violations" in capsys.readouterr().out

    def test_unknown_select_exits_two(self, tmp_path, capsys):
        tree = make_tree(tmp_path, {"src/repro/a.py": "X = 1\n"})
        assert main(["lint", str(tree), "--select", "RPR999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in rule_codes():
            assert code in out
