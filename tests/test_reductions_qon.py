"""Tests for f_N (Section 4): construction, Lemma 6 and Lemma 8."""

import itertools
from fractions import Fraction

import pytest

from repro.core.certificates import qon_certificate_sequence
from repro.core.gap import (
    gap_factor_log2,
    k_cd,
    k_cd_log2,
    no_side_lower_bound,
)
from repro.core.reductions.clique_to_qon import clique_to_qon
from repro.graphs.generators import complete_graph
from repro.graphs.graph import Graph
from repro.joinopt.cost import join_costs, total_cost
from repro.joinopt.optimizers import dp_optimal
from repro.utils.lognum import log2_of
from repro.utils.validation import ValidationError
from repro.workloads.gaps import qon_gap_pair, turan_graph


class TestConstruction:
    def test_parameters(self):
        reduction = clique_to_qon(complete_graph(6), k_yes=5, k_no=3, alpha=16)
        assert reduction.relation_size == 4 ** (5 + 3)
        assert reduction.edge_access_cost == reduction.relation_size // 16
        assert reduction.instance.selectivity(0, 1) == Fraction(1, 16)

    def test_non_edge_statistics(self):
        graph = Graph(4, [(0, 1), (1, 2), (0, 2)])
        reduction = clique_to_qon(graph, k_yes=3, k_no=1, alpha=4)
        instance = reduction.instance
        assert instance.selectivity(0, 3) == 1
        assert instance.access_cost(0, 3) == reduction.relation_size

    def test_parity_adjustment(self):
        reduction = clique_to_qon(complete_graph(6), k_yes=5, k_no=2, alpha=4)
        assert reduction.parity_adjusted
        assert reduction.k_no == 3

    def test_parity_closing_gap_rejected(self):
        with pytest.raises(ValidationError):
            clique_to_qon(complete_graph(6), k_yes=4, k_no=3, alpha=4)

    def test_alpha_must_be_square(self):
        with pytest.raises(ValidationError):
            clique_to_qon(complete_graph(4), k_yes=3, k_no=1, alpha=8)

    def test_default_alpha_scales(self):
        reduction = clique_to_qon(complete_graph(4), k_yes=3, k_no=1, delta=1.0)
        assert reduction.alpha == 4**4

    def test_c_d_fractions(self):
        reduction = clique_to_qon(complete_graph(10), k_yes=8, k_no=4, alpha=4)
        assert reduction.c == Fraction(8, 10)
        assert reduction.d == Fraction(4, 10)


class TestGapQuantities:
    def test_k_cd_exact_vs_log(self):
        alpha, w = 16, 4**7
        exact = k_cd(alpha, w, 6, 4)
        logged = k_cd_log2(4, log2_of(w), 6, 4)
        assert log2_of(exact) == pytest.approx(float(logged))

    def test_k_cd_parity_required(self):
        with pytest.raises(ValidationError):
            k_cd(4, 4, 5, 2)

    def test_lower_bound_factor(self):
        alpha, w = 4, 16
        assert no_side_lower_bound(alpha, w, 8, 4) == k_cd(alpha, w, 8, 4) * alpha

    def test_gap_factor_log(self):
        assert gap_factor_log2(2, 8, 4) == Fraction(2) * 1  # alpha^{(dn/2)-1}


class TestLemma6:
    """YES side: the clique-first sequence costs at most K_{c,d}."""

    def test_strict_bound_large_gap(self):
        """With dn/2 >= 15 (the proof's premise n >= 30/d), the bound
        holds exactly."""
        graph = complete_graph(40)
        reduction = clique_to_qon(graph, k_yes=36, k_no=4, alpha=4)
        sequence = qon_certificate_sequence(reduction, list(range(36)))
        cost = total_cost(reduction.instance, sequence)
        assert cost <= reduction.yes_cost_bound()

    def test_h_profile_unimodal_on_clique(self):
        """Inside the clique prefix, H rises to i ~ (c-d/2)n then falls
        (the inequality chain in Lemma 6's proof)."""
        graph = complete_graph(30)
        reduction = clique_to_qon(graph, k_yes=28, k_no=2, alpha=4)
        sequence = qon_certificate_sequence(reduction, list(range(28)))
        costs = join_costs(reduction.instance, sequence)
        peak = (reduction.k_yes + reduction.k_no) // 2
        for i in range(peak - 2):
            assert costs[i] <= costs[i + 1]
        for i in range(peak, len(costs) - 1):
            assert costs[i] >= costs[i + 1]

    def test_certificate_requires_enough_vertices(self):
        reduction = clique_to_qon(complete_graph(8), k_yes=6, k_no=2, alpha=4)
        with pytest.raises(ValidationError):
            qon_certificate_sequence(reduction, [0, 1, 2])

    def test_certificate_requires_clique(self):
        graph = turan_graph(8, 4)
        reduction = clique_to_qon(graph, k_yes=6, k_no=4, alpha=4)
        with pytest.raises(ValidationError):
            qon_certificate_sequence(reduction, list(range(6)))

    def test_certificate_avoids_cartesian_products(self):
        from repro.joinopt.cost import has_cartesian_product

        graph = complete_graph(12)
        reduction = clique_to_qon(graph, k_yes=10, k_no=2, alpha=4)
        sequence = qon_certificate_sequence(reduction, list(range(10)))
        assert not has_cartesian_product(reduction.instance, sequence)


class TestLemma8:
    """NO side: every sequence costs at least K * alpha^{dn/2 - 1}."""

    @pytest.mark.parametrize("parts", [3, 5])
    def test_brute_force_lower_bound(self, parts):
        graph = turan_graph(8, parts)  # omega = parts exactly
        k_no = parts if (8 - parts) % 2 == 0 else parts + 1
        reduction = clique_to_qon(graph, k_yes=7 if k_no == 5 else 8, k_no=k_no, alpha=4)
        optimal = dp_optimal(reduction.instance)
        assert optimal.cost >= reduction.no_cost_lower_bound()

    def test_exhaustive_all_sequences(self):
        """Check the bound on literally every permutation (n = 6)."""
        graph = turan_graph(6, 2)  # omega = 2
        reduction = clique_to_qon(graph, k_yes=6, k_no=2, alpha=4)
        bound = reduction.no_cost_lower_bound()
        for sequence in itertools.permutations(range(6)):
            assert total_cost(reduction.instance, sequence) >= bound

    def test_gap_pair_separation(self):
        """YES certificate cost is below every NO-instance plan."""
        pair = qon_gap_pair(8, 6, 2, alpha=4)
        cert = qon_certificate_sequence(pair.yes_reduction, pair.yes_clique)
        yes_cost = total_cost(pair.yes_reduction.instance, cert)
        no_cost = dp_optimal(pair.no_reduction.instance).cost
        assert yes_cost <= pair.yes_reduction.yes_cost_bound()
        assert no_cost >= pair.no_reduction.no_cost_lower_bound()
        assert no_cost > yes_cost

    def test_gap_grows_with_alpha(self):
        gaps = []
        for alpha in (4, 16, 64):
            pair = qon_gap_pair(8, 6, 2, alpha=alpha)
            cert = qon_certificate_sequence(pair.yes_reduction, pair.yes_clique)
            yes_cost = total_cost(pair.yes_reduction.instance, cert)
            no_cost = dp_optimal(pair.no_reduction.instance).cost
            gaps.append(log2_of(no_cost) - log2_of(yes_cost))
        assert gaps[0] < gaps[1] < gaps[2]
