"""Dedicated tests for the certificate constructors (Lemma 6 / 12)."""

from fractions import Fraction

import pytest

from repro.core.certificates import (
    _connected_completion,
    qoh_certificate_plan,
    qon_certificate_sequence,
)
from repro.core.reductions.clique_to_qoh import clique_to_qoh
from repro.core.reductions.clique_to_qon import clique_to_qon
from repro.graphs.generators import complete_graph
from repro.graphs.graph import Graph
from repro.joinopt.cost import has_cartesian_product, total_cost
from repro.utils.validation import ValidationError
from repro.workloads.gaps import turan_graph


class TestConnectedCompletion:
    def test_full_order(self):
        graph = complete_graph(5)
        order = _connected_completion(graph, [2, 4])
        assert sorted(order) == list(range(5))
        assert order[:2] == [2, 4]

    def test_connected_graph_stays_connected(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        order = _connected_completion(graph, [0])
        for position in range(1, 5):
            assert any(
                graph.has_edge(order[position], earlier)
                for earlier in order[:position]
            )

    def test_disconnected_falls_back(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        order = _connected_completion(graph, [0])
        assert sorted(order) == [0, 1, 2, 3]

    def test_duplicates_removed_upstream(self):
        graph = complete_graph(4)
        reduction = clique_to_qon(graph, k_yes=3, k_no=1, alpha=4)
        sequence = qon_certificate_sequence(reduction, [0, 1, 2, 2, 1])
        assert sorted(sequence) == [0, 1, 2, 3]


class TestQONCertificate:
    def test_clique_prefix_preserved(self):
        graph = complete_graph(10)
        reduction = clique_to_qon(graph, k_yes=8, k_no=2, alpha=4)
        sequence = qon_certificate_sequence(reduction, list(range(8)))
        assert set(sequence[:8]) == set(range(8))

    def test_oversized_clique_kept_in_front(self):
        graph = complete_graph(10)
        reduction = clique_to_qon(graph, k_yes=6, k_no=2, alpha=4)
        sequence = qon_certificate_sequence(reduction, list(range(9)))
        assert set(sequence[:9]) == set(range(9))

    def test_no_cartesian_products_on_dense_graphs(self):
        graph = turan_graph(9, 6)
        reduction = clique_to_qon(graph, k_yes=8, k_no=6, alpha=4)
        from repro.graphs.clique import max_clique

        clique = max_clique(graph)
        # Use what the graph actually has (6), padded requirement lowered.
        reduction_small = clique_to_qon(graph, k_yes=6, k_no=4, alpha=4)
        sequence = qon_certificate_sequence(reduction_small, clique)
        assert not has_cartesian_product(reduction_small.instance, sequence)

    def test_cost_decreases_with_bigger_clique_prefix(self):
        """A larger certified clique gives a no-worse certificate."""
        graph = complete_graph(12)
        reduction = clique_to_qon(graph, k_yes=8, k_no=2, alpha=4)
        small = qon_certificate_sequence(reduction, list(range(8)))
        large = qon_certificate_sequence(reduction, list(range(12)))
        assert total_cost(reduction.instance, large) <= total_cost(
            reduction.instance, small
        ) * reduction.alpha  # within one alpha granule


class TestQOHCertificate:
    def test_minimum_n(self):
        reduction = clique_to_qoh(complete_graph(6), alpha=4**6)
        plan = qoh_certificate_plan(reduction, list(range(4)))
        assert plan.sequence[0] == 0

    def test_n_three_rejected(self):
        reduction = clique_to_qoh(complete_graph(3), alpha=4**3)
        with pytest.raises(ValidationError):
            qoh_certificate_plan(reduction, [0, 1])

    def test_pipeline_boundaries_match_lemma12(self):
        reduction = clique_to_qoh(complete_graph(9), alpha=4**9)
        plan = qoh_certificate_plan(reduction, list(range(6)))
        bounds = [
            (p.first_join, p.last_join) for p in plan.decomposition.pipelines
        ]
        assert bounds == [(1, 1), (2, 3), (4, 6), (7, 8), (9, 9)]

    def test_extra_clique_members_truncated(self):
        reduction = clique_to_qoh(complete_graph(6), alpha=4**6)
        plan = qoh_certificate_plan(reduction, list(range(6)))
        # Only 2n/3 = 4 clique members lead; the rest follow.
        assert sorted(plan.sequence) == list(range(7))

    def test_cost_is_positive_fraction(self):
        reduction = clique_to_qoh(complete_graph(6), alpha=4**6)
        plan = qoh_certificate_plan(reduction, list(range(4)))
        assert isinstance(plan.cost, Fraction)
        assert plan.cost > 0
