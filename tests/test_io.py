"""Tests for JSON instance serialization."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro import io
from repro.core.reductions.clique_to_qon import clique_to_qon
from repro.core.reductions.sppcs_to_sqocp import sppcs_to_sqocp
from repro.graphs.generators import complete_graph, gnp_random_graph
from repro.graphs.graph import Graph
from repro.hashjoin.cost_model import HashJoinCostModel
from repro.hashjoin.instance import QOHInstance
from repro.joinopt.cost import total_cost
from repro.starqo.sppcs import SPPCSInstance
from repro.utils.validation import ValidationError
from repro.workloads.queries import random_query


class TestGraphRoundTrip:
    def test_basic(self):
        graph = gnp_random_graph(8, 0.4, rng=0)
        assert io.loads(io.dumps(graph)) == graph

    def test_empty(self):
        graph = Graph(3, [])
        assert io.loads(io.dumps(graph)) == graph

    def test_file(self, tmp_path):
        graph = complete_graph(5)
        path = tmp_path / "g.json"
        io.save(graph, path)
        assert io.load(path) == graph


class TestQONRoundTrip:
    def test_workload_instance(self):
        instance = random_query(6, rng=1)
        restored = io.loads(io.dumps(instance))
        assert restored.graph == instance.graph
        assert restored.sizes == instance.sizes
        for i, j in instance.graph.edges:
            assert restored.selectivity(i, j) == instance.selectivity(i, j)
            assert restored.access_cost(i, j) == instance.access_cost(i, j)
            assert restored.access_cost(j, i) == instance.access_cost(j, i)

    def test_costs_preserved(self):
        instance = random_query(5, rng=2)
        restored = io.loads(io.dumps(instance))
        order = list(range(5))
        assert total_cost(restored, order) == total_cost(instance, order)

    def test_reduction_instance_with_huge_numbers(self):
        reduction = clique_to_qon(complete_graph(8), k_yes=6, k_no=2, alpha=4**8)
        restored = io.loads(io.dumps(reduction.instance))
        assert restored.size(0) == reduction.relation_size
        assert restored.access_cost(0, 1) == reduction.edge_access_cost

    def test_log_domain_rejected(self):
        instance = random_query(4, rng=3).to_log_domain()
        with pytest.raises(ValidationError):
            io.dumps(instance)


class TestQOHRoundTrip:
    def test_basic(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        instance = QOHInstance(
            graph,
            [64, 32, 128, 16],
            {(0, 1): Fraction(1, 8), (1, 2): Fraction(1, 16), (2, 3): Fraction(1, 4)},
            memory=64,
            model=HashJoinCostModel(psi=Fraction(1, 3), g_scale=2),
        )
        restored = io.loads(io.dumps(instance))
        assert restored.graph == instance.graph
        assert restored.sizes == instance.sizes
        assert restored.memory == instance.memory
        assert restored.model.psi == Fraction(1, 3)
        assert restored.model.g_scale == 2

    def test_costs_preserved(self):
        from repro.hashjoin.optimizer import best_decomposition

        graph = Graph(3, [(0, 1), (1, 2)])
        instance = QOHInstance(
            graph, [100, 50, 80],
            {(0, 1): Fraction(1, 10), (1, 2): Fraction(1, 5)},
            memory=60,
        )
        restored = io.loads(io.dumps(instance))
        order = (0, 1, 2)
        assert (
            best_decomposition(restored, order).cost
            == best_decomposition(instance, order).cost
        )


class TestSQOCPRoundTrip:
    def test_reduction_instance(self):
        reduction = sppcs_to_sqocp(SPPCSInstance([(2, 1), (3, 2)], 4))
        restored = io.loads(io.dumps(reduction.instance))
        assert restored.num_satellites == reduction.instance.num_satellites
        assert restored.threshold == reduction.instance.threshold
        for i in range(1, restored.num_satellites + 1):
            assert restored.selectivity(i) == reduction.instance.selectivity(i)

    def test_decision_preserved(self):
        from repro.starqo.optimizer import decide

        reduction = sppcs_to_sqocp(SPPCSInstance([(2, 1), (3, 2)], 4))
        restored = io.loads(io.dumps(reduction.instance))
        assert decide(restored) == decide(reduction.instance)


class TestErrors:
    def test_unknown_type(self):
        with pytest.raises(ValidationError):
            io.loads('{"type": "mystery"}')

    def test_unsupported_object(self):
        with pytest.raises(ValidationError):
            io.dumps(42)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_qon_roundtrip_cost_identity(seed):
    instance = random_query(4, rng=seed)
    restored = io.loads(io.dumps(instance))
    order = list(range(4))
    assert total_cost(restored, order) == total_cost(instance, order)
