"""Smoke tests: the runnable examples execute end to end.

Each example is imported and its ``main()`` run under output capture.
The two heavyweight demos (hardness_gap_demo, optimizer_shootout) are
exercised with reduced workloads via their building blocks elsewhere;
here we run the fast ones wholesale.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name,expected",
    [
        ("quickstart", "Optimal join sequence verified"),
        ("pipelined_hash_joins", "Lemma 10 in action"),
        ("star_query_appendix", "SQO-CP is NP-complete"),
        ("cost_model_validation", "ranking transfer"),
    ],
)
def test_example_runs(name, expected, capsys):
    module = _load(name)
    module.main()
    output = capsys.readouterr().out
    assert expected in output


def test_examples_all_have_main():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        text = path.read_text()
        assert "def main()" in text, f"{path.name} lacks a main()"
        assert '__main__' in text, f"{path.name} lacks an entry point"


def test_examples_are_documented():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        first = path.read_text().lstrip()
        assert first.startswith('"""'), f"{path.name} lacks a docstring"
        assert "Run:" in first, f"{path.name} docstring lacks a Run: line"
