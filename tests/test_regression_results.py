"""Regression pins for the committed benchmark result tables.

``benchmarks/results/EXP-T9.txt`` and ``EXP-T15.txt`` are checked in;
these tests parse the certificate columns out of them and recompute
the same quantities from scratch, so any drift in the reductions, the
cost model, or the certificate constructions shows up as a diff
against the committed numbers — not just as a silently different
table on the next benchmark run.
"""

import re
from fractions import Fraction
from pathlib import Path

import pytest

from repro.core.certificates import qoh_certificate_plan, qon_certificate_sequence
from repro.joinopt.cost import total_cost
from repro.utils.lognum import log2_of
from repro.workloads.gaps import qoh_gap_pair, qon_gap_pair

RESULTS_DIR = Path(__file__).parent.parent / "benchmarks" / "results"


def _parse_table(path: Path, title_prefix: str):
    """Rows of the first table in ``path`` whose title starts so."""
    lines = path.read_text().splitlines()
    for index, line in enumerate(lines):
        if line.startswith(title_prefix):
            break
    else:
        pytest.fail(f"table {title_prefix!r} not found in {path.name}")
    rows = []
    for line in lines[index + 3:]:  # skip title, header, dashes
        if not line.strip():
            break
        rows.append(re.split(r"\s{2,}", line.strip()))
    assert rows, f"table {title_prefix!r} in {path.name} has no rows"
    return rows


class TestTheorem9Pins:
    def test_exact_certificate_costs_match_committed_table(self):
        rows = _parse_table(
            RESULTS_DIR / "EXP-T9.txt", "Theorem 9 exact (alpha=4)"
        )
        by_n = {int(row[0]): row for row in rows}
        for n, k_yes, k_no in [(8, 6, 2), (9, 7, 3), (10, 8, 2)]:
            pair = qon_gap_pair(n, k_yes, k_no, alpha=4)
            cert = qon_certificate_sequence(pair.yes_reduction, pair.yes_clique)
            yes_cost = total_cost(pair.yes_reduction.instance, cert)
            k_bound = pair.yes_reduction.yes_cost_bound()
            row = by_n[n]
            assert f"{log2_of(yes_cost):.1f}" == row[3], (
                f"n={n}: certificate cost drifted from committed table"
            )
            assert f"{log2_of(k_bound):.1f}" == row[4]
            assert yes_cost <= k_bound
            assert row[7] == "OK"

    def test_certificate_scale_costs_match_committed_table(self):
        rows = _parse_table(
            RESULTS_DIR / "EXP-T9.txt", "Theorem 9 at certificate scale"
        )
        by_n = {int(row[0]): row for row in rows}
        for n in (20, 40, 60):
            k_yes = n - 4
            k_no = 4 if (k_yes + 4) % 2 == 0 else 5
            pair = qon_gap_pair(n, k_yes, k_no, alpha=4**n)
            cert = qon_certificate_sequence(pair.yes_reduction, pair.yes_clique)
            log_instance = pair.yes_reduction.instance.to_log_domain()
            cert_log2 = log2_of(total_cost(log_instance, cert))
            assert f"{cert_log2:.0f}" == by_n[n][1], (
                f"n={n}: log-domain certificate cost drifted"
            )
            assert by_n[n][5] == "OK"


class TestTheorem15Pins:
    def test_exact_certificate_cost_matches_committed_table(self):
        rows = _parse_table(
            RESULTS_DIR / "EXP-T15.txt", "Theorem 15 exact (n=6"
        )
        yes_row = next(row for row in rows if row[0].startswith("YES"))
        pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
        cert = qoh_certificate_plan(pair.yes_reduction, pair.yes_clique)
        assert f"{log2_of(cert.cost):.1f}" == yes_row[2]
        assert f"{float(pair.yes_reduction.l_bound_log2()):.1f}" == yes_row[3]

    def test_search_scale_certificates_match_committed_table(self):
        rows = _parse_table(
            RESULTS_DIR / "EXP-T15.txt", "Theorem 15 at search scale"
        )
        by_n = {int(row[0]): row for row in rows}
        for n in (9, 12):
            pair = qoh_gap_pair(n, Fraction(1, 2), alpha=4**n)
            cert = qoh_certificate_plan(pair.yes_reduction, pair.yes_clique)
            assert f"{log2_of(cert.cost):.1f}" == by_n[n][1], (
                f"n={n}: QO_H certificate cost drifted"
            )
            assert by_n[n][4] == "OK"
