"""Tests for the workload generators and shared utilities."""

import random
from fractions import Fraction

import pytest

from repro.graphs.clique import max_clique_size
from repro.starqo.partition import has_partition
from repro.utils.rng import make_rng, random_permutation, sample_distinct_pairs, spawn
from repro.utils.validation import (
    ValidationError,
    check_fraction,
    check_index,
    check_nonnegative,
    check_positive,
    check_probability,
)
from repro.workloads.gaps import (
    partition_suite,
    qoh_gap_pair,
    qon_gap_pair,
    turan_graph,
)
from repro.workloads.queries import (
    chain_query,
    clique_query,
    cycle_query,
    random_query,
    star_query,
)


class TestRngHelpers:
    def test_make_rng_default_deterministic(self):
        assert make_rng().random() == make_rng().random()

    def test_make_rng_passthrough(self):
        rng = random.Random(5)
        assert make_rng(rng) is rng

    def test_make_rng_seed(self):
        assert make_rng(7).random() == random.Random(7).random()

    def test_spawn_streams_differ(self):
        rng = random.Random(1)
        a = spawn(rng, "alpha")
        rng = random.Random(1)
        b = spawn(rng, "beta")
        assert a.random() != b.random()

    def test_sample_distinct_pairs(self):
        pairs = sample_distinct_pairs(random.Random(0), 6, 10)
        assert len(set(pairs)) == 10
        assert all(u < v for u, v in pairs)

    def test_sample_too_many(self):
        with pytest.raises(ValueError):
            sample_distinct_pairs(random.Random(0), 3, 4)

    def test_random_permutation(self):
        perm = random_permutation(random.Random(0), 8)
        assert sorted(perm) == list(range(8))


class TestValidationHelpers:
    def test_check_positive(self):
        check_positive(1, "x")
        with pytest.raises(ValidationError):
            check_positive(0, "x")

    def test_check_nonnegative(self):
        check_nonnegative(0, "x")
        with pytest.raises(ValidationError):
            check_nonnegative(-1, "x")

    def test_check_probability(self):
        check_probability(0, "x")
        check_probability(1, "x")
        with pytest.raises(ValidationError):
            check_probability(1.5, "x")

    def test_check_fraction(self):
        check_fraction(Fraction(1, 2), "x")
        with pytest.raises(ValidationError):
            check_fraction(0, "x")

    def test_check_index(self):
        check_index(0, 3, "x")
        with pytest.raises(ValidationError):
            check_index(3, 3, "x")


class TestQueryWorkloads:
    def test_chain_shape(self):
        instance = chain_query(6, rng=0)
        assert instance.graph.num_edges == 5
        assert instance.graph.is_connected()

    def test_star_shape(self):
        instance = star_query(6, rng=1)
        assert instance.graph.degree(0) == 5

    def test_cycle_shape(self):
        instance = cycle_query(6, rng=2)
        assert all(instance.graph.degree(v) == 2 for v in range(6))

    def test_clique_shape(self):
        instance = clique_query(5, rng=3)
        assert instance.graph.num_edges == 10

    def test_random_connected(self):
        for seed in range(5):
            instance = random_query(8, edge_probability=0.2, rng=seed)
            assert instance.graph.is_connected()

    def test_deterministic(self):
        a = random_query(6, rng=9)
        b = random_query(6, rng=9)
        assert a.graph == b.graph
        assert a.sizes == b.sizes

    def test_statistics_ranges(self):
        instance = random_query(6, rng=10, size_min=10, size_max=100)
        assert all(1 <= t <= 200 for t in instance.sizes)
        for i, j in instance.graph.edges:
            assert 0 < instance.selectivity(i, j) <= Fraction(1, 2)


class TestGapWorkloads:
    def test_turan_clique_number(self):
        for parts in (2, 3, 5):
            assert max_clique_size(turan_graph(9, parts)) == parts

    def test_qon_pair_promises(self):
        pair = qon_gap_pair(8, 6, 2, alpha=4)
        assert max_clique_size(pair.yes_reduction.graph) >= 6
        assert max_clique_size(pair.no_reduction.graph) <= pair.no_reduction.k_no

    def test_qon_pair_matched_parameters(self):
        pair = qon_gap_pair(8, 6, 2, alpha=4)
        assert pair.yes_reduction.relation_size == pair.no_reduction.relation_size
        assert pair.yes_reduction.alpha == pair.no_reduction.alpha

    def test_qoh_pair_shapes(self):
        pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
        assert pair.yes_reduction.instance.num_relations == 7
        assert max_clique_size(pair.no_reduction.source_graph) < 4

    def test_partition_suite_labels(self):
        suite = partition_suite(6, 4, rng=0)
        for instance, label in suite:
            assert has_partition(instance) == label

    def test_partition_suite_has_both_labels(self):
        suite = partition_suite(8, 6, rng=1)
        labels = {label for _, label in suite}
        assert True in labels
