"""Tests for the Tseitin encoder and the QO_H annealer."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.hashjoin.annealing import qoh_simulated_annealing
from repro.hashjoin.instance import QOHInstance
from repro.hashjoin.optimizer import qoh_optimal
from repro.sat.cnf import all_assignments
from repro.sat.solver import is_satisfiable, solve
from repro.sat.tseitin import (
    and_,
    circuit_inputs,
    evaluate,
    neg,
    or_,
    tseitin_encode,
    var,
)
from repro.utils.validation import ValidationError


class TestTseitin:
    def test_single_variable(self):
        formula, root = tseitin_encode(var(1))
        assert root == 1
        assert is_satisfiable(formula)

    def test_negation(self):
        formula, root = tseitin_encode(neg(var(1)))
        model = solve(formula)
        assert model is not None
        assert model[1] is False

    def test_and_gate(self):
        formula, _ = tseitin_encode(and_(var(1), var(2)))
        model = solve(formula)
        assert model[1] and model[2]

    def test_contradiction_unsat(self):
        circuit = and_(var(1), neg(var(1)))
        formula, _ = tseitin_encode(circuit)
        assert not is_satisfiable(formula)

    def test_or_of_contradictions(self):
        circuit = or_(and_(var(1), neg(var(1))), and_(var(2), neg(var(2))))
        formula, _ = tseitin_encode(circuit)
        assert not is_satisfiable(formula)

    def test_is_3cnf(self):
        circuit = or_(and_(var(1), var(2)), neg(and_(var(2), var(3))))
        formula, _ = tseitin_encode(circuit)
        assert formula.is_3cnf()

    def test_circuit_inputs(self):
        circuit = or_(var(3), and_(var(1), neg(var(3))))
        assert circuit_inputs(circuit) == {1, 3}

    def test_num_inputs_too_small(self):
        with pytest.raises(ValidationError):
            tseitin_encode(var(5), num_inputs=3)

    def test_equisatisfiability_exhaustive(self):
        """The CNF accepts exactly the circuit's satisfying inputs."""
        circuit = or_(and_(var(1), neg(var(2))), and_(var(2), var(3)))
        formula, _ = tseitin_encode(circuit, num_inputs=3)
        circuit_sat = any(
            evaluate(circuit, assignment) for assignment in all_assignments(3)
        )
        assert is_satisfiable(formula) == circuit_sat
        model = solve(formula)
        inputs = {v: model[v] for v in (1, 2, 3)}
        assert evaluate(circuit, inputs)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_tseitin_models_project(seed):
    """Random circuits: every CNF model projects to a circuit model."""
    import random

    rng = random.Random(seed)

    def random_circuit(depth: int):
        if depth == 0 or rng.random() < 0.3:
            node = var(rng.randint(1, 4))
            return neg(node) if rng.random() < 0.5 else node
        gate = and_ if rng.random() < 0.5 else or_
        return gate(random_circuit(depth - 1), random_circuit(depth - 1))

    circuit = random_circuit(3)
    formula, _ = tseitin_encode(circuit, num_inputs=4)
    model = solve(formula)
    circuit_sat = any(
        evaluate(circuit, assignment) for assignment in all_assignments(4)
    )
    assert (model is not None) == circuit_sat
    if model is not None:
        inputs = {v: model[v] for v in range(1, 5)}
        assert evaluate(circuit, inputs)


class TestQOHAnnealing:
    @pytest.fixture
    def instance(self):
        graph = Graph(5, [(0, 1), (0, 2), (0, 3), (3, 4)])
        return QOHInstance(
            graph,
            [5_000, 400, 900, 1_600, 100],
            {
                (0, 1): Fraction(1, 400),
                (0, 2): Fraction(1, 900),
                (0, 3): Fraction(1, 1_600),
                (3, 4): Fraction(1, 100),
            },
            memory=2_000,
        )

    def test_finds_feasible_plan(self, instance):
        plan = qoh_simulated_annealing(instance, rng=0)
        assert plan is not None
        assert sorted(plan.sequence) == list(range(5))

    def test_never_beats_optimum(self, instance):
        optimum = qoh_optimal(instance)
        plan = qoh_simulated_annealing(instance, rng=1)
        assert plan.cost >= optimum.cost

    def test_deterministic_seed(self, instance):
        a = qoh_simulated_annealing(instance, rng=3)
        b = qoh_simulated_annealing(instance, rng=3)
        assert a.cost == b.cost

    def test_pinned_hub_respected(self):
        from repro.workloads.gaps import qoh_gap_pair

        pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
        plan = qoh_simulated_annealing(
            pair.no_reduction.instance, steps_per_temperature=4, rng=4
        )
        assert plan is not None
        assert plan.sequence[0] == 0

    def test_infeasible_returns_none(self):
        graph = Graph(2, [(0, 1)])
        instance = QOHInstance(
            graph, [10_000, 10_000], {(0, 1): Fraction(1, 2)}, memory=4
        )
        assert qoh_simulated_annealing(instance, rng=5) is None
