"""Tests for the stable public facade (:mod:`repro.api`)."""

import pytest

from repro import api
from repro.core.results import PlanResult
from repro.joinopt.instance import QONInstance
from repro.runtime.runner import SweepTask
from repro.sat.gapfamilies import yes_instance
from repro.utils.validation import ValidationError


class TestGenerate:
    def test_families_cover_the_workload_zoo(self):
        assert set(api.FAMILIES) == {
            "chain", "star", "cycle", "clique", "random",
        }

    @pytest.mark.parametrize("family", sorted(api.FAMILIES))
    def test_generate_returns_qon_instance(self, family):
        instance = api.generate(family, 5, seed=1)
        assert isinstance(instance, QONInstance)
        assert instance.num_relations == 5

    def test_generate_is_seed_deterministic(self):
        a = api.generate("random", 6, seed=3)
        b = api.generate("random", 6, seed=3)
        c = api.generate("random", 6, seed=4)
        assert a.sizes == b.sizes
        assert a.sizes != c.sizes

    def test_unknown_family_raises(self):
        with pytest.raises(ValidationError, match="unknown family"):
            api.generate("hypercube", 5)


class TestReduce:
    def test_qon_chain_end_to_end(self):
        formula = yes_instance(6, 16, rng=0)
        chain = api.reduce("qon", formula)
        assert isinstance(chain.instance, QONInstance)

    def test_registry_names_are_stable(self):
        names = api.reduction_names()
        for expected in ("qon", "qoh", "sat-to-clique", "clique-to-qon",
                         "partition-to-sppcs"):
            assert expected in names

    def test_unknown_chain_raises(self):
        with pytest.raises(ValidationError, match="unknown reduction"):
            api.reduce("nope", None)


class TestOptimize:
    def test_returns_plan_result(self):
        instance = api.generate("random", 5, seed=0)
        result = api.optimize(instance, algorithm="dp")
        assert isinstance(result, PlanResult)
        assert result.is_exact
        assert result.explored > 0
        assert sorted(result.sequence) == list(range(5))

    def test_optimizer_names_span_all_substrates(self):
        names = api.optimizer_names()
        assert "dp" in names
        assert any(name.startswith("qoh-") for name in names)
        assert any(name.startswith("sqocp-") for name in names)

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValidationError, match="unknown algorithm"):
            api.optimize(api.generate("random", 4), algorithm="quantum")


class TestSweep:
    def _instances(self):
        return [(f"s{seed}", api.generate("random", 5, seed=seed))
                for seed in range(2)]

    def test_mapping_grid(self):
        result = api.sweep({
            "optimizers": ["dp", "greedy-cost"],
            "instances": self._instances(),
        }, workers=1)
        assert len(result) == 4
        assert all(o.ok for o in result)

    def test_task_sequence_grid_matches_mapping(self):
        instances = self._instances()
        tasks = [
            SweepTask(optimizer="dp", instance=instance, label=label)
            for label, instance in instances
        ]
        from_tasks = api.sweep(tasks, workers=1)
        from_map = api.sweep(
            {"optimizers": ["dp"], "instances": instances}, workers=1
        )
        assert [o.result.cost for o in from_tasks] == [
            o.result.cost for o in from_map
        ]

    def test_kwargs_for_hook(self):
        result = api.sweep({
            "optimizers": ["sampling"],
            "instances": self._instances(),
            "kwargs_for": lambda name, label: {"rng": 0, "samples": 10},
        }, workers=1)
        assert all(o.ok for o in result)
        assert all(o.explored == 10 for o in result)

    def test_trace_flag_produces_mergeable_records(self):
        from repro.observability import counter_totals, validate_trace

        result = api.sweep({
            "optimizers": ["dp"],
            "instances": self._instances(),
        }, workers=1, trace=True)
        records = result.trace_records()
        validate_trace(records)
        totals = counter_totals(records)
        assert totals["cost_evaluations"] == result.evaluations

    def test_mapping_needs_both_keys(self):
        with pytest.raises(ValidationError, match="grid mapping"):
            api.sweep({"optimizers": ["dp"]})
