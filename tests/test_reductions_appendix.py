"""Tests for the appendix chain: PARTITION -> SPPCS -> SQO-CP."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.reductions.partition_to_sppcs import (
    floor_pow2_exp,
    partition_to_sppcs,
    partition_to_sppcs_verbatim,
)
from repro.core.reductions.sppcs_to_sqocp import sppcs_to_sqocp
from repro.starqo.instance import JoinMethod
from repro.starqo.optimizer import best_plan, decide
from repro.starqo.partition import PartitionInstance, has_partition
from repro.starqo.sppcs import SPPCSInstance, sppcs_best_subset, sppcs_decide
from repro.utils.validation import ValidationError


class TestFloorPow2Exp:
    def test_zero(self):
        assert floor_pow2_exp(Fraction(0), 10) == 1024

    def test_one(self):
        import math

        assert floor_pow2_exp(Fraction(1), 20) == math.floor(
            (1 << 20) * math.e
        )

    def test_quarter(self):
        import math

        value = floor_pow2_exp(Fraction(1, 4), 30)
        assert value == math.floor((1 << 30) * math.exp(0.25))

    def test_monotone(self):
        values = [floor_pow2_exp(Fraction(i, 10), 16) for i in range(11)]
        assert values == sorted(values)

    def test_range_check(self):
        with pytest.raises(ValidationError):
            floor_pow2_exp(Fraction(3, 2), 8)


class TestPartitionToSPPCS:
    CASES = [
        ([2, 2, 4], True),
        ([2, 4, 8], False),
        ([2, 2, 2, 2], True),
        ([2, 4, 4, 8], False),
        ([6, 2, 4], True),
        ([2, 6, 8, 16], True),
        ([2, 2, 4, 10], False),
        ([4], False),
        ([2, 2], True),
        ([10, 6], False),
        ([0, 0], True),
    ]

    @pytest.mark.parametrize("values,expected", CASES)
    def test_yes_no_preserved(self, values, expected):
        instance = PartitionInstance(values)
        assert has_partition(instance) == expected
        construction = partition_to_sppcs(instance)
        assert sppcs_decide(construction.instance) == expected

    def test_paper_q_formula(self):
        construction = partition_to_sppcs(PartitionInstance([2, 2, 4]))
        # K = 8: p = floor(log2 16) + 1 = 5, q = 2*5 + 7 + 3 = 20.
        assert construction.p == 5
        assert construction.q == 20

    def test_item_count(self):
        construction = partition_to_sppcs(PartitionInstance([2, 2, 4]))
        # n real + (n - 1) padding.
        assert construction.instance.size == 5

    def test_verbatim_constants_recorded(self):
        """The verbatim construction builds but is documented as
        non-separating; we assert its *shape* only."""
        construction = partition_to_sppcs_verbatim(PartitionInstance([2, 2, 4]))
        assert construction.variant == "verbatim"
        assert construction.instance.size == 2 * 3  # 2n items incl. anchor
        anchor_p, anchor_c = construction.instance.pairs[-1]
        assert anchor_p == 2 * 8  # 2K

    @settings(max_examples=12, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=12), min_size=2, max_size=4)
    )
    def test_property_reduction_correct(self, raw):
        values = [2 * v for v in raw]
        instance = PartitionInstance(values)
        construction = partition_to_sppcs(instance)
        assert sppcs_decide(construction.instance) == has_partition(instance)


class TestSPPCSToSQOCP:
    CASES = [
        [(2, 1), (3, 2)],
        [(2, 2), (2, 3), (3, 1)],
        [(4, 1), (2, 5)],
        [(2, 1), (2, 1), (2, 1)],
    ]

    @pytest.mark.parametrize("pairs", CASES)
    def test_yes_no_preserved_both_sides_of_threshold(self, pairs):
        optimum, _ = sppcs_best_subset(SPPCSInstance(pairs, 0))
        for bound, expected in [(optimum, True), (optimum - 1, False)]:
            reduction = sppcs_to_sqocp(SPPCSInstance(pairs, bound))
            assert decide(reduction.instance) == expected

    def test_plan_structure_matches_theory(self):
        """The optimal plan is R0 first, subset satellites via NL,
        R_{m+1} via NL, complement satellites via SM."""
        pairs = [(2, 2), (2, 3), (3, 1)]
        optimum, subset = sppcs_best_subset(SPPCSInstance(pairs, 0))
        reduction = sppcs_to_sqocp(SPPCSInstance(pairs, optimum))
        cost, plan = best_plan(reduction.instance)
        m = len(pairs)
        assert plan.sequence[0] == 0
        last_position = plan.sequence.index(m + 1)
        implied_subset = [s - 1 for s in sorted(plan.sequence[1:last_position])]
        # The subset the plan encodes achieves the SPPCS optimum (it may
        # differ from `subset` when several subsets tie).
        assert SPPCSInstance(pairs, 0).objective(implied_subset) == optimum
        # Complement satellites run as sort-merge.
        for position in range(last_position + 1, len(plan.sequence)):
            assert plan.methods[position - 1] is JoinMethod.SORT_MERGE

    def test_cost_scale(self):
        """Plan cost divided by the unit recovers the SPPCS objective."""
        pairs = [(2, 1), (3, 2)]
        optimum, _ = sppcs_best_subset(SPPCSInstance(pairs, 0))
        reduction = sppcs_to_sqocp(SPPCSInstance(pairs, optimum))
        cost, _ = best_plan(reduction.instance)
        units = cost / reduction.unit()
        assert optimum <= units < optimum + 1

    def test_small_p_rejected(self):
        with pytest.raises(ValidationError):
            sppcs_to_sqocp(SPPCSInstance([(1, 1)], 10))

    def test_zero_c_rejected(self):
        with pytest.raises(ValidationError):
            sppcs_to_sqocp(SPPCSInstance([(2, 0)], 10))


class TestFullAppendixChain:
    def test_partition_to_plan(self):
        """PARTITION -> SPPCS -> SQO-CP end to end on a tiny instance."""
        yes = PartitionInstance([10, 10])
        no = PartitionInstance([10, 6])
        for instance, expected in [(yes, True), (no, False)]:
            sppcs = partition_to_sppcs(instance).instance
            reduction = sppcs_to_sqocp(sppcs)
            assert decide(reduction.instance) == expected
