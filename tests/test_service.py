"""Tests for the optimization service daemon (``repro.service``).

Covers, per ISSUE requirements:

* cache bit-identity — a cached reply equals a freshly computed one
  (and a direct ``repro.api`` call) in value, type and repr;
* request dedup — N identical concurrent requests coalesce into one
  computation, every requester gets the shared reply;
* the ``no_cache`` bypass flag recomputes but still refreshes;
* backpressure — a full queue rejects with an explicit retry-after,
  never a silent drop, and waiting clients eventually succeed;
* the ``stats`` RPC (``repro.stats/1`` schema, counter identity);
* graceful drain on shutdown;
* a 64-client concurrent mixed optimize/sweep workload whose replies
  are bit-identical to direct ``repro.api`` calls with nonzero
  dedup/cache hits and zero drops — the acceptance smoke, in-process.
"""

from __future__ import annotations

import threading
import time
from fractions import Fraction

import pytest

from repro import api
from repro.core.results import PlanResult
from repro.hashjoin.instance import QOHInstance
from repro.joinopt.instance import Graph
from repro.runtime.runner import OPTIMIZERS
from repro.service import (
    OptimizationServer,
    ServerConfig,
    ServiceClient,
    ServiceUnavailable,
    validate_stats,
)

DRAIN_TIMEOUT = 30.0


def assert_bit_identical(left, right):
    assert left == right
    assert type(left) is type(right)
    assert repr(left) == repr(right)


@pytest.fixture
def make_server():
    """Factory for loopback-TCP servers, drained at teardown."""
    servers = []

    def factory(**overrides):
        config = ServerConfig(address=("127.0.0.1", 0), **overrides)
        server = OptimizationServer(config)
        address = server.start()
        servers.append(server)
        return server, tuple(address)

    yield factory
    for server in servers:
        server.request_stop()
        server.shutdown(drain_timeout=DRAIN_TIMEOUT)


@pytest.fixture
def slow_optimizer():
    """A registered optimizer that blocks until the test releases it."""
    release = threading.Event()
    calls = []

    def slow(instance, tag=0):
        calls.append(tag)
        release.wait(DRAIN_TIMEOUT)
        return PlanResult(
            cost=17, sequence=(0, 1), optimizer="slow",
            explored=1, is_exact=False,
        )

    OPTIMIZERS["slow"] = slow
    yield release, calls
    release.set()
    del OPTIMIZERS["slow"]


@pytest.fixture
def qon_instance():
    return api.generate("chain", 5, seed=1)


@pytest.fixture
def qoh_instance():
    graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
    return QOHInstance(
        graph,
        [64, 32, 128, 16],
        {(0, 1): Fraction(1, 8), (1, 2): Fraction(1, 16),
         (2, 3): Fraction(1, 4)},
        memory=64,
    )


def wait_until(predicate, timeout=DRAIN_TIMEOUT):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.005)


# ---------------------------------------------------------------------
# Handshake and inline ops
# ---------------------------------------------------------------------


class TestHandshake:
    def test_hello_returns_capabilities(self, make_server):
        _server, address = make_server()
        with ServiceClient(address) as client:
            assert client.capabilities is not None
            assert client.capabilities["api_version"] == api.API_VERSION
            assert "repro.rpc/1" in client.capabilities["rpc_schemas"]

    def test_stats_rpc_payload_validates(self, make_server):
        _server, address = make_server()
        with ServiceClient(address) as client:
            payload = client.stats()
        validate_stats(payload)
        assert payload["workers"] == 2
        assert payload["counters"]["received"] == 0

    def test_unknown_op_gets_an_error_reply(self, make_server):
        _server, address = make_server()
        with ServiceClient(address) as client:
            frame = {"rpc": "repro.rpc/1", "id": 99, "op": "banana",
                     "payload": None}
            from repro.service import protocol
            client._sock.sendall(protocol.encode_frame(frame))
            line = client._stream.readline()
            reply_frame = protocol.decode_line(line)
        reply = api.ServiceReply.from_dict(reply_frame["reply"])
        assert reply.status == "error"
        assert "unknown op" in (reply.error or "")


# ---------------------------------------------------------------------
# Cache bit-identity
# ---------------------------------------------------------------------


class TestResultCache:
    def test_cached_reply_is_bit_identical(self, make_server, qoh_instance):
        server, address = make_server()
        request = api.OptimizeRequest.build(qoh_instance, "qoh-exhaustive")
        direct = api.execute_request(request)
        with ServiceClient(address) as client:
            fresh = client.optimize(request)
            cached = client.optimize(request)
        assert fresh.ok and not fresh.cached
        assert cached.ok and cached.cached
        assert_bit_identical(fresh.result, direct)
        assert_bit_identical(cached.result, direct)
        assert_bit_identical(cached.result.cost, direct.cost)
        assert_bit_identical(cached.result.plan, direct.plan)
        assert cached.fingerprint == fresh.fingerprint
        assert server.stats.computed == 1
        assert server.stats.cache_hits == 1

    def test_no_cache_flag_bypasses_but_refreshes(
        self, make_server, qon_instance
    ):
        server, address = make_server()
        request = api.OptimizeRequest.build(qon_instance, "dp")
        bypass = api.OptimizeRequest.build(qon_instance, "dp", no_cache=True)
        with ServiceClient(address) as client:
            first = client.optimize(request)
            second = client.optimize(bypass)
            third = client.optimize(request)
        assert not first.cached and not second.cached
        assert third.cached
        assert server.stats.computed == 2
        assert server.stats.cache_hits == 1
        assert_bit_identical(second.result, first.result)

    def test_instance_objects_are_reused_across_requests(
        self, make_server, qon_instance
    ):
        server, address = make_server()
        sampling = api.OptimizeRequest.build(
            qon_instance, "sampling", samples=10, rng=1,
        )
        greedy = api.OptimizeRequest.build(qon_instance, "greedy-cost")
        with ServiceClient(address) as client:
            assert client.optimize(sampling).ok
            assert client.optimize(greedy).ok
        # One distinct wire payload -> one live decoded instance in the
        # daemon's registry live tier (repro.runtime.registry).
        registry_stats = server._registry.stats()
        assert registry_stats.live == 1
        # The second request reused the first decode instead of
        # retaining a duplicate object.
        assert registry_stats.hits >= 1


# ---------------------------------------------------------------------
# Dedup / coalescing
# ---------------------------------------------------------------------


class TestDedup:
    def test_identical_concurrent_requests_coalesce(
        self, make_server, slow_optimizer, qon_instance
    ):
        release, calls = slow_optimizer
        server, address = make_server(workers=1, max_queue=16)
        request = api.OptimizeRequest.build(qon_instance, "slow")
        replies = []

        def submit():
            with ServiceClient(address, handshake=False) as client:
                replies.append(client.optimize(request))

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for thread in threads:
            thread.start()
        # Hold the computation until every request has been admitted.
        wait_until(lambda: server.stats.received == 6)
        wait_until(lambda: server.stats.coalesced == 5)
        release.set()
        for thread in threads:
            thread.join(DRAIN_TIMEOUT)
        assert len(calls) == 1  # exactly one computation ran
        assert len(replies) == 6
        assert all(reply.ok for reply in replies)
        assert sum(reply.coalesced for reply in replies) == 5
        first = replies[0].result
        for reply in replies[1:]:
            assert_bit_identical(reply.result, first)
        assert server.stats.computed == 1
        assert server.stats.coalesced == 5


# ---------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(
        self, make_server, slow_optimizer, qon_instance
    ):
        release, _calls = slow_optimizer
        server, address = make_server(
            workers=1, max_queue=1, retry_after_s=0.02,
        )
        requests = [
            api.OptimizeRequest.build(qon_instance, "slow", tag=tag)
            for tag in range(4)
        ]

        def submit(request):
            with ServiceClient(address, handshake=False) as background:
                background.optimize(request, max_wait_s=DRAIN_TIMEOUT)

        with ServiceClient(address, handshake=False) as client:
            # First occupies the worker, second fills the queue...
            busy = threading.Thread(target=submit, args=(requests[0],))
            busy.start()
            wait_until(lambda: len(_calls) == 1)
            queued = threading.Thread(target=submit, args=(requests[1],))
            queued.start()
            wait_until(lambda: len(server._pending) == 1)
            # ...so a distinct third is rejected, never dropped.
            rejected = client.optimize(requests[2], wait=False)
            assert rejected.rejected
            assert rejected.error == "queue full"
            assert rejected.retry_after == 0.02
            # A waiting client with a short patience gets a clean error.
            with pytest.raises(ServiceUnavailable):
                client.optimize(requests[3], wait=True, max_wait_s=0.05)
            release.set()
            # Once drained, the same request is admitted and served.
            final = client.optimize(requests[2], max_wait_s=DRAIN_TIMEOUT)
            assert final.ok
        busy.join(DRAIN_TIMEOUT)
        queued.join(DRAIN_TIMEOUT)
        assert server.stats.rejected >= 2
        stats = server.stats
        assert stats.received == (
            stats.computed + stats.cache_hits + stats.coalesced
            + stats.rejected + stats.errors
        )


# ---------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------


class TestErrors:
    def test_bad_params_produce_an_error_reply(
        self, make_server, qon_instance
    ):
        server, address = make_server()
        request = api.OptimizeRequest.build(qon_instance, "dp", bogus=1)
        with ServiceClient(address) as client:
            reply = client.optimize(request)
        assert reply.status == "error"
        assert "bogus" in (reply.error or "")
        assert server.stats.errors == 1
        assert server.stats.computed == 0

    def test_malformed_payload_is_rejected_with_a_message(
        self, make_server
    ):
        server, address = make_server()
        with ServiceClient(address) as client:
            reply = client.call("optimize", {"schema": "nope"})
        assert reply.status == "error"
        assert "schema" in (reply.error or "")
        assert server.stats.errors == 1


# ---------------------------------------------------------------------
# Sweeps through the service
# ---------------------------------------------------------------------


class TestSweepService:
    def test_sweep_reply_matches_direct_execution(
        self, make_server, qon_instance
    ):
        _server, address = make_server()
        spec = api.SweepSpec.build(
            ["dp", "greedy-cost"], [("q5", qon_instance)], workers=1,
        )
        direct = api.execute_request(spec)
        with ServiceClient(address) as client:
            reply = client.sweep(spec)
        assert reply.ok
        served = reply.result
        assert len(served) == len(direct)
        for got, want in zip(served, direct):
            assert got.ok and want.ok
            assert_bit_identical(got.result, want.result)
            assert_bit_identical(got.result.cost, want.result.cost)

    def test_traced_sweep_returns_span_records(
        self, make_server, qon_instance
    ):
        _server, address = make_server()
        spec = api.SweepSpec.build(
            ["dp"], [("q5", qon_instance)], workers=1, trace=True,
        )
        with ServiceClient(address) as client:
            reply = client.sweep(spec)
        assert reply.ok
        assert reply.trace_records
        names = [record["name"] for record in reply.trace_records]
        assert any(name.startswith("service.sweep") for name in names)


# ---------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------


class TestShutdown:
    def test_drain_finishes_queued_work_and_rejects_late(
        self, make_server, slow_optimizer, qon_instance
    ):
        release, _calls = slow_optimizer
        server, address = make_server(workers=1)
        request = api.OptimizeRequest.build(qon_instance, "slow")
        early_client = ServiceClient(address, handshake=False)
        late_client = ServiceClient(address, handshake=False)
        replies = []
        early = threading.Thread(
            target=lambda: replies.append(early_client.optimize(request))
        )
        early.start()
        wait_until(lambda: server.stats.received == 1)
        server.request_stop()
        late = late_client.optimize(
            api.OptimizeRequest.build(qon_instance, "slow", tag=9),
            wait=False,
        )
        assert late.rejected
        assert late.error == "server draining"
        release.set()
        final = server.shutdown(drain_timeout=DRAIN_TIMEOUT)
        early.join(DRAIN_TIMEOUT)
        assert replies and replies[0].ok  # in-flight work was not lost
        validate_stats(final)
        counters = final["counters"]
        assert counters["received"] == final["answered"] == 2
        assert counters["computed"] == 1
        assert counters["rejected"] == 1
        early_client.close()
        late_client.close()

    def test_shutdown_op_stops_the_server(self, make_server, qon_instance):
        server, address = make_server()
        with ServiceClient(address) as client:
            assert client.optimize(
                api.OptimizeRequest.build(qon_instance, "dp")
            ).ok
            assert client.shutdown_server().ok
        assert server.wait_stopped(DRAIN_TIMEOUT)
        final = server.shutdown(drain_timeout=DRAIN_TIMEOUT)
        assert final["counters"]["received"] == 1


# ---------------------------------------------------------------------
# The acceptance smoke, in process: 64 concurrent mixed clients
# ---------------------------------------------------------------------


class TestConcurrentMixedWorkload:
    def test_64_clients_bit_identical_with_dedup(self):
        instances = [
            api.generate("chain", 5, seed=seed) for seed in range(4)
        ]
        optimize_requests = [
            api.OptimizeRequest.build(instance, algorithm)
            for instance in instances
            for algorithm in ("dp", "greedy-cost")
        ]
        sweep_specs = [
            api.SweepSpec.build(
                ["dp"], [(f"s{seed}", instances[seed])], workers=1,
            )
            for seed in range(2)
        ]
        # 48 optimize + 16 sweep submissions over 10 distinct requests.
        workload = [
            ("optimize", optimize_requests[i % len(optimize_requests)])
            for i in range(48)
        ] + [
            ("sweep", sweep_specs[i % len(sweep_specs)])
            for i in range(16)
        ]
        direct = {
            api.request_fingerprint(request): api.execute_request(request)
            for _kind, request in workload
        }
        assert len(direct) == 10

        config = ServerConfig(
            address=("127.0.0.1", 0), workers=4, max_queue=64,
        )
        server = OptimizationServer(config)
        address = tuple(server.start())
        replies = []
        lock = threading.Lock()

        def submit(kind, request):
            with ServiceClient(address, handshake=False) as client:
                if kind == "optimize":
                    reply = client.optimize(
                        request, max_wait_s=DRAIN_TIMEOUT
                    )
                else:
                    reply = client.sweep(request, max_wait_s=DRAIN_TIMEOUT)
            with lock:
                replies.append((request, reply))

        threads = [
            threading.Thread(target=submit, args=entry)
            for entry in workload
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(DRAIN_TIMEOUT)
        server.request_stop()
        final = server.shutdown(drain_timeout=DRAIN_TIMEOUT)

        # Zero silent drops: every submission produced an ok reply.
        assert len(replies) == 64
        assert all(reply.ok for _request, reply in replies)

        # Bit-identical to direct repro.api calls.
        for request, reply in replies:
            want = direct[api.request_fingerprint(request)]
            if isinstance(reply.result, PlanResult):
                assert_bit_identical(reply.result, want)
            else:
                for got_outcome, want_outcome in zip(reply.result, want):
                    assert_bit_identical(
                        got_outcome.result, want_outcome.result
                    )

        counters = final["counters"]
        assert counters["received"] == 64
        assert counters["errors"] == 0
        assert counters["computed"] + counters["cache_hits"] + \
            counters["coalesced"] + counters["rejected"] == 64
        # Ten distinct fingerprints: everything beyond them was served
        # by the cache or dedup.
        assert counters["computed"] == 10
        assert counters["cache_hits"] + counters["coalesced"] == 54
        assert counters["cache_hits"] > 0 or counters["coalesced"] > 0
        assert final["queue_depth"] == 0
        assert final["in_flight"] == 0
