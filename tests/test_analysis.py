"""Tests for the analysis helpers and the CNF simplifier."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    PowerLawFit,
    competitive_ratio_log2,
    fit_power_law,
    gap_exponent,
    summarize_series,
)
from repro.sat.cnf import CNFFormula
from repro.sat.generators import random_3sat, random_planted_3sat, unsatisfiable_core
from repro.sat.simplify import remove_subsumed, remove_tautologies, simplify
from repro.sat.solver import is_satisfiable, solve
from repro.utils.validation import ValidationError


class TestPowerLawFit:
    def test_exact_quadratic(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_cubic(self):
        xs = list(range(2, 20))
        ys = [x**3 * (1 + 0.01 * ((x * 37) % 7 - 3)) for x in xs]
        fit = fit_power_law(xs, ys)
        assert 2.9 < fit.exponent < 3.1
        assert fit.r_squared > 0.99

    def test_validation(self):
        with pytest.raises(ValidationError):
            fit_power_law([1], [1])
        with pytest.raises(ValidationError):
            fit_power_law([1, -1], [1, 1])
        with pytest.raises(ValidationError):
            fit_power_law([1, 1], [1, 2])

    def test_theorem9_scaling(self):
        """log2 K grows as n^2 for fixed alpha (Theorem 9 item 3)."""
        from repro.core.gap import k_cd_log2

        ns = [16, 32, 64, 128]
        ks = []
        for n in ns:
            k_yes, k_no = n - 2, n // 2
            if (k_yes + k_no) % 2:
                k_no += 1
            ks.append(float(k_cd_log2(2, 0, k_yes, k_no)))
        fit = fit_power_law(ns, ks)
        assert 1.9 < fit.exponent < 2.1


class TestGapExponent:
    def test_basic(self):
        # gap = 2^{(log2 K)^0.5}
        assert gap_exponent(32.0, 1024.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            gap_exponent(0, 100)

    def test_summarize(self):
        rows = summarize_series([4, 8], [16.0, 64.0], [4.0, 8.0])
        assert rows[0][0] == 4
        assert rows[0][3] == pytest.approx(0.5)

    def test_ratio_log2(self):
        assert competitive_ratio_log2(8, 2) == pytest.approx(2.0)
        assert competitive_ratio_log2(2**5000, 2**4000) == pytest.approx(1000.0)


class TestSimplify:
    def test_unit_propagation(self):
        formula = CNFFormula(3, [[1], [-1, 2], [-2, 3]])
        result = simplify(formula)
        assert not result.conflict
        assert result.forced == {1: True, 2: True, 3: True}
        assert result.formula.num_clauses == 0

    def test_conflict_detected(self):
        formula = CNFFormula(2, [[1], [-1]])
        result = simplify(formula)
        assert result.conflict

    def test_tautology_removal(self):
        clauses = [frozenset({1, -1, 2}), frozenset({2, 3})]
        kept, removed = remove_tautologies(clauses)
        assert removed == 1
        assert kept == [frozenset({2, 3})]

    def test_subsumption(self):
        clauses = [frozenset({1}), frozenset({1, 2}), frozenset({2, 3})]
        kept, removed = remove_subsumed(clauses)
        assert removed == 1
        assert frozenset({1, 2}) not in kept

    def test_pure_literal(self):
        formula = CNFFormula(2, [[1, 2], [1, -2]])
        result = simplify(formula)
        assert result.forced[1] is True
        assert result.formula.num_clauses == 0

    def test_preserves_satisfiability(self):
        for seed in range(8):
            formula = random_3sat(6, 14, rng=seed)
            result = simplify(formula)
            if result.conflict:
                assert not is_satisfiable(formula)
            else:
                assert is_satisfiable(result.formula) == is_satisfiable(formula)

    def test_extend_model(self):
        formula, _ = random_planted_3sat(6, 12, rng=3)
        result = simplify(formula)
        assert not result.conflict
        model = solve(result.formula)
        assert model is not None
        combined = result.extend_model(model)
        assert formula.is_satisfied_by(combined)

    def test_core_unchanged_meaningfully(self):
        """The unsatisfiable core has no units/pures; only the formula's
        structure survives, still unsatisfiable."""
        result = simplify(unsatisfiable_core())
        assert not result.conflict  # simplification alone can't refute it
        assert not is_satisfiable(result.formula)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_simplify_preserves_sat(seed):
    formula = random_3sat(5, 10, rng=seed)
    result = simplify(formula)
    original = is_satisfiable(formula)
    if result.conflict:
        assert not original
    else:
        reduced = is_satisfiable(result.formula)
        assert reduced == original
        if reduced:
            model = solve(result.formula)
            assert formula.is_satisfied_by(result.extend_model(model))
