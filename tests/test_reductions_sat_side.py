"""Tests for the SAT-side reductions: 3SAT -> VC -> CLIQUE / 2/3-CLIQUE.

These verify the *exact* quantitative identities the proofs rely on,
using the exact VC/clique solvers on small formulas.
"""

from fractions import Fraction

import pytest

from repro.core.reductions.sat_to_clique import sat_to_clique
from repro.core.reductions.sat_to_two_thirds_clique import sat_to_two_thirds_clique
from repro.core.reductions.sat_to_vc import sat_to_vertex_cover
from repro.graphs.clique import is_clique, max_clique_size
from repro.graphs.properties import min_degree
from repro.graphs.vertex_cover import is_vertex_cover, min_vertex_cover_size
from repro.sat.cnf import CNFFormula
from repro.sat.gapfamilies import no_instance, yes_instance
from repro.sat.generators import random_planted_3sat, unsatisfiable_core
from repro.sat.maxsat import max_satisfiable_clauses
from repro.utils.validation import ValidationError


class TestSatToVC:
    def test_graph_shape(self):
        formula = CNFFormula(3, [[1, 2, 3], [-1, -2, 3]])
        reduction = sat_to_vertex_cover(formula)
        # 2v literal vertices + 3 per clause.
        assert reduction.graph.num_vertices == 6 + 6
        # v spine edges + 3 triangle + 3 communication per clause.
        assert reduction.graph.num_edges == 3 + 2 * 6

    def test_cover_from_satisfying_assignment(self):
        formula, planted = random_planted_3sat(4, 8, rng=0)
        reduction = sat_to_vertex_cover(formula)
        cover = reduction.cover_from_assignment(planted)
        assert is_vertex_cover(reduction.graph, cover)
        assert len(cover) == reduction.cover_size_if_satisfiable

    def test_exact_tau_identity_satisfiable(self):
        """tau = v + 3m - maxsat, with maxsat = m when satisfiable."""
        formula, _ = random_planted_3sat(3, 5, rng=1)
        reduction = sat_to_vertex_cover(formula)
        tau = min_vertex_cover_size(reduction.graph)
        assert tau == reduction.cover_size_if_satisfiable

    def test_exact_tau_identity_unsatisfiable(self):
        core = unsatisfiable_core()
        reduction = sat_to_vertex_cover(core)
        tau = min_vertex_cover_size(reduction.graph)
        maxsat, _ = max_satisfiable_clauses(core)
        assert maxsat == 7
        assert tau == reduction.expected_cover_size(maxsat)
        # Theorem 2's gap: unsatisfiable formulas need strictly larger covers.
        assert tau > reduction.cover_size_if_satisfiable

    def test_cover_from_partial_assignment_padding(self):
        core = unsatisfiable_core()
        reduction = sat_to_vertex_cover(core)
        best, assignment = max_satisfiable_clauses(core)
        cover = reduction.cover_from_assignment(assignment)
        assert is_vertex_cover(reduction.graph, cover)
        assert len(cover) == reduction.expected_cover_size(best)

    def test_rejects_tautologies(self):
        with pytest.raises(ValidationError):
            sat_to_vertex_cover(CNFFormula(2, [[1, -1, 2]]))

    def test_rejects_wide_clauses(self):
        with pytest.raises(ValidationError):
            sat_to_vertex_cover(CNFFormula(4, [[1, 2, 3, 4]]))


class TestSatToClique:
    def test_yes_side_witness(self):
        gap = yes_instance(4, 8, rng=2)
        reduction = sat_to_clique(gap)
        clique = reduction.clique_from_assignment(gap.witness)
        assert is_clique(reduction.graph, clique)
        assert len(clique) == reduction.clique_if_satisfiable

    def test_yes_side_omega_exact(self):
        gap = yes_instance(3, 6, rng=3)
        reduction = sat_to_clique(gap)
        assert max_clique_size(reduction.graph) == reduction.clique_if_satisfiable

    def test_no_side_omega_bounded(self):
        gap = no_instance(1)  # the 8-clause core, theta = 1/8
        reduction = sat_to_clique(gap)
        omega = max_clique_size(reduction.graph)
        assert reduction.clique_bound_if_gap is not None
        assert omega <= reduction.clique_bound_if_gap
        assert omega < reduction.clique_if_satisfiable

    def test_fraction_properties(self):
        gap = no_instance(1)
        reduction = sat_to_clique(gap)
        n = reduction.graph.num_vertices
        v, m = gap.formula.num_vars, gap.formula.num_clauses
        assert n == 6 * v + 6 * m
        assert reduction.c == Fraction(5 * v + 4 * m, n)
        assert reduction.d == Fraction(1, n)  # ceil(theta m) = 1 core

    def test_yes_side_d_none(self):
        gap = yes_instance(4, 8, rng=4)
        assert sat_to_clique(gap).d is None

    def test_density(self):
        """The padded graph is dense: every vertex misses O(1) edges."""
        gap = yes_instance(4, 8, rng=5)
        reduction = sat_to_clique(gap)
        n = reduction.graph.num_vertices
        assert min_degree(reduction.graph) >= n - 1 - 15

    def test_plain_formula_accepted(self):
        formula, _ = random_planted_3sat(3, 6, rng=6)
        reduction = sat_to_clique(formula)
        assert reduction.clique_bound_if_gap is None


class TestSatToTwoThirdsClique:
    def test_target_is_two_thirds(self):
        gap = yes_instance(4, 8, rng=7)
        reduction = sat_to_two_thirds_clique(gap)
        n = reduction.graph.num_vertices
        assert n % 3 == 0
        assert reduction.target == 2 * n // 3

    def test_yes_witness_hits_target(self):
        gap = yes_instance(4, 8, rng=8)
        reduction = sat_to_two_thirds_clique(gap)
        clique = reduction.clique_from_assignment(gap.witness)
        assert is_clique(reduction.graph, clique)
        assert len(clique) == reduction.target

    def test_yes_omega_exact(self):
        gap = yes_instance(3, 6, rng=9)
        reduction = sat_to_two_thirds_clique(gap)
        assert max_clique_size(reduction.graph) == reduction.target

    def test_no_side_epsilon(self):
        gap = no_instance(1)
        reduction = sat_to_two_thirds_clique(gap)
        omega = max_clique_size(reduction.graph)
        assert omega <= reduction.clique_bound_if_gap
        epsilon = reduction.epsilon
        n = reduction.graph.num_vertices
        # (2 - eps) n / 3 equals the recorded bound.
        assert (2 - epsilon) * Fraction(n, 3) == reduction.clique_bound_if_gap

    def test_rejects_non_exact_3cnf(self):
        with pytest.raises(ValidationError):
            sat_to_two_thirds_clique(CNFFormula(2, [[1, 2]]))


class TestCoverToAssignment:
    def test_roundtrip_on_minimal_cover(self):
        """assignment -> cover -> assignment preserves satisfaction."""
        formula, planted = random_planted_3sat(4, 8, rng=20)
        reduction = sat_to_vertex_cover(formula)
        cover = reduction.cover_from_assignment(planted)
        recovered = reduction.assignment_from_cover(cover)
        assert formula.is_satisfied_by(recovered)

    def test_exact_min_cover_yields_model(self):
        """A *solver-found* minimum cover decodes to a model."""
        from repro.graphs.vertex_cover import min_vertex_cover

        formula, _ = random_planted_3sat(3, 5, rng=21)
        reduction = sat_to_vertex_cover(formula)
        cover = min_vertex_cover(reduction.graph)
        assert len(cover) == reduction.cover_size_if_satisfiable
        recovered = reduction.assignment_from_cover(cover)
        assert formula.is_satisfied_by(recovered)

    def test_total_assignment(self):
        formula, planted = random_planted_3sat(5, 10, rng=22)
        reduction = sat_to_vertex_cover(formula)
        cover = reduction.cover_from_assignment(planted)
        recovered = reduction.assignment_from_cover(cover)
        assert set(recovered) == set(range(1, 6))
