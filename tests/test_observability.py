"""Tests for the span tracer, trace schema, reports and sweep tracing.

The load-bearing invariant (the PR's acceptance criterion): the
``cost_evaluations`` counters summed over a sweep trace equal the
runner's own evaluation total — exactly, in serial and parallel mode,
with and without the cache.
"""

import json
import time

import pytest

from repro.observability import (
    SCHEMA,
    Tracer,
    active_tracer,
    aggregate,
    count,
    counter_totals,
    flame_report,
    hot_span,
    install_tracer,
    load_trace,
    span,
    summary_table,
    traced,
    use_tracer,
    validate_trace,
    write_trace,
)
from repro.observability.tracer import _NULL_SPAN
from repro.runtime.runner import grid_tasks, run_sweep
from repro.utils.validation import ValidationError
from repro.workloads.queries import random_query


def _grid():
    instances = [
        (f"g-s{seed}", random_query(5, rng=seed)) for seed in range(2)
    ]
    return grid_tasks(
        ["dp", "greedy-cost", "sampling"],
        instances,
        kwargs_for=lambda name, label: (
            {"rng": 0, "samples": 20} if name == "sampling" else {}
        ),
    )


class TestTracerUnit:
    def test_nesting_parent_child(self):
        tracer = Tracer("root")
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.count("work", 3)
            tracer.count("work", 1)
        records = tracer.finish()
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["parent"] == by_name["root"]["id"]
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner"]["counters"] == {"work": 3}
        assert by_name["outer"]["counters"] == {"work": 1}

    def test_records_are_topologically_sorted(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        records = tracer.finish()
        seen = set()
        for record in records:
            assert record["parent"] is None or record["parent"] in seen
            seen.add(record["id"])

    def test_finish_is_idempotent_and_closes_root(self):
        tracer = Tracer()
        first = tracer.finish()
        second = tracer.finish()
        assert first is second
        assert first[0]["duration_s"] >= 0

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        records = tracer.finish()
        doomed = next(r for r in records if r["name"] == "doomed")
        assert doomed["duration_s"] >= 0
        # The stack unwound: a later span is a child of the root again.
        with use_tracer(Tracer()) as fresh:
            with fresh.span("next"):
                pass
        assert fresh.finish()[1]["parent"] == fresh.root["id"]

    def test_count_outside_any_span_lands_on_root(self):
        tracer = Tracer()
        tracer.count("orphan", 2)
        assert tracer.root["counters"] == {"orphan": 2}


class TestModuleHelpers:
    def test_noop_when_no_tracer_installed(self):
        assert active_tracer() is None
        assert span("anything") is _NULL_SPAN
        count("anything", 5)  # must not raise

    def test_use_tracer_restores_previous(self):
        outer = Tracer()
        with use_tracer(outer):
            assert active_tracer() is outer
            inner = Tracer()
            with use_tracer(inner):
                assert active_tracer() is inner
            assert active_tracer() is outer
        assert active_tracer() is None

    def test_install_tracer_returns_previous(self):
        tracer = Tracer()
        assert install_tracer(tracer) is None
        try:
            with span("via-module"):
                count("hits")
        finally:
            assert install_tracer(None) is tracer
        names = [r["name"] for r in tracer.finish()]
        assert "via-module" in names

    def test_traced_decorator_records_span_and_explored(self):
        class Result:
            explored = 7

        @traced("optimize.fake")
        def fake_optimizer(instance):
            return Result()

        assert fake_optimizer(None).explored == 7  # no tracer: passthrough
        tracer = Tracer()
        with use_tracer(tracer):
            fake_optimizer(None)
        records = tracer.finish()
        fake = next(r for r in records if r["name"] == "optimize.fake")
        assert fake["counters"] == {"plans_explored": 7}
        assert fake_optimizer.__name__ == "fake_optimizer"


class TestTraceIO:
    def _records(self):
        tracer = Tracer("run")
        with tracer.span("phase"):
            tracer.count("cost_evaluations", 4)
        return tracer.finish()

    def test_round_trip_preserves_records_and_meta(self, tmp_path):
        records = self._records()
        path = tmp_path / "trace.jsonl"
        write_trace(records, path, meta={"mode": "serial", "n": 8})
        trace = load_trace(path)
        assert trace.meta == {"mode": "serial", "n": 8}
        assert trace.records == records
        assert len(trace) == len(records)
        assert [r["name"] for r in trace.roots()] == ["run"]
        assert trace.children_of(trace.roots()[0]["id"])[0]["name"] == "phase"
        # Line 1 is a plain JSON header other tools can sniff.
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == SCHEMA

    def test_validate_rejects_duplicate_ids(self):
        records = self._records()
        records.append(dict(records[0]))
        with pytest.raises(ValidationError):
            validate_trace(records)

    def test_validate_rejects_forward_parent(self):
        records = self._records()
        records[0], records[1] = records[1], records[0]
        with pytest.raises(ValidationError):
            validate_trace(records)

    def test_validate_rejects_non_int_counters(self):
        records = self._records()
        records[1]["counters"] = {"cost_evaluations": True}
        with pytest.raises(ValidationError):
            validate_trace(records)
        records[1]["counters"] = {"cost_evaluations": 1.5}
        with pytest.raises(ValidationError):
            validate_trace(records)

    def test_validate_rejects_negative_times(self):
        records = self._records()
        records[1]["duration_s"] = -0.1
        with pytest.raises(ValidationError):
            validate_trace(records)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"schema": "repro.trace/99", "meta": {}}\n')
        with pytest.raises(ValidationError):
            load_trace(path)
        path.write_text("")
        with pytest.raises(ValidationError):
            load_trace(path)


class TestReports:
    def _records(self):
        # Hand-built so self-time arithmetic is exact.
        return [
            {"id": 0, "parent": None, "name": "sweep", "start_s": 0.0,
             "duration_s": 10.0, "counters": {}},
            {"id": 1, "parent": 0, "name": "task", "start_s": 0.0,
             "duration_s": 6.0, "counters": {}},
            {"id": 2, "parent": 1, "name": "optimize.dp", "start_s": 1.0,
             "duration_s": 4.0, "counters": {"cost_evaluations": 30}},
            {"id": 3, "parent": 0, "name": "task", "start_s": 6.0,
             "duration_s": 4.0, "counters": {}},
            {"id": 4, "parent": 3, "name": "optimize.dp", "start_s": 6.5,
             "duration_s": 2.0, "counters": {"cost_evaluations": 12}},
        ]

    def test_aggregate_sums_calls_times_counters(self):
        rows = {row["name"]: row for row in aggregate(self._records())}
        dp = rows["optimize.dp"]
        assert dp["calls"] == 2
        assert dp["total_s"] == pytest.approx(6.0)
        assert dp["self_s"] == pytest.approx(6.0)  # leaves: self == total
        assert dp["counters"] == {"cost_evaluations": 42}
        task = rows["task"]
        assert task["self_s"] == pytest.approx(10.0 - 6.0)

    def test_hot_span_skips_structural_wrappers(self):
        name, share = hot_span(self._records())
        assert name == "optimize.dp"
        assert share == pytest.approx(0.6)
        assert hot_span([]) is None

    def test_summary_table_and_flame_render(self):
        records = self._records()
        table = summary_table(records)
        assert "optimize.dp" in table
        assert "cost_evaluations=42" in table
        assert "optimize.dp" not in summary_table(records, top=2)
        flame = flame_report(records)
        assert "task x2" in flame  # same-named siblings merged
        assert "(100.0%)" in flame
        shallow = flame_report(records, max_depth=0)
        assert "optimize.dp" not in shallow


class TestSweepTracing:
    def test_serial_trace_counters_match_runner_totals(self):
        result = run_sweep(_grid(), workers=1, trace=True)
        records = result.trace_records()
        validate_trace(records)
        totals = counter_totals(records)
        assert totals["cost_evaluations"] == result.evaluations
        assert totals.get("cache_hits", 0) == result.cache_totals().hits
        # Every optimizer's explored work is attributed to some span.
        assert totals["plans_explored"] >= result.explored_total

    def test_parallel_trace_matches_serial_shape_and_counters(self):
        tasks = _grid()
        serial = run_sweep(tasks, workers=1, trace=True)
        parallel = run_sweep(tasks, workers=2, trace=True)
        if parallel.mode != "parallel":
            pytest.skip("no multiprocessing pool available here")
        s_records = serial.trace_records()
        p_records = parallel.trace_records()
        validate_trace(p_records)
        assert sorted(r["name"] for r in s_records) == sorted(
            r["name"] for r in p_records
        )
        # Counter aggregation is mode-independent.
        p_totals = counter_totals(p_records)
        assert p_totals["cost_evaluations"] == parallel.evaluations
        s_totals = counter_totals(s_records)
        assert (
            s_totals["plans_explored"] == p_totals["plans_explored"]
        )

    def test_uncached_sweep_still_counts_evaluations(self):
        result = run_sweep(_grid(), workers=1, cache=False, trace=True)
        totals = counter_totals(result.trace_records())
        assert totals["cost_evaluations"] == result.evaluations
        assert totals.get("cache_hits", 0) == 0

    def test_task_spans_carry_labels_and_peak(self):
        result = run_sweep(_grid(), workers=1, trace=True)
        records = result.trace_records()
        roots = [r for r in records if r["parent"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "sweep"
        task_spans = [
            r for r in records if r["parent"] == roots[0]["id"]
        ]
        assert len(task_spans) == len(result)
        labels = [t["attrs"]["label"] for t in task_spans]
        assert labels == [o.label for o in result]
        assert any(
            t["counters"].get("subproblem_peak", 0) > 0 for t in task_spans
        )

    def test_untraced_sweep_carries_no_trace(self):
        result = run_sweep(_grid()[:2], workers=1)
        assert all(o.trace is None for o in result)
        # Only the synthetic sweep root remains — no task subtrees.
        assert [r["name"] for r in result.trace_records()] == ["sweep"]


class TestCLIAcceptance:
    """`repro sweep --family qon --n 8 --trace-out` end to end."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_trace_counters_equal_metrics_totals(self, tmp_path, workers):
        from repro.cli import main
        from repro.runtime.metrics import load_metrics

        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.json"
        rc = main([
            "sweep", "--family", "qon", "--n", "8", "--quick",
            "--workers", str(workers),
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert rc == 0
        trace = load_trace(trace_path)
        validate_trace(trace.records, meta=trace.meta)
        assert trace.meta["grid"]["family"] == "qon"
        totals = counter_totals(trace.records)
        metrics = load_metrics(metrics_path)
        assert totals["cost_evaluations"] == (
            metrics["totals"]["cost_evaluations"]
        )


class TestOverheadGuard:
    def test_disabled_tracing_costs_under_five_percent(self):
        """The no-op path must stay negligible on a Theorem-9 sweep.

        Measured structurally rather than as an A/B wall-clock diff
        (which is noise-bound in CI): the per-call cost of the disabled
        ``span``/``count`` helpers, times the number of instrumented
        calls the sweep actually makes, must be under 5% of the sweep's
        wall time.
        """
        assert active_tracer() is None
        calls = 200_000
        start = time.perf_counter()
        for _ in range(calls):
            count("cost_evaluations")
        count_cost = (time.perf_counter() - start) / calls
        start = time.perf_counter()
        for _ in range(calls):
            with span("optimize.dp"):
                pass
        span_cost = (time.perf_counter() - start) / calls

        result = run_sweep(_grid(), workers=1, trace=True)
        records = result.trace_records()
        totals = counter_totals(records)
        instrumented = (
            sum(totals.values()) * count_cost
            + len(records) * span_cost
        )
        assert instrumented < 0.05 * result.wall_time, (
            f"no-op instrumentation estimated at {instrumented:.6f}s "
            f"vs sweep wall {result.wall_time:.6f}s"
        )
