"""Tests for the QO_N optimizers: exactness, agreement, heuristic soundness."""

import itertools
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.joinopt.cost import has_cartesian_product, total_cost
from repro.joinopt.instance import QONInstance
from repro.joinopt.optimizers import (
    dp_optimal,
    exhaustive_optimal,
    greedy_min_cost,
    greedy_min_size,
    ikkbz,
    iterative_improvement,
    random_sampling,
    simulated_annealing,
)
from repro.utils.validation import ValidationError
from repro.workloads.queries import (
    chain_query,
    clique_query,
    cycle_query,
    random_query,
    star_query,
)


def brute_force_cost(instance):
    return min(
        total_cost(instance, list(p))
        for p in itertools.permutations(range(instance.num_relations))
    )


class TestExhaustive:
    def test_matches_brute_force(self):
        instance = random_query(5, rng=0)
        result = exhaustive_optimal(instance)
        assert result.cost == brute_force_cost(instance)
        assert result.is_exact

    def test_sequence_cost_consistent(self):
        instance = random_query(5, rng=1)
        result = exhaustive_optimal(instance)
        assert total_cost(instance, result.sequence) == result.cost

    def test_single_relation(self):
        instance = QONInstance(Graph(1, []), [5], {})
        result = exhaustive_optimal(instance)
        assert result.cost == 0
        assert result.sequence == (0,)

    def test_relation_guard(self):
        instance = clique_query(13, rng=2)
        with pytest.raises(ValidationError):
            exhaustive_optimal(instance)

    def test_no_cartesian_restriction(self):
        instance = chain_query(5, rng=3)
        result = exhaustive_optimal(instance, allow_cartesian=False)
        assert not has_cartesian_product(instance, result.sequence)

    def test_disconnected_fallback(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        instance = QONInstance(
            graph, [10, 10, 10, 10],
            {(0, 1): Fraction(1, 2), (2, 3): Fraction(1, 2)},
        )
        result = exhaustive_optimal(instance, allow_cartesian=False)
        assert len(result.sequence) == 4


class TestDP:
    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_exhaustive(self, seed):
        instance = random_query(6, rng=seed)
        assert dp_optimal(instance).cost == exhaustive_optimal(instance).cost

    def test_agrees_under_no_cartesian(self):
        instance = cycle_query(6, rng=7)
        a = dp_optimal(instance, allow_cartesian=False)
        b = exhaustive_optimal(instance, allow_cartesian=False)
        assert a.cost == b.cost
        assert not has_cartesian_product(instance, a.sequence)

    def test_sequence_cost_consistent(self):
        instance = random_query(7, rng=8)
        result = dp_optimal(instance)
        assert total_cost(instance, result.sequence) == result.cost

    def test_relation_guard(self):
        instance = chain_query(19, rng=9)
        with pytest.raises(ValidationError):
            dp_optimal(instance)

    def test_single_relation(self):
        instance = QONInstance(Graph(1, []), [5], {})
        assert dp_optimal(instance).cost == 0


class TestGreedy:
    @pytest.mark.parametrize("factory", [greedy_min_cost, greedy_min_size])
    def test_returns_valid_permutation(self, factory):
        instance = random_query(8, rng=10)
        result = factory(instance)
        assert sorted(result.sequence) == list(range(8))
        assert total_cost(instance, result.sequence) == result.cost

    def test_never_beats_optimum(self):
        for seed in range(5):
            instance = random_query(6, rng=seed)
            optimal = dp_optimal(instance).cost
            assert greedy_min_cost(instance).cost >= optimal
            assert greedy_min_size(instance).cost >= optimal

    def test_avoids_cartesian_on_connected(self):
        instance = chain_query(7, rng=11)
        result = greedy_min_cost(instance)
        assert not has_cartesian_product(instance, result.sequence)

    def test_disconnected_falls_back(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        instance = QONInstance(
            graph, [10, 20, 30, 40],
            {(0, 1): Fraction(1, 2), (2, 3): Fraction(1, 4)},
        )
        result = greedy_min_cost(instance)
        assert sorted(result.sequence) == [0, 1, 2, 3]


class TestIKKBZ:
    @pytest.mark.parametrize("factory,seed", [
        (chain_query, 0), (chain_query, 1), (chain_query, 2),
        (star_query, 3), (star_query, 4), (star_query, 5),
    ])
    def test_optimal_on_trees(self, factory, seed):
        instance = factory(7, rng=seed)
        exact = dp_optimal(instance, allow_cartesian=False)
        assert ikkbz(instance).cost == exact.cost

    def test_random_trees(self):
        import random

        for seed in range(5):
            rng = random.Random(seed)
            n = 6
            # Random tree via random parent for each vertex.
            edges = [(rng.randrange(v), v) for v in range(1, n)]
            graph = Graph(n, edges)
            sizes = [rng.randint(1, 500) for _ in range(n)]
            sel = {e: Fraction(1, rng.randint(1, 50)) for e in graph.edges}
            instance = QONInstance(graph, sizes, sel)
            exact = dp_optimal(instance, allow_cartesian=False)
            assert ikkbz(instance).cost == exact.cost

    def test_rejects_cyclic(self):
        instance = cycle_query(5, rng=6)
        with pytest.raises(ValidationError):
            ikkbz(instance)

    def test_rejects_disconnected(self):
        graph = Graph(3, [(0, 1)])
        instance = QONInstance(graph, [1, 1, 1], {(0, 1): Fraction(1, 2)})
        with pytest.raises(ValidationError):
            ikkbz(instance)

    def test_rejects_log_domain(self):
        instance = chain_query(4, rng=7).to_log_domain()
        with pytest.raises(ValidationError):
            ikkbz(instance)

    def test_no_cartesian_products(self):
        instance = chain_query(8, rng=8)
        result = ikkbz(instance)
        assert not has_cartesian_product(instance, result.sequence)


class TestRandomized:
    def test_iterative_improvement_valid(self):
        instance = random_query(7, rng=12)
        result = iterative_improvement(instance, restarts=3, rng=1)
        assert sorted(result.sequence) == list(range(7))
        assert result.cost == total_cost(instance, result.sequence)

    def test_iterative_improvement_not_below_optimal(self):
        instance = random_query(6, rng=13)
        optimal = dp_optimal(instance).cost
        assert iterative_improvement(instance, rng=2).cost >= optimal

    def test_annealing_valid(self):
        instance = random_query(6, rng=14)
        result = simulated_annealing(instance, rng=3)
        assert sorted(result.sequence) == list(range(6))
        assert result.cost == total_cost(instance, result.sequence)

    def test_sampling_improves_with_budget(self):
        instance = clique_query(8, rng=15)
        small = random_sampling(instance, samples=2, rng=4)
        large = random_sampling(instance, samples=300, rng=4)
        assert large.cost <= small.cost

    def test_deterministic_given_seed(self):
        instance = random_query(6, rng=16)
        a = simulated_annealing(instance, rng=7)
        b = simulated_annealing(instance, rng=7)
        assert a.cost == b.cost and a.sequence == b.sequence


class TestRatio:
    def test_ratio_to(self):
        instance = random_query(6, rng=17)
        optimal = dp_optimal(instance)
        heuristic = greedy_min_cost(instance)
        ratio = heuristic.ratio_to(optimal.cost)
        assert ratio >= 1.0

    def test_ratio_inf_for_huge_gap(self):
        from repro.joinopt.optimizers.base import OptimizerResult

        result = OptimizerResult(cost=2**5000, sequence=(0,), optimizer="x")
        assert result.ratio_to(1) == float("inf")


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_dp_equals_exhaustive(seed):
    instance = random_query(5, edge_probability=0.4, rng=seed)
    assert dp_optimal(instance).cost == exhaustive_optimal(instance).cost


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_heuristics_bounded_below_by_dp(seed):
    instance = random_query(5, rng=seed)
    optimal = dp_optimal(instance).cost
    for heuristic in (greedy_min_cost, greedy_min_size):
        assert heuristic(instance).cost >= optimal
