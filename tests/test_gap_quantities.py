"""Direct tests for the gap quantities (repro.core.gap)."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.gap import (
    default_alpha_exponent,
    exceeds_every_polylog,
    g_bound_log2,
    gap_factor_log2,
    k_cd,
    k_cd_log2,
    l_bound_log2,
    no_side_lower_bound,
    polylog_budget_log2,
)
from repro.utils.lognum import log2_of
from repro.utils.validation import ValidationError


class TestAlphaExponent:
    def test_delta_one(self):
        assert default_alpha_exponent(10, 1.0) == 20  # alpha = 4^10

    def test_delta_half(self):
        assert default_alpha_exponent(10, 0.5) == 200  # alpha = 4^{100}

    def test_always_even(self):
        for n in range(1, 30):
            for delta in (1.0, 0.7, 0.5):
                assert default_alpha_exponent(n, delta) % 2 == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            default_alpha_exponent(0)
        with pytest.raises(ValidationError):
            default_alpha_exponent(5, 0)


class TestKcd:
    def test_closed_form(self):
        # B = (6+4)/2 = 5, exponent = 5*6/2 + 1 = 16.
        assert k_cd(4, 7, 6, 4) == 7 * 4**16

    def test_parity_rejected(self):
        with pytest.raises(ValidationError):
            k_cd(4, 1, 5, 2)

    def test_log_form_agrees(self):
        exact = k_cd(16, 16**3, 8, 4)
        logged = k_cd_log2(4, log2_of(16**3), 8, 4)
        assert log2_of(exact) == pytest.approx(float(logged))

    def test_quadratic_growth(self):
        """log K grows quadratically in the clique scale (item 3)."""
        small = float(k_cd_log2(2, 0, 10, 10))
        large = float(k_cd_log2(2, 0, 20, 20))
        assert large / small == pytest.approx(4.0, rel=0.2)


class TestNoSideBound:
    def test_formula(self):
        # half-gap = (8-4)/2 = 2 => extra alpha^{2-1}.
        assert no_side_lower_bound(4, 3, 8, 4) == k_cd(4, 3, 8, 4) * 4

    def test_minimal_gap_collapses_to_k(self):
        assert no_side_lower_bound(4, 3, 8, 6) == k_cd(4, 3, 8, 6)

    def test_odd_gap_rejected(self):
        with pytest.raises(ValidationError):
            no_side_lower_bound(4, 3, 8, 5)

    def test_gap_factor_log(self):
        assert gap_factor_log2(2, 8, 4) == 2  # alpha^{2-1} = 2^2


class TestQOHBounds:
    def test_l_bound(self):
        # log2 L = log2 t0 + (n^2/9) log2 alpha.
        assert l_bound_log2(2, 10, 9) == 10 + 2 * 9

    def test_g_exceeds_l_when_eps_big(self):
        l_value = l_bound_log2(2, 10, 9)
        g_value = g_bound_log2(2, 10, 9, Fraction(2, 3))
        # exponent delta = n*eps/3 - 1 = 1 > 0.
        assert g_value == l_value + 2

    def test_g_equals_l_at_threshold(self):
        # n*eps/3 = 1 makes G = L (the vacuous point).
        l_value = l_bound_log2(2, 10, 6)
        g_value = g_bound_log2(2, 10, 6, Fraction(1, 2))
        assert g_value == l_value


class TestPolylogBudget:
    def test_formula(self):
        assert polylog_budget_log2(1024.0, 0.5) == pytest.approx(32.0)

    def test_delta_bounds(self):
        with pytest.raises(ValidationError):
            polylog_budget_log2(100.0, 0)
        with pytest.raises(ValidationError):
            polylog_budget_log2(100.0, 1)

    def test_nonpositive_cost(self):
        with pytest.raises(ValidationError):
            polylog_budget_log2(0.0, 0.5)

    def test_exceeds_every_polylog(self):
        assert exceeds_every_polylog(10_000.0, 1_000.0)
        assert not exceeds_every_polylog(5.0, 1_000.0)

    def test_tiny_cost_rejected_gracefully(self):
        assert not exceeds_every_polylog(100.0, 1.0)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=2, max_value=40),
)
def test_property_k_monotone_in_promise(half_gap, k_no):
    """Widening the promise (larger k_yes) only raises K and the floor."""
    k_yes = k_no + 2 * half_gap
    smaller = k_cd(4, 1, k_yes, k_no)
    bigger = k_cd(4, 1, k_yes + 2, k_no)
    assert bigger > smaller
    assert no_side_lower_bound(4, 1, k_yes, k_no) >= smaller
