"""Tests for the log-domain numeric type."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.utils.lognum import LogNumber, as_log, log2_of


class TestLog2Of:
    def test_int(self):
        assert log2_of(8) == 3.0

    def test_zero(self):
        assert log2_of(0) == float("-inf")

    def test_fraction(self):
        assert log2_of(Fraction(1, 4)) == -2.0

    def test_float(self):
        assert log2_of(0.5) == -1.0

    def test_huge_int(self):
        value = 1 << 100_000
        assert log2_of(value) == pytest.approx(100_000.0)

    def test_huge_int_offset(self):
        value = 3 * (1 << 100_000)
        assert log2_of(value) == pytest.approx(100_000 + math.log2(3))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            log2_of(-1)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            log2_of("nope")

    def test_lognumber_passthrough(self):
        assert log2_of(LogNumber(16)) == 4.0


class TestArithmetic:
    def test_mul(self):
        assert (LogNumber(8) * LogNumber(4)).log2 == 5.0

    def test_mul_int(self):
        assert (LogNumber(8) * 4).log2 == 5.0

    def test_rmul(self):
        assert (4 * LogNumber(8)).log2 == 5.0

    def test_div(self):
        assert (LogNumber(32) / 4).log2 == 3.0

    def test_rdiv(self):
        assert (32 / LogNumber(4)).log2 == 3.0

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            LogNumber(1) / LogNumber.zero()

    def test_add(self):
        assert (LogNumber(8) + LogNumber(8)).log2 == 4.0

    def test_add_asymmetric(self):
        result = LogNumber(8) + LogNumber(4)
        assert result.log2 == pytest.approx(math.log2(12))

    def test_add_zero(self):
        assert (LogNumber(8) + LogNumber.zero()).log2 == 3.0

    def test_add_huge_disparity(self):
        big = LogNumber.from_log2(1e6)
        assert (big + LogNumber(2)).log2 == 1e6

    def test_sub(self):
        assert (LogNumber(12) - LogNumber(4)).log2 == 3.0

    def test_sub_to_zero(self):
        assert (LogNumber(4) - 4).is_zero()

    def test_sub_negative_rejected(self):
        with pytest.raises(ValueError):
            LogNumber(4) - LogNumber(8)

    def test_pow(self):
        assert (LogNumber(2) ** 100).log2 == 100.0

    def test_pow_fraction(self):
        assert (LogNumber(4) ** Fraction(1, 2)).log2 == 1.0

    def test_pow_zero_base(self):
        assert (LogNumber.zero() ** 3).is_zero()
        assert (LogNumber.zero() ** 0) == 1

    def test_mul_by_zero(self):
        assert (LogNumber(8) * 0).is_zero()


class TestComparison:
    def test_eq_int(self):
        assert LogNumber(16) == 16

    def test_lt(self):
        assert LogNumber(3) < LogNumber(4)

    def test_cross_type_ordering(self):
        assert LogNumber(2) ** 100 > 10**29
        assert LogNumber(2) ** 100 < 10**31

    def test_zero_is_falsy(self):
        assert not LogNumber.zero()
        assert LogNumber(1)

    def test_hashable(self):
        assert hash(LogNumber(4)) == hash(LogNumber(4))

    def test_sortable_with_ints(self):
        values = [LogNumber(10), LogNumber(2)]
        assert sorted(values)[0] == 2


class TestConversion:
    def test_to_float(self):
        assert LogNumber(10).to_float() == pytest.approx(10.0)

    def test_to_float_zero(self):
        assert LogNumber.zero().to_float() == 0.0

    def test_to_float_overflow(self):
        with pytest.raises(OverflowError):
            LogNumber.from_log2(5000).to_float()

    def test_as_log_idempotent(self):
        x = LogNumber(5)
        assert as_log(x) is x

    def test_repr(self):
        assert "log2" in repr(LogNumber(7))
        assert repr(LogNumber.zero()) == "LogNumber(0)"


@given(st.integers(min_value=1, max_value=10**12), st.integers(min_value=1, max_value=10**12))
def test_property_mul_matches_int(a, b):
    assert (LogNumber(a) * LogNumber(b)).log2 == pytest.approx(
        math.log2(a * b), rel=1e-12
    )


@given(st.integers(min_value=1, max_value=10**12), st.integers(min_value=1, max_value=10**12))
def test_property_add_matches_int(a, b):
    assert (LogNumber(a) + LogNumber(b)).log2 == pytest.approx(
        math.log2(a + b), rel=1e-9
    )


@given(st.integers(min_value=0, max_value=10**12), st.integers(min_value=0, max_value=10**12))
def test_property_ordering_matches_int(a, b):
    assert (LogNumber(a) < LogNumber(b)) == (a < b)
    assert (LogNumber(a) == LogNumber(b)) == (a == b)
