"""Property-based tests for the QO_N cost model and optimizers.

``hypothesis`` is not available in this environment, so each property
is exercised over a deterministic battery of seeded ``random.Random``
cases — failures are reproducible and the offending seed appears in
the assertion message.

Three property families:

* **Lemma 5 structure** — on f_N reduction instances the cost of any
  sequence equals the closed form ``sum_i t^i * alpha^{-D_i} * probe``
  (``D_i`` = edges within the first ``i`` vertices, probe = ``w`` when
  the incoming vertex is connected, else ``t``), and therefore a
  connected sequence whose ``D`` profile pointwise dominates another's
  never costs more.
* **Approximation sanity** — no heuristic ever beats the exhaustive
  optimum (``ratio_to >= 1``) on instances small enough to enumerate.
* **Cache transparency** — costs computed through a
  :class:`~repro.runtime.costcache.CostCache` are bit-identical to the
  uncached values, and repeat lookups are served as hits.
"""

import random
from fractions import Fraction

from repro.core.reductions.clique_to_qon import clique_to_qon
from repro.graphs.generators import gnp_random_graph
from repro.joinopt.cost import (
    back_edge_counts,
    prefix_edge_counts,
    total_cost,
)
from repro.joinopt.optimizers import exhaustive_optimal, ikkbz
from repro.runtime.costcache import CostCache, use_cache
from repro.runtime.runner import OPTIMIZERS
from repro.workloads.queries import chain_query, random_query

#: registry heuristics valid on arbitrary (possibly cyclic) QO_N
#: instances; ikkbz (tree-only) is exercised separately.
_HEURISTIC_NAMES = [
    "greedy-cost",
    "greedy-size",
    "iterative",
    "annealing",
    "sampling",
    "genetic",
]
_RANDOMIZED = {"iterative", "annealing", "sampling", "genetic"}


def _heuristic(name, instance, seed):
    kwargs = {"rng": seed} if name in _RANDOMIZED else {}
    return OPTIMIZERS[name](instance, **kwargs)


def _random_connected_sequence(graph, rng):
    """A uniform-ish connected permutation, or None if stuck."""
    n = graph.num_vertices
    sequence = [rng.randrange(n)]
    remaining = set(range(n)) - {sequence[0]}
    while remaining:
        frontier = sorted(
            v for v in remaining
            if any(graph.has_edge(v, u) for u in sequence)
        )
        if not frontier:
            return None
        choice = frontier[rng.randrange(len(frontier))]
        sequence.append(choice)
        remaining.discard(choice)
    return tuple(sequence)


def _lemma5_closed_form(reduction, sequence):
    """``C(Z) = sum_{i=1}^{n-1} t^i * alpha^{-D_i} * probe_i``."""
    t = reduction.relation_size
    w = reduction.edge_access_cost
    alpha = reduction.alpha
    back = back_edge_counts(reduction.instance, sequence)
    prefix = prefix_edge_counts(reduction.instance, sequence)
    total = Fraction(0)
    for i in range(1, reduction.n):
        probe = w if back[i] > 0 else t
        total += Fraction(t**i, alpha ** prefix[i - 1]) * probe
    return total


class TestLemma5Structure:
    def test_cost_matches_closed_form(self):
        """Every permutation of an f_N instance obeys the Lemma 5 sum."""
        for seed in range(12):
            rng = random.Random(seed)
            n = rng.randrange(5, 8)
            graph = gnp_random_graph(n, 0.6, rng=rng.randrange(10**6))
            reduction = clique_to_qon(graph, k_yes=n - 1, k_no=1, alpha=4)
            for _ in range(6):
                order = list(range(n))
                rng.shuffle(order)
                expected = _lemma5_closed_form(reduction, order)
                actual = total_cost(reduction.instance, order)
                assert actual == expected, (
                    f"seed={seed} order={order}: "
                    f"cost {actual} != closed form {expected}"
                )

    def test_dominating_prefix_profile_never_costs_more(self):
        """Connected sequences: D-profile domination => cost order.

        Lemma 5's monotonicity: with uniform sizes and edge costs,
        packing more query-graph edges into every prefix shrinks every
        intermediate, so the total cost can only go down.
        """
        compared = 0
        for seed in range(30):
            rng = random.Random(1000 + seed)
            n = rng.randrange(5, 8)
            graph = gnp_random_graph(n, 0.7, rng=rng.randrange(10**6))
            reduction = clique_to_qon(graph, k_yes=n - 1, k_no=1, alpha=4)
            sequences = []
            for _ in range(8):
                sequence = _random_connected_sequence(graph, rng)
                if sequence is not None:
                    sequences.append(sequence)
            profiles = {
                sequence: prefix_edge_counts(reduction.instance, sequence)
                for sequence in sequences
            }
            for a in sequences:
                for b in sequences:
                    if all(x >= y for x, y in zip(profiles[a], profiles[b])):
                        compared += 1
                        cost_a = total_cost(reduction.instance, a)
                        cost_b = total_cost(reduction.instance, b)
                        assert cost_a <= cost_b, (
                            f"seed={seed}: {a} dominates {b} "
                            f"but costs more ({cost_a} > {cost_b})"
                        )
        # The battery must actually exercise the property.
        assert compared > 50


class TestApproximationSanity:
    def test_heuristics_never_beat_exhaustive(self):
        """ratio_to >= 1 for every non-exact optimizer on n <= 6."""
        for seed in range(8):
            instance = random_query(6, rng=seed)
            optimum = exhaustive_optimal(instance).cost
            for name in _HEURISTIC_NAMES:
                result = _heuristic(name, instance, seed)
                ratio = result.ratio_to(optimum)
                assert ratio >= 1.0 - 1e-9, (
                    f"seed={seed}: {name} ratio {ratio} < 1 "
                    f"(cost {result.cost} vs optimum {optimum})"
                )
                assert result.cost >= optimum

    def test_ikkbz_exact_among_connected_sequences(self):
        """On tree queries ikkbz finds the best *connected* sequence.

        (The exhaustive optimum may use a cartesian product, which
        ikkbz's precedence ordering excludes by construction — so the
        comparison enumerates cartesian-free permutations directly.)
        """
        from itertools import permutations

        from repro.joinopt.cost import has_cartesian_product

        for seed in range(6):
            instance = chain_query(6, rng=seed)
            connected_optimum = min(
                total_cost(instance, order)
                for order in permutations(range(6))
                if not has_cartesian_product(instance, order)
            )
            result = ikkbz(instance)
            assert result.cost == connected_optimum
            assert result.cost >= exhaustive_optimal(instance).cost


class TestCacheTransparency:
    def test_cached_costs_bit_identical(self):
        """Cache on/off gives the same value, type and repr."""
        for seed in range(6):
            instance = random_query(7, rng=seed)
            rng = random.Random(seed)
            sequences = []
            for _ in range(10):
                order = list(range(7))
                rng.shuffle(order)
                sequences.append(tuple(order))
            uncached = [total_cost(instance, s) for s in sequences]
            cache = CostCache()
            with use_cache(cache):
                first = [total_cost(instance, s) for s in sequences]
                second = [total_cost(instance, s) for s in sequences]
            for u, c1, c2 in zip(uncached, first, second):
                assert u == c1 == c2
                assert type(u) is type(c1)
                assert repr(u) == repr(c1)
            # Second pass must have been served from the cache.
            assert cache.stats().hits >= len(sequences)

    def test_cached_optimizers_match_uncached(self):
        """Exact optimizers return identical plans with caching on."""
        for seed in range(4):
            instance = random_query(6, rng=seed)
            plain = {
                name: OPTIMIZERS[name](instance)
                for name in ("exhaustive", "bnb", "dp")
            }
            with use_cache(CostCache()):
                for name, expected in plain.items():
                    cached = OPTIMIZERS[name](instance)
                    assert cached.cost == expected.cost
                    assert cached.sequence == expected.sequence

    def test_lru_bound_is_respected(self):
        """A bounded cache evicts rather than grow past maxsize."""
        instance = random_query(7, rng=0)
        cache = CostCache(maxsize=16)
        rng = random.Random(0)
        with use_cache(cache):
            for _ in range(100):
                order = list(range(7))
                rng.shuffle(order)
                total_cost(instance, tuple(order))
        stats = cache.stats()
        assert stats.size <= 16
        assert stats.peak_size <= 16
        assert stats.evictions > 0
