"""Tests for the QO_N lower-bound machinery."""

import itertools

import pytest

from repro.core.reductions.clique_to_qon import clique_to_qon
from repro.graphs.generators import complete_graph
from repro.joinopt.bounds import (
    dominance_lower_bound,
    first_join_lower_bound,
    lemma8_style_lower_bound,
    verify_no_instance_floor,
)
from repro.joinopt.cost import total_cost
from repro.joinopt.optimizers import dp_optimal
from repro.utils.validation import ValidationError
from repro.workloads.gaps import qon_gap_pair, turan_graph
from repro.workloads.queries import random_query


class TestFirstJoinBound:
    def test_sound_on_random_instances(self):
        for seed in range(6):
            instance = random_query(6, rng=seed)
            bound = first_join_lower_bound(instance)
            optimum = dp_optimal(instance)
            assert optimum.cost >= bound

    def test_exact_on_two_relations(self):
        instance = random_query(2, rng=7)
        assert first_join_lower_bound(instance) == dp_optimal(instance).cost


class TestDominanceBound:
    def test_sound_for_every_sequence(self):
        instance = random_query(5, rng=8)
        for p in (2, 3, 4):
            bound = dominance_lower_bound(instance, p)
            for sequence in itertools.permutations(range(5)):
                cost = total_cost(instance, sequence)
                assert cost >= bound

    def test_tight_on_uniform_reduction(self):
        reduction = clique_to_qon(complete_graph(6), k_yes=6, k_no=2, alpha=4)
        instance = reduction.instance
        optimum = dp_optimal(instance)
        best_bound = max(
            dominance_lower_bound(instance, p) for p in range(2, 6)
        )
        # Within the alpha-granularity of the model.
        assert optimum.cost >= best_bound
        assert optimum.cost <= best_bound * reduction.alpha ** (2 * 6)

    def test_range_validation(self):
        instance = random_query(4, rng=9)
        with pytest.raises(ValidationError):
            dominance_lower_bound(instance, 1)
        with pytest.raises(ValidationError):
            dominance_lower_bound(instance, 4)


class TestLemma8StyleBound:
    def test_matches_formula_at_k_no(self):
        graph = turan_graph(8, 4)
        reduction = clique_to_qon(graph, k_yes=8, k_no=4, alpha=4)
        assert lemma8_style_lower_bound(
            reduction, 4
        ) == reduction.no_cost_lower_bound()
        assert verify_no_instance_floor(reduction, 4)

    def test_sound_against_dp(self):
        graph = turan_graph(8, 4)
        reduction = clique_to_qon(graph, k_yes=8, k_no=4, alpha=4)
        optimum = dp_optimal(reduction.instance)
        assert optimum.cost >= lemma8_style_lower_bound(reduction, 4)

    def test_monotone_in_clique_bound(self):
        graph = turan_graph(8, 2)
        reduction = clique_to_qon(graph, k_yes=8, k_no=2, alpha=4)
        loose = lemma8_style_lower_bound(reduction, 5)
        tight = lemma8_style_lower_bound(reduction, 2)
        assert tight >= loose

    def test_looser_bound_still_sound(self):
        graph = turan_graph(8, 2)  # true omega = 2
        reduction = clique_to_qon(graph, k_yes=8, k_no=2, alpha=4)
        optimum = dp_optimal(reduction.instance)
        for claimed in (2, 3, 4):
            assert optimum.cost >= lemma8_style_lower_bound(reduction, claimed)

    def test_gap_pair_floor(self):
        pair = qon_gap_pair(8, 6, 2, alpha=4)
        optimum = dp_optimal(pair.no_reduction.instance)
        assert optimum.cost >= lemma8_style_lower_bound(pair.no_reduction, 2)
