"""Tests for the page-level hybrid hash simulator."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.hashsim import (
    model_join_cost,
    simulate_decomposition,
    simulate_hash_join,
)
from repro.graphs.graph import Graph
from repro.hashjoin.cost_model import HashJoinCostModel
from repro.hashjoin.instance import QOHInstance
from repro.hashjoin.pipeline import PipelineDecomposition
from repro.utils.validation import ValidationError


class TestSingleJoin:
    def test_resident_inner_costs_one_scan(self):
        result = simulate_hash_join(128, 1000, 128)
        assert result.total_io == 128
        assert result.spill_writes == 0

    def test_fully_starved(self):
        result = simulate_hash_join(1, 100, 100)
        # 100 build reads + ~99 spilled inner (w+r) + ~99 outer (w+r).
        assert result.build_reads == 100
        assert result.spill_writes == result.spill_reads
        assert result.total_io > 300

    def test_monotone_decreasing_in_memory(self):
        costs = [
            simulate_hash_join(m, 500, 100).total_io
            for m in (10, 40, 70, 100)
        ]
        assert costs == sorted(costs, reverse=True)

    def test_linear_in_memory(self):
        a = simulate_hash_join(20, 500, 100).total_io
        b = simulate_hash_join(40, 500, 100).total_io
        c = simulate_hash_join(60, 500, 100).total_io
        assert a - b == b - c  # equal steps: exactly linear

    def test_validation(self):
        with pytest.raises(ValidationError):
            simulate_hash_join(0, 10, 10)
        with pytest.raises(ValidationError):
            simulate_hash_join(5, 10, 0)

    def test_shape_matches_model(self):
        """Same endpoints and monotonicity as the abstract h (the
        constants differ by the documented factor-2 slope)."""
        model = HashJoinCostModel()
        inner, outer = 100, 400
        floor = model.hjmin(inner)
        sim_full = simulate_hash_join(inner, outer, inner).total_io
        mod_full = model_join_cost(model, inner, outer, inner)
        assert sim_full == mod_full == inner
        sim_floor = simulate_hash_join(floor, outer, inner).total_io
        mod_floor = model_join_cost(model, floor, outer, inner)
        # Both are Theta(outer + inner) at the floor.
        assert (outer + inner) / 2 <= mod_floor <= 3 * (outer + inner)
        assert (outer + inner) / 2 <= sim_floor <= 3 * (outer + inner)


class TestDecompositionSimulation:
    @pytest.fixture
    def instance(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        return QOHInstance(
            graph,
            [64, 32, 128, 16],
            {(0, 1): Fraction(1, 8), (1, 2): Fraction(1, 16), (2, 3): Fraction(1, 4)},
            memory=64,
        )

    def test_pipeline_breakdown(self, instance):
        decomposition = PipelineDecomposition.fully_materialized(3)
        simulated = simulate_decomposition(instance, (0, 1, 2, 3), decomposition)
        assert len(simulated) == 3
        intermediates = instance.intermediate_sizes((0, 1, 2, 3))
        assert simulated[0].input_reads == intermediates[0]
        assert simulated[-1].output_writes == intermediates[3]

    def test_total_io_positive(self, instance):
        decomposition = PipelineDecomposition.single(3)
        simulated = simulate_decomposition(instance, (0, 1, 2, 3), decomposition)
        assert sum(p.total_io for p in simulated) > 0

    def test_tracks_model_ordering(self, instance):
        """The decomposition the model prefers is also mechanically
        cheaper (or tied) for this instance."""
        from repro.hashjoin.pipeline import decomposition_cost

        candidates = [
            PipelineDecomposition.single(3),
            PipelineDecomposition.fully_materialized(3),
            PipelineDecomposition.from_breaks(3, [2]),
        ]
        model_costs = []
        simulated_costs = []
        for decomposition in candidates:
            model_costs.append(
                decomposition_cost(instance, (0, 1, 2, 3), decomposition)
            )
            simulated = simulate_decomposition(
                instance, (0, 1, 2, 3), decomposition
            )
            simulated_costs.append(sum(p.total_io for p in simulated))
        model_best = model_costs.index(min(model_costs))
        assert simulated_costs[model_best] == min(simulated_costs)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=2_000),
)
def test_property_io_bounds(memory, outer, inner):
    """Simulated I/O is bounded by one scan below and by the
    everything-spills worst case above."""
    result = simulate_hash_join(memory, outer, inner)
    assert result.total_io >= inner
    assert result.total_io <= inner + 2 * (inner + outer)
