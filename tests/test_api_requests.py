"""Tests for the typed request layer (``repro.core.requests``).

Covers, per ISSUE requirements:

* exact JSON round-trips for ``OptimizeRequest`` / ``SweepSpec`` /
  ``ServiceReply`` — including the value/type/repr bit-identity of a
  decoded ``PlanResult`` on every substrate (int, Fraction and
  LogNumber costs; pipeline and star plans);
* schema validation errors with messages, not stack traces;
* stable content fingerprints (``no_cache`` excluded from identity);
* the deprecated kwarg shims on ``api.optimize`` / ``api.sweep``
  (warn once per process, re-armable for tests);
* ``api.capabilities()`` as plain JSON-safe data.
"""

from __future__ import annotations

import json
import warnings
from fractions import Fraction

import pytest

from repro import api
from repro.core.requests import (
    REPLY_SCHEMA,
    REQUEST_SCHEMA,
    decode_cost,
    decode_value,
    encode_cost,
    encode_value,
    result_from_dict,
    result_to_dict,
    validate_reply,
    validate_request,
)
from repro.core.results import PlanResult
from repro.hashjoin.instance import HashJoinCostModel, QOHInstance
from repro.joinopt.instance import Graph
from repro.starqo.instance import SQOCPInstance
from repro.utils.lognum import LogNumber
from repro.utils.validation import ValidationError


@pytest.fixture
def qon_instance():
    return api.generate("chain", 5, seed=1)


@pytest.fixture
def qoh_instance():
    graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
    return QOHInstance(
        graph,
        [64, 32, 128, 16],
        {(0, 1): Fraction(1, 8), (1, 2): Fraction(1, 16),
         (2, 3): Fraction(1, 4)},
        memory=64,
        model=HashJoinCostModel(psi=Fraction(1, 3), g_scale=2),
    )


@pytest.fixture
def sqocp_instance():
    return SQOCPInstance(
        num_satellites=2,
        sort_passes=4,
        page_size=8,
        tuples=[10_000, 3, 5_000],
        pages=[10_000, 1, 5_000],
        sort_costs=[40_000, 4, 20_000],
        selectivities=[Fraction(1, 10_000), Fraction(1, 5_000)],
        satellite_access=[1, 1],
        center_access=[1, 1],
    )


@pytest.fixture(autouse=True)
def rearm_deprecation_warnings():
    api._reset_deprecation_warnings()
    yield
    api._reset_deprecation_warnings()


def assert_bit_identical(left, right):
    """The service-cache contract: equal value, type AND repr."""
    assert left == right
    assert type(left) is type(right)
    assert repr(left) == repr(right)


# ---------------------------------------------------------------------
# Value / cost codecs
# ---------------------------------------------------------------------


class TestCodecs:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -7, 2 ** 200, 0.25, "beam",
        Fraction(3, 7), (1, 2, 3), [1, Fraction(1, 3), "x"],
        ("nested", (Fraction(-5, 9), None)),
    ])
    def test_value_round_trip_is_exact(self, value):
        wire = json.loads(json.dumps(encode_value(value)))
        assert_bit_identical(decode_value(wire), value)

    def test_unserializable_value_is_rejected(self):
        with pytest.raises(ValidationError, match="not\\s+JSON-serializable"):
            encode_value(object())

    @pytest.mark.parametrize("cost", [
        0, 123, 2 ** 400,
        Fraction(355, 113),
        LogNumber.from_log2(1234.5678),
        LogNumber.from_log2(float("-inf")),
        2.5,
    ])
    def test_cost_round_trip_is_exact(self, cost):
        wire = json.loads(json.dumps(encode_cost(cost)))
        assert_bit_identical(decode_cost(wire), cost)

    def test_bool_is_not_a_cost(self):
        with pytest.raises(ValidationError):
            encode_cost(True)


# ---------------------------------------------------------------------
# PlanResult round-trips per substrate
# ---------------------------------------------------------------------


class TestPlanResultRoundTrip:
    def check(self, result):
        wire = json.loads(json.dumps(result_to_dict(result)))
        restored = result_from_dict(wire)
        assert_bit_identical(restored.cost, result.cost)
        assert_bit_identical(restored.plan, result.plan)
        assert_bit_identical(restored, result)

    def test_qon_int_cost(self, qon_instance):
        self.check(api.optimize(qon_instance, "dp"))

    def test_qoh_fraction_cost_and_pipelines(self, qoh_instance):
        result = api.optimize(qoh_instance, "qoh-exhaustive")
        assert result.plan is not None
        self.check(result)

    def test_sqocp_star_plan(self, sqocp_instance):
        result = api.optimize(sqocp_instance, "sqocp-dp")
        assert result.plan is not None
        self.check(result)

    def test_type_tag_is_checked(self):
        with pytest.raises(ValidationError, match="plan_result"):
            result_from_dict({"type": "mystery"})


# ---------------------------------------------------------------------
# OptimizeRequest
# ---------------------------------------------------------------------


class TestOptimizeRequest:
    def test_json_round_trip(self, qon_instance):
        request = api.OptimizeRequest.build(
            qon_instance, "sampling", samples=50, rng=7,
        )
        restored = api.OptimizeRequest.from_json(request.to_json())
        assert restored.algorithm == "sampling"
        assert restored.params == request.params
        assert restored.kwargs() == {"rng": 7, "samples": 50}
        assert restored.to_json() == request.to_json()

    def test_round_trip_executes_identically(self, qon_instance):
        request = api.OptimizeRequest.build(qon_instance, "dp")
        restored = api.OptimizeRequest.from_json(request.to_json())
        assert_bit_identical(
            api.execute_request(restored), api.execute_request(request)
        )

    def test_fingerprint_is_content_addressed(self, qon_instance):
        request = api.OptimizeRequest.build(qon_instance, "dp")
        rebuilt = api.OptimizeRequest.from_json(request.to_json())
        assert api.request_fingerprint(rebuilt) == request.fingerprint()

    def test_no_cache_is_not_identity(self, qon_instance):
        plain = api.OptimizeRequest.build(qon_instance, "dp")
        bypass = api.OptimizeRequest.build(qon_instance, "dp", no_cache=True)
        assert plain.fingerprint() == bypass.fingerprint()

    def test_params_are_identity(self, qon_instance):
        narrow = api.OptimizeRequest.build(qon_instance, "sampling", samples=20)
        wide = api.OptimizeRequest.build(qon_instance, "sampling", samples=80)
        assert narrow.fingerprint() != wide.fingerprint()

    def test_wrong_schema_is_rejected(self, qon_instance):
        payload = api.OptimizeRequest.build(qon_instance).to_dict()
        payload["schema"] = "repro.request/99"
        with pytest.raises(ValidationError, match="schema"):
            validate_request(payload)

    def test_missing_field_is_rejected(self, qon_instance):
        payload = api.OptimizeRequest.build(qon_instance).to_dict()
        del payload["algorithm"]
        with pytest.raises(ValidationError, match="algorithm"):
            api.OptimizeRequest.from_dict(payload)

    def test_wrong_field_type_is_rejected(self, qon_instance):
        payload = api.OptimizeRequest.build(qon_instance).to_dict()
        payload["no_cache"] = "yes"
        with pytest.raises(ValidationError, match="no_cache"):
            validate_request(payload)


# ---------------------------------------------------------------------
# SweepSpec
# ---------------------------------------------------------------------


class TestSweepSpec:
    def make_spec(self, qon_instance):
        return api.SweepSpec.build(
            ["dp", "greedy"],
            [("q5", qon_instance)],
            params={("greedy", "q5"): {"rng": 3}},
            workers=1,
            timeout=30.0,
            retries=2,
            backoff=0.0,
        )

    def test_json_round_trip(self, qon_instance):
        spec = self.make_spec(qon_instance)
        restored = api.SweepSpec.from_json(spec.to_json())
        assert restored.optimizers == ("dp", "greedy")
        assert restored.kwargs_for("greedy", "q5") == {"rng": 3}
        assert restored.kwargs_for("dp", "q5") == {}
        assert restored.retries == 2
        assert restored.to_json() == spec.to_json()

    def test_fingerprint_covers_runner_settings(self, qon_instance):
        spec = self.make_spec(qon_instance)
        restored = api.SweepSpec.from_json(spec.to_json())
        assert restored.fingerprint() == spec.fingerprint()
        retuned = api.SweepSpec.build(
            ["dp", "greedy"], [("q5", qon_instance)],
            params={("greedy", "q5"): {"rng": 3}},
            workers=1, timeout=30.0, retries=3, backoff=0.0,
        )
        assert retuned.fingerprint() != spec.fingerprint()

    def test_execute_request_matches_direct_sweep(self, qon_instance):
        spec = api.SweepSpec.build(["dp"], [("q5", qon_instance)], workers=1)
        served = api.execute_request(
            api.SweepSpec.from_json(spec.to_json())
        )
        direct = api.sweep(
            {"optimizers": ["dp"], "instances": [("q5", qon_instance)]},
            workers=1,
        )
        assert [o.result.cost for o in served] == [
            o.result.cost for o in direct
        ]

    def test_missing_runner_field_is_rejected(self, qon_instance):
        payload = self.make_spec(qon_instance).to_dict()
        del payload["workers"]
        with pytest.raises(ValidationError, match="workers"):
            validate_request(payload)


# ---------------------------------------------------------------------
# ServiceReply
# ---------------------------------------------------------------------


class TestServiceReply:
    def test_plan_result_reply_round_trip(self, qon_instance):
        result = api.optimize(qon_instance, "dp")
        reply = api.ServiceReply(
            op="optimize", result=result, fingerprint="abc",
            wall_time_s=0.25, counters=(("cache.hits", 3),),
        )
        restored = api.ServiceReply.from_json(reply.to_json())
        assert restored.ok
        assert_bit_identical(restored.result, result)
        assert restored.counters == (("cache.hits", 3),)

    def test_rejected_reply_round_trip(self):
        reply = api.ServiceReply(
            op="optimize", status="rejected", error="queue full",
            retry_after=0.05,
        )
        restored = api.ServiceReply.from_json(reply.to_json())
        assert restored.rejected
        assert restored.retry_after == 0.05
        assert restored.result is None

    def test_bad_status_is_rejected(self):
        payload = api.ServiceReply(op="optimize").to_dict()
        payload["status"] = "maybe"
        with pytest.raises(ValidationError, match="status"):
            validate_reply(payload)

    def test_non_ok_reply_cannot_carry_a_result(self, qon_instance):
        payload = api.ServiceReply(
            op="optimize", result=api.optimize(qon_instance, "dp"),
        ).to_dict()
        payload["status"] = "error"
        payload["error"] = "boom"
        with pytest.raises(ValidationError, match="non-ok"):
            validate_reply(payload)


# ---------------------------------------------------------------------
# Deprecated kwarg shims
# ---------------------------------------------------------------------


class TestDeprecationShims:
    def test_optimize_kwargs_warn_once(self, qon_instance):
        with pytest.warns(DeprecationWarning, match="OptimizeRequest"):
            api.optimize(qon_instance, "sampling", samples=20, rng=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            api.optimize(qon_instance, "sampling", samples=20, rng=1)

    def test_optimize_without_kwargs_does_not_warn(self, qon_instance):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            api.optimize(qon_instance, "dp")
            api.optimize(api.OptimizeRequest.build(qon_instance, "dp"))

    def test_reset_rearms_the_warning(self, qon_instance):
        with pytest.warns(DeprecationWarning):
            api.optimize(qon_instance, "sampling", samples=20, rng=1)
        api._reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            api.optimize(qon_instance, "sampling", samples=20, rng=1)

    def test_sweep_runner_kwargs_warn_once(self, qon_instance):
        grid = {"optimizers": ["dp"], "instances": [("q5", qon_instance)]}
        with pytest.warns(DeprecationWarning, match="SweepSpec"):
            api.sweep(grid, workers=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            api.sweep(grid, workers=1)

    def test_spec_refuses_duplicate_runner_kwargs(self, qon_instance):
        spec = api.SweepSpec.build(["dp"], [("q5", qon_instance)])
        with pytest.raises(ValidationError, match="SweepSpec itself"):
            api.sweep(spec, workers=2)

    def test_request_shim_refuses_extra_arguments(self, qon_instance):
        request = api.OptimizeRequest.build(qon_instance, "dp")
        with pytest.raises(ValidationError, match="no extra arguments"):
            api.optimize(request, "greedy")


# ---------------------------------------------------------------------
# Capabilities
# ---------------------------------------------------------------------


class TestCapabilities:
    def test_payload_is_json_safe_and_complete(self):
        payload = api.capabilities()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["api_version"] == api.API_VERSION
        assert REQUEST_SCHEMA in payload["rpc_schemas"]
        assert REPLY_SCHEMA in payload["rpc_schemas"]
        assert "repro.rpc/1" in payload["rpc_schemas"]
        assert payload["request_types"] == [
            "optimize_request", "sweep_spec",
        ]
        assert "dp" in payload["optimizers"]
        assert "qoh-exhaustive" in payload["optimizers"]
        assert set(payload["families"]) == set(api.FAMILIES)
