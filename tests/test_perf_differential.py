"""Differential suite: the perf kernels are bit-identical to the
reference cost path.

The incremental evaluators take algebraic shortcuts (factor-multiset
deltas, set-keyed memos), so the one property that matters is that no
shortcut is observable: over random instances, random move sequences
and every cache mode, the values — and for exact arithmetic the
``int``-vs-``Fraction`` result *types* — match
:func:`~repro.joinopt.cost.total_cost` /
:func:`~repro.hashjoin.optimizer.best_decomposition` exactly.

Hypothesis drives instance and move generation; the repro RNG wrappers
keep every draw reproducible from the reported seed values.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.hashjoin.instance import QOHInstance
from repro.hashjoin.optimizer import best_decomposition
from repro.joinopt.cost import (
    intermediate_sizes,
    join_costs,
    partial_costs,
    total_cost,
)
from repro.perf.incremental import PrefixEvaluator, sample_moves
from repro.perf.qoh import QOHEvaluator
from repro.runtime.costcache import CostCache, use_cache
from repro.utils.rng import make_rng
from repro.workloads.queries import random_query


def _shuffled(n, rng):
    order = list(range(n))
    rng.shuffle(order)
    return tuple(order)


@st.composite
def qon_cases(draw):
    """``(instance, base, moves)`` — a random instance and move batch."""
    n = draw(st.integers(min_value=2, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    instance = random_query(n, rng=seed)
    rng = make_rng(seed + 1)
    base = _shuffled(n, rng)
    move_count = draw(st.integers(min_value=1, max_value=25))
    return instance, base, sample_moves(n, rng, move_count)


@st.composite
def qoh_instances(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    extra = (
        draw(st.lists(st.sampled_from(all_pairs), unique=True))
        if all_pairs
        else []
    )
    edges = sorted(set(extra) | {(i, i + 1) for i in range(n - 1)})
    graph = Graph(n, edges)
    sizes = [
        draw(st.integers(min_value=4, max_value=400)) for _ in range(n)
    ]
    selectivities = {
        edge: Fraction(1, draw(st.integers(min_value=1, max_value=20)))
        for edge in graph.edges
    }
    memory = draw(st.integers(min_value=8, max_value=500))
    return QOHInstance(graph, sizes, selectivities, memory=memory)


def _assert_identical(kernel_value, reference_value):
    assert kernel_value == reference_value
    assert type(kernel_value) is type(reference_value)
    assert repr(kernel_value) == repr(reference_value)


class TestQONExactIdentity:
    @settings(max_examples=60, deadline=None)
    @given(qon_cases())
    def test_neighbor_costs_bit_identical(self, case):
        """Every delta-evaluated neighbor equals a fresh total_cost."""
        instance, base, moves = case
        with use_cache(None):
            evaluator = PrefixEvaluator(instance)
            _assert_identical(
                evaluator.rebase(base), total_cost(instance, base)
            )
            for move, key, cost in evaluator.evaluate_neighbors(base, moves):
                assert key == move.apply(base)
                _assert_identical(cost, total_cost(instance, key))

    @settings(max_examples=40, deadline=None)
    @given(qon_cases())
    def test_advance_chain_bit_identical(self, case):
        """Accepted-move state updates track the reference exactly."""
        instance, base, moves = case
        with use_cache(None):
            evaluator = PrefixEvaluator(instance)
            evaluator.rebase(base)
            current = base
            for move in moves:
                current = move.apply(current)
                evaluator.advance(move)
                assert evaluator.base == current
                _assert_identical(
                    evaluator.total, total_cost(instance, current)
                )

    @settings(max_examples=40, deadline=None)
    @given(qon_cases(), st.integers(min_value=0, max_value=10_000))
    def test_arbitrary_sequence_replay(self, case, seed):
        """evaluate() (LCP replay) matches on far-away permutations."""
        instance, base, _ = case
        rng = make_rng(seed)
        with use_cache(None):
            evaluator = PrefixEvaluator(instance)
            evaluator.rebase(base)
            for _ in range(5):
                sequence = _shuffled(instance.num_relations, rng)
                _assert_identical(
                    evaluator.evaluate(sequence),
                    total_cost(instance, sequence),
                )


class TestQONLogDomainIdentity:
    @settings(max_examples=40, deadline=None)
    @given(qon_cases())
    def test_lognumber_neighbors_bit_identical(self, case):
        """Inexact kernels replay in reference order: float-exact match."""
        exact_instance, base, moves = case
        instance = exact_instance.to_log_domain()
        with use_cache(None):
            evaluator = PrefixEvaluator(instance)
            assert not evaluator.kernel.exact
            rebased = evaluator.rebase(base)
            assert rebased.log2 == total_cost(instance, base).log2
            for move, key, cost in evaluator.evaluate_neighbors(base, moves):
                assert cost.log2 == total_cost(instance, key).log2

    @settings(max_examples=25, deadline=None)
    @given(qon_cases())
    def test_lognumber_advance_chain(self, case):
        exact_instance, base, moves = case
        instance = exact_instance.to_log_domain()
        with use_cache(None):
            evaluator = PrefixEvaluator(instance)
            evaluator.rebase(base)
            current = base
            for move in moves:
                current = move.apply(current)
                evaluator.advance(move)
                assert evaluator.total.log2 == total_cost(
                    instance, current
                ).log2


class TestCacheModes:
    """Identity and exact counter parity in all three cache modes."""

    @settings(max_examples=30, deadline=None)
    @given(qon_cases(), st.sampled_from(["none", "unbounded", "passthrough"]))
    def test_identity_in_every_mode(self, case, mode):
        instance, base, moves = case
        reference = {}
        with use_cache(None):
            reference[base] = total_cost(instance, base)
            for move in moves:
                key = move.apply(base)
                reference[key] = total_cost(instance, key)
        cache = {
            "none": None,
            "unbounded": CostCache(),
            "passthrough": CostCache(maxsize=0),
        }[mode]
        with use_cache(cache):
            evaluator = PrefixEvaluator(instance)
            _assert_identical(evaluator.rebase(base), reference[base])
            for move, key, cost in evaluator.evaluate_neighbors(base, moves):
                _assert_identical(cost, reference[key])

    @settings(max_examples=30, deadline=None)
    @given(qon_cases())
    def test_kernel_and_reference_share_cache_entries(self, case):
        """Same kind/key: whoever computes first, the other one hits."""
        instance, base, moves = case
        cache = CostCache()
        with use_cache(cache):
            seeded = total_cost(instance, base)
            evaluator = PrefixEvaluator(instance)
            assert cache.misses == 1
            _assert_identical(evaluator.rebase(base), seeded)
            assert cache.hits == 1  # rebase hit the reference's entry
            for move, key, cost in evaluator.evaluate_neighbors(base, moves):
                _assert_identical(cost, total_cost(instance, key))
        # The reference re-evaluations were all served from kernel
        # entries: one miss per distinct sequence, total.
        distinct = {base} | {move.apply(base) for move in moves}
        assert cache.misses == len(distinct)

    @settings(max_examples=20, deadline=None)
    @given(qon_cases())
    def test_advance_produces_no_cache_traffic(self, case):
        """Accepted moves are pure state updates, like the reference."""
        instance, base, moves = case
        cache = CostCache()
        with use_cache(cache):
            evaluator = PrefixEvaluator(instance)
            evaluator.rebase(base)
            stats_before = cache.stats()
            for move in moves:
                evaluator.advance(move)
            stats_after = cache.stats()
        assert stats_after.hits == stats_before.hits
        assert stats_after.misses == stats_before.misses


class TestPartialCosts:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_single_pass_matches_components(self, n, seed):
        """partial_costs == (join_costs, intermediate_sizes), bit for bit."""
        instance = random_query(n, rng=seed)
        rng = make_rng(seed + 1)
        for _ in range(4):
            sequence = _shuffled(n, rng)
            costs, sizes = partial_costs(instance, sequence)
            expected_costs = join_costs(instance, sequence)
            expected_sizes = intermediate_sizes(instance, sequence)
            assert costs == expected_costs
            assert sizes == expected_sizes
            for a, b in zip(costs, expected_costs):
                assert type(a) is type(b)
            for a, b in zip(sizes, expected_sizes):
                assert type(a) is type(b)
            total = total_cost(instance, sequence)
            assert sum(costs[1:], costs[0] * 0) + costs[0] == total or (
                sum(costs) == total
            )


class TestQOHPlanIdentity:
    @settings(max_examples=40, deadline=None)
    @given(qoh_instances(), st.integers(min_value=0, max_value=10_000))
    def test_best_plan_matches_reference_dp(self, instance, seed):
        """Cost, breaks and ``explored`` all equal the reference DP."""
        rng = make_rng(seed)
        n = instance.num_relations
        with use_cache(None):
            evaluator = QOHEvaluator(instance)
            for _ in range(6):
                sequence = _shuffled(n, rng)
                expected = best_decomposition(instance, sequence)
                actual = evaluator.best_plan(sequence)
                if expected is None:
                    assert actual is None
                    continue
                assert actual is not None
                assert actual.cost == expected.cost
                assert type(actual.cost) is type(expected.cost)
                assert actual.sequence == expected.sequence
                assert actual.explored == expected.explored
                assert actual.optimizer == expected.optimizer
                assert actual.plan == expected.plan

    @settings(max_examples=20, deadline=None)
    @given(qoh_instances(), st.integers(min_value=0, max_value=10_000))
    def test_best_plan_cache_parity(self, instance, seed):
        """Kernel and reference share ("qoh-plan", sequence) entries."""
        from repro.hashjoin.search import cached_best_decomposition

        rng = make_rng(seed)
        sequence = _shuffled(instance.num_relations, rng)
        cache = CostCache()
        with use_cache(cache):
            reference = cached_best_decomposition(instance, sequence)
            assert cache.misses == 1
            evaluator = QOHEvaluator(instance)
            actual = evaluator.best_plan(sequence)
            assert cache.hits == 1
            assert cache.misses == 1
        if reference is None:
            assert actual is None
        else:
            assert actual is not None
            assert actual.cost == reference.cost
