"""Tests for the certified 3SAT(13) gap families (Theorem 1 stand-in)."""

from fractions import Fraction

import pytest

from repro.sat.gapfamilies import GapFormula, gap_family, no_instance, yes_instance
from repro.sat.maxsat import max_satisfiable_clauses
from repro.sat.solver import is_satisfiable
from repro.utils.validation import ValidationError


class TestYesInstances:
    def test_witness_satisfies(self):
        gap = yes_instance(6, 12, rng=0)
        assert gap.satisfiable
        assert gap.formula.is_satisfied_by(gap.witness)

    def test_occurrence_bound(self):
        gap = yes_instance(8, 16, rng=1)
        assert gap.formula.occurrences_bounded_by(13)

    def test_density_capacity_enforced(self):
        with pytest.raises(ValidationError):
            yes_instance(3, 14)

    def test_theta_zero(self):
        assert yes_instance(5, 10, rng=2).theta == 0

    def test_max_sat_bound_property(self):
        gap = yes_instance(5, 10, rng=3)
        assert gap.max_sat_fraction_bound == 1


class TestNoInstances:
    def test_single_core(self):
        gap = no_instance(1)
        assert not gap.satisfiable
        assert gap.theta == Fraction(1, 8)
        assert not is_satisfiable(gap.formula)

    def test_theta_certified_exactly(self):
        """The exact MAX-SAT matches the promised bound for small sizes."""
        for cores in (1, 2):
            gap = no_instance(cores)
            best, _ = max_satisfiable_clauses(gap.formula)
            promised = gap.formula.num_clauses - cores
            assert best == promised

    def test_filler_dilutes_theta(self):
        gap = no_instance(2, filler_clauses=16, rng=4)
        assert gap.theta == Fraction(2, 32)
        assert not is_satisfiable(gap.formula)

    def test_occurrence_bound_with_filler(self):
        gap = no_instance(2, filler_clauses=10, rng=5)
        assert gap.formula.occurrences_bounded_by(13)

    def test_witness_rejected_on_no(self):
        with pytest.raises(ValidationError):
            GapFormula(
                formula=no_instance(1).formula,
                satisfiable=False,
                theta=Fraction(0),
            )


class TestGapFamily:
    def test_yes_side(self):
        gap = gap_family(9, satisfiable=True, rng=6)
        assert gap.satisfiable
        assert gap.formula.is_satisfied_by(gap.witness)

    def test_no_side_theta(self):
        gap = gap_family(9, satisfiable=False, rng=7)
        assert not gap.satisfiable
        assert gap.theta >= Fraction(1, 8)

    def test_no_side_diluted(self):
        gap = gap_family(9, satisfiable=False, theta=Fraction(1, 16), rng=8)
        assert Fraction(1, 20) <= gap.theta <= Fraction(1, 8)

    def test_bad_witness_rejected(self):
        gap = yes_instance(5, 10, rng=9)
        wrong = {v: not value for v, value in gap.witness.items()}
        if not gap.formula.is_satisfied_by(wrong):
            with pytest.raises(ValidationError):
                GapFormula(
                    formula=gap.formula,
                    satisfiable=True,
                    theta=Fraction(0),
                    witness=wrong,
                )
