"""Unit tests for the compiled perf kernels and their lifetimes.

Covers, per ISSUE requirements:

* the compiled views expose exactly the values the instance accessors
  return (sizes, selectivities, access costs, adjacency bitmasks);
* kernel memoization: one compilation per live instance, and the memo
  never pins an instance — dropping every evaluator makes the instance
  collectable (the WeakValueDictionary entry clears itself);
* :meth:`CostCache.token` memoizes fingerprints per live instance,
  drops the slot when the instance dies, and falls back to
  per-call fingerprints for non-weakrefable objects;
* ``sample_moves`` never emits a no-op move (the ``Reinsert(i, i)``
  bug that used to inflate ``explored``), with pinned ``explored``
  counts for the corrected metaheuristic loops.
"""

import gc
import weakref
from fractions import Fraction

import pytest

from repro.joinopt.cost import total_cost
from repro.joinopt.optimizers import (
    genetic_algorithm,
    iterative_improvement,
    random_sampling,
    simulated_annealing,
)
from repro.perf.incremental import (
    AdjacentSwap,
    PrefixEvaluator,
    Reinsert,
    sample_moves,
)
from repro.perf.kernels import (
    CompiledQOH,
    CompiledQON,
    compile_qoh,
    compile_qon,
    is_exact_value,
    iter_bits,
)
from repro.perf.qoh import QOHEvaluator
from repro.runtime.costcache import CostCache
from repro.utils.rng import make_rng
from repro.workloads.gaps import qoh_gap_pair
from repro.workloads.queries import random_query


class TestIterBits:
    def test_ascending_indices(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b1)) == [0]
        assert list(iter_bits(0b101101)) == [0, 2, 3, 5]

    def test_roundtrip(self):
        mask = 0b1101010011
        assert sum(1 << b for b in iter_bits(mask)) == mask


class TestIsExactValue:
    def test_int_and_fraction_are_exact(self):
        assert is_exact_value(3)
        assert is_exact_value(Fraction(1, 7))

    def test_float_is_not(self):
        assert not is_exact_value(0.5)
        assert not is_exact_value(object())


class TestCompiledQON:
    def test_tables_match_instance_accessors(self):
        instance = random_query(6, rng=0)
        kernel = compile_qon(instance)
        n = instance.num_relations
        assert kernel.n == n
        assert kernel.full_mask == (1 << n) - 1
        for v in range(n):
            assert kernel.sizes[v] == instance.size(v)
        for u in range(n):
            for v in range(n):
                if u == v:
                    assert kernel.sel[u][v] == 1
                    continue
                assert kernel.sel[u][v] == instance.selectivity(u, v)
                assert kernel.access[u][v] == instance.access_cost(u, v)

    def test_adjacency_is_nonunit_selectivity_edges(self):
        instance = random_query(7, rng=1)
        kernel = compile_qon(instance)
        graph = instance.graph
        for u in range(kernel.n):
            expected = 0
            for v in range(kernel.n):
                if v == u:
                    continue
                if graph.has_edge(u, v) and instance.selectivity(u, v) != 1:
                    expected |= 1 << v
            assert kernel.adj[u] == expected

    def test_exact_flag(self):
        instance = random_query(5, rng=2)
        assert compile_qon(instance).exact
        assert not compile_qon(instance.to_log_domain()).exact

    def test_check_permutation_contract(self):
        instance = random_query(5, rng=3)
        kernel = compile_qon(instance)
        kernel.check_permutation((4, 2, 0, 1, 3))
        for bad in [(0, 1, 2, 3), (0, 0, 1, 2, 3), (0, 1, 2, 3, 5)]:
            with pytest.raises(Exception) as kernel_error:
                kernel.check_permutation(bad)
            with pytest.raises(Exception) as reference_error:
                total_cost(instance, bad)
            assert str(kernel_error.value) == str(reference_error.value)


class TestCompiledQOH:
    @staticmethod
    def _instance():
        return qoh_gap_pair(6, Fraction(1, 2), alpha=4**6).no_reduction.instance

    def test_tables_and_feasibility(self):
        instance = self._instance()
        kernel = compile_qoh(instance)
        n = instance.num_relations
        for r in range(n):
            assert kernel.sizes[r] == instance.size(r)
            assert kernel.hjmin[r] == instance.hjmin(r)
            feasible = bool(kernel.feasible_mask >> r & 1)
            assert feasible == (instance.hjmin(r) <= instance.memory)
        assert kernel.memory == instance.memory

    def test_extend_size_equals_prefix_product(self):
        instance = self._instance()
        kernel = compile_qoh(instance)
        rng = make_rng(0)
        sequence = list(range(instance.num_relations))
        rng.shuffle(sequence)
        size = Fraction(kernel.sizes[sequence[0]])
        mask = 1 << sequence[0]
        for position, vertex in enumerate(sequence[1:], start=1):
            size = kernel.extend_size(size, mask, vertex)
            mask |= 1 << vertex
            expected = Fraction(1)
            prefix = sequence[: position + 1]
            for r in prefix:
                expected *= kernel.sizes[r]
            for i, u in enumerate(prefix):
                for v in prefix[i + 1:]:
                    if instance.graph.has_edge(u, v):
                        expected *= instance.selectivity(u, v)
            assert size == expected


class TestKernelMemoization:
    def test_one_compilation_per_live_instance(self):
        instance = random_query(5, rng=4)
        assert compile_qon(instance) is compile_qon(instance)
        kernel = compile_qon(instance)
        assert compile_qon(kernel) is kernel

    def test_qoh_memoized_and_idempotent(self):
        instance = TestCompiledQOH._instance()
        kernel = compile_qoh(instance)
        assert compile_qoh(instance) is kernel
        assert compile_qoh(kernel) is kernel

    def test_memo_does_not_pin_the_instance(self):
        instance = random_query(5, rng=5)
        evaluator = PrefixEvaluator(instance)
        finalized = weakref.ref(instance)
        del instance
        gc.collect()
        assert finalized() is not None  # evaluator keeps the kernel alive
        del evaluator
        gc.collect()
        assert finalized() is None

    def test_qoh_memo_does_not_pin_the_instance(self):
        instance = TestCompiledQOH._instance()
        evaluator = QOHEvaluator(instance)
        finalized = weakref.ref(instance)
        del instance, evaluator
        gc.collect()
        assert finalized() is None


class _OpaqueInstance:
    """A QON-shaped view without a ``__weakref__`` slot."""

    __slots__ = ("_inner",)

    def __init__(self, inner):
        self._inner = inner

    @property
    def graph(self):
        return self._inner.graph

    def size(self, relation):
        return self._inner.size(relation)

    def selectivity(self, i, j):
        return self._inner.selectivity(i, j)

    def access_cost(self, i, j):
        return self._inner.access_cost(i, j)


class TestCostCacheTokens:
    def test_token_memoized_per_live_instance(self):
        cache = CostCache()
        instance = random_query(5, rng=6)
        first = cache.token(instance)
        assert cache.token(instance) == first
        assert len(cache._tokens) == 1

    def test_token_slot_cleared_when_instance_dies(self):
        cache = CostCache()
        instance = random_query(5, rng=7)
        cache.token(instance)
        assert len(cache._tokens) == 1
        del instance
        gc.collect()
        assert cache._tokens == {}

    def test_non_weakrefable_instances_fall_back(self):
        cache = CostCache()
        inner = random_query(5, rng=8)
        opaque = _OpaqueInstance(inner)
        with pytest.raises(TypeError):
            weakref.ref(opaque)
        token = cache.token(opaque)
        assert token == cache.token(opaque)  # deterministic per call
        # Nothing memoized: no slot to pin or to alias on id reuse.
        assert all(
            entry[0]() is not opaque for entry in cache._tokens.values()
        )

    def test_instance_slots_accept_weakrefs(self):
        qon = random_query(4, rng=9)
        qoh = TestCompiledQOH._instance()
        assert weakref.ref(qon)() is qon
        assert weakref.ref(qoh)() is qoh


class TestSampleMoves:
    def test_no_noop_moves(self):
        rng = make_rng(0)
        for n in (2, 3, 5, 9):
            base = tuple(range(n))
            for move in sample_moves(n, rng, 500):
                if isinstance(move, Reinsert):
                    assert move.source != move.target
                else:
                    assert isinstance(move, AdjacentSwap)
                    assert 0 <= move.index < n - 1
                assert move.apply(base) != base

    def test_apply_semantics(self):
        base = (0, 1, 2, 3, 4)
        assert AdjacentSwap(1).apply(base) == (0, 2, 1, 3, 4)
        assert Reinsert(3, 0).apply(base) == (3, 0, 1, 2, 4)
        assert Reinsert(0, 3).apply(base) == (1, 2, 3, 0, 4)

    def test_requires_two_relations(self):
        with pytest.raises(Exception):
            sample_moves(1, make_rng(0), 1)


class TestExploredCountsPinned:
    """The no-op-move fix changes ``explored``; pin the corrected counts.

    ``Reinsert(i, i)`` candidates used to be evaluated (and counted)
    even though they are the identity.  With the redraw in
    ``sample_moves``, every counted candidate is a genuine neighbor —
    these golden counts hold as long as the draw pattern is stable.
    """

    @staticmethod
    def _instance():
        return random_query(7, rng=42)

    def test_iterative_improvement(self):
        result = iterative_improvement(
            self._instance(), restarts=3, neighborhood_samples=10, rng=0
        )
        assert result.explored == 124

    def test_simulated_annealing(self):
        result = simulated_annealing(
            self._instance(), steps_per_temperature=5, rng=0
        )
        assert result.explored == 566

    def test_random_sampling(self):
        result = random_sampling(self._instance(), samples=25, rng=0)
        assert result.explored == 25

    def test_every_counted_candidate_is_a_real_neighbor(self):
        instance = self._instance()
        evaluator = PrefixEvaluator(instance)
        base = tuple(range(instance.num_relations))
        evaluator.rebase(base)
        moves = sample_moves(instance.num_relations, make_rng(3), 200)
        for move, key, cost in evaluator.evaluate_neighbors(base, moves):
            assert key != base
            assert cost == total_cost(instance, key)


class TestQOHEvaluatorCounters:
    def test_fragments_are_reused_across_sequences(self):
        instance = TestCompiledQOH._instance()
        evaluator = QOHEvaluator(instance)
        n = instance.num_relations
        base = tuple(range(n))
        evaluator.best_plan(base)
        assert evaluator.plans_evaluated == 1
        first_computed = evaluator.fragments_computed
        assert first_computed > 0
        # A neighbor shares every fragment before the touched window.
        evaluator.best_plan(AdjacentSwap(n - 2).apply(base))
        assert evaluator.plans_evaluated == 2
        assert evaluator.fragments_reused > 0
        assert evaluator.fragments_computed < 2 * first_computed
