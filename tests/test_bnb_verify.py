"""Tests for the bounded exact optimizer and the verification module."""

import pytest

from repro.core.reductions.clique_to_qon import clique_to_qon
from repro.core.reductions.sat_to_clique import sat_to_clique
from repro.core.verify import (
    VerificationResult,
    verify_clique_reduction,
    verify_fn_reduction,
    verify_gap_formula,
)
from repro.graphs.generators import complete_graph
from repro.joinopt.optimizers import dp_optimal, exhaustive_optimal
from repro.joinopt.optimizers.branch_and_bound import branch_and_bound
from repro.sat.gapfamilies import no_instance, yes_instance
from repro.utils.validation import ValidationError
from repro.workloads.gaps import qon_gap_pair, turan_graph
from repro.workloads.queries import chain_query, clique_query, random_query


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_dp(self, seed):
        instance = random_query(6, rng=seed)
        assert branch_and_bound(instance).cost == dp_optimal(instance).cost

    def test_agrees_on_chain(self):
        instance = chain_query(7, rng=9)
        assert branch_and_bound(instance).cost == dp_optimal(instance).cost

    def test_agrees_on_clique(self):
        instance = clique_query(7, rng=10)
        assert branch_and_bound(instance).cost == dp_optimal(instance).cost

    def test_explores_fewer_nodes_than_plain(self):
        instance = random_query(8, rng=11)
        plain = exhaustive_optimal(instance)
        bounded = branch_and_bound(instance)
        assert bounded.cost == plain.cost
        assert bounded.explored < plain.explored

    def test_gap_instance(self):
        pair = qon_gap_pair(8, 6, 2, alpha=4)
        bounded = branch_and_bound(pair.no_reduction.instance)
        exact = dp_optimal(pair.no_reduction.instance)
        assert bounded.cost == exact.cost

    def test_single_relation(self):
        from repro.graphs.graph import Graph
        from repro.joinopt.instance import QONInstance

        instance = QONInstance(Graph(1, []), [3], {})
        assert branch_and_bound(instance).cost == 0

    def test_guard(self):
        instance = chain_query(14, rng=12)
        with pytest.raises(ValidationError):
            branch_and_bound(instance)


class TestVerificationResult:
    def test_render_and_failures(self):
        result = VerificationResult()
        result.record("alpha", True)
        result.record("beta", False)
        assert not result.ok
        assert result.failures() == ["beta"]
        assert "[PASS] alpha" in result.render()
        assert "[FAIL] beta" in result.render()


class TestVerifyGapFormula:
    def test_yes_side(self):
        assert verify_gap_formula(yes_instance(5, 10, rng=0)).ok

    def test_no_side_exact(self):
        assert verify_gap_formula(no_instance(1)).ok

    def test_no_side_too_big_skips_maxsat(self):
        result = verify_gap_formula(no_instance(8), exact_limit=6)
        # Only the occurrence-bound check runs.
        assert len(result.checks) == 1
        assert result.ok


class TestVerifyCliqueReduction:
    def test_yes(self):
        gap = yes_instance(3, 6, rng=1)
        reduction = sat_to_clique(gap)
        witness = reduction.clique_from_assignment(gap.witness)
        result = verify_clique_reduction(reduction, True, witness)
        assert result.ok

    def test_no(self):
        reduction = sat_to_clique(no_instance(1))
        assert verify_clique_reduction(reduction, False).ok


class TestVerifyFN:
    def test_yes_strict_premise(self):
        reduction = clique_to_qon(complete_graph(40), k_yes=36, k_no=4, alpha=4)
        result = verify_fn_reduction(reduction, True, list(range(36)))
        assert result.ok
        assert "certificate cost <= K_{c,d}" in result.checks[0][0]

    def test_yes_small_premise_uses_slack(self):
        reduction = clique_to_qon(complete_graph(8), k_yes=6, k_no=2, alpha=4)
        result = verify_fn_reduction(reduction, True)
        assert result.ok
        assert "premise" in result.checks[0][0]

    def test_no_with_exact_dp(self):
        reduction = clique_to_qon(turan_graph(8, 2), k_yes=8, k_no=2, alpha=4)
        result = verify_fn_reduction(reduction, False)
        assert result.ok
        assert len(result.checks) == 2


class TestScorecard:
    def test_all_claims_pass(self):
        from repro.core.scorecard import build_scorecard

        scorecard = build_scorecard()
        assert scorecard.ok, scorecard.render()
        assert len(scorecard.entries) == 8

    def test_render(self):
        from repro.core.scorecard import Scorecard, ScorecardEntry

        scorecard = Scorecard(
            entries=[
                ScorecardEntry("good", True, 0.1),
                ScorecardEntry("bad", False, 0.2, detail="boom"),
            ]
        )
        text = scorecard.render()
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text
        assert "boom" in text
        assert "FAILURES PRESENT" in text

    def test_cli_scorecard(self, capsys):
        from repro.cli import main

        assert main(["scorecard"]) == 0
        assert "all claims reproduced" in capsys.readouterr().out
