"""Tests for the graph substrate."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.clique import (
    extend_to_maximal,
    greedy_clique,
    has_clique_of_size,
    is_clique,
    max_clique,
    max_clique_size,
)
from repro.graphs.generators import (
    complete_graph,
    connected_graph_with_edges,
    dense_min_degree_graph,
    gnp_random_graph,
    planted_clique_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    density,
    has_min_degree_deficit,
    lemma7_edge_bound,
    min_degree,
    verify_lemma7,
)
from repro.graphs.vertex_cover import (
    greedy_vertex_cover_2approx,
    independence_number,
    is_vertex_cover,
    min_vertex_cover,
    min_vertex_cover_size,
)
from repro.utils.validation import ValidationError


def graphs_strategy(max_n=8):
    """Hypothesis strategy for random small graphs."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_n))
        all_pairs = list(itertools.combinations(range(n), 2))
        chosen = draw(st.lists(st.sampled_from(all_pairs), unique=True)) if all_pairs else []
        return Graph(n, chosen)

    return build()


class TestGraph:
    def test_edge_dedup(self):
        graph = Graph(3, [(0, 1), (1, 0)])
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            Graph(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            Graph(2, [(0, 2)])

    def test_neighbors(self):
        graph = Graph(3, [(0, 1), (0, 2)])
        assert graph.neighbors(0) == {1, 2}
        assert graph.degree(1) == 1

    def test_complement_involution(self):
        graph = Graph(5, [(0, 1), (2, 3), (1, 4)])
        assert graph.complement().complement() == graph

    def test_complement_edge_count(self):
        graph = Graph(5, [(0, 1)])
        assert graph.complement().num_edges == 10 - 1

    def test_induced_subgraph(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub = graph.induced_subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2

    def test_induced_relabelling_follows_order(self):
        graph = Graph(3, [(0, 2)])
        sub = graph.induced_subgraph([2, 0])
        assert sub.has_edge(0, 1)

    def test_disjoint_union(self):
        a = Graph(2, [(0, 1)])
        b = Graph(2, [(0, 1)])
        union = a.disjoint_union(b)
        assert union.num_vertices == 4
        assert union.has_edge(2, 3)
        assert not union.has_edge(1, 2)

    def test_add_universal_vertices(self):
        graph = Graph(2, [])
        padded = graph.add_universal_vertices(2)
        assert padded.num_vertices == 4
        assert padded.has_edge(0, 2)
        assert padded.has_edge(2, 3)
        assert not padded.has_edge(0, 1)

    def test_edges_within(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.edges_within([0, 1, 2]) == 2

    def test_connectivity(self):
        assert Graph(3, [(0, 1), (1, 2)]).is_connected()
        assert not Graph(3, [(0, 1)]).is_connected()
        assert Graph(0, []).is_connected()

    def test_components(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert graph.connected_components() == [[0, 1], [2, 3]]


class TestClique:
    def test_k5(self):
        assert max_clique(complete_graph(5)) == [0, 1, 2, 3, 4]

    def test_empty_graph(self):
        assert max_clique(Graph(0, [])) == []

    def test_edgeless(self):
        assert max_clique_size(Graph(4, [])) == 1

    def test_triangle_plus_edge(self):
        graph = Graph(5, [(0, 1), (1, 2), (0, 2), (3, 4)])
        assert sorted(max_clique(graph)) == [0, 1, 2]

    def test_is_clique(self):
        graph = Graph(4, [(0, 1), (1, 2), (0, 2)])
        assert is_clique(graph, [0, 1, 2])
        assert not is_clique(graph, [0, 1, 3])

    def test_has_clique_of_size(self):
        graph = complete_graph(4)
        assert has_clique_of_size(graph, 4)
        assert not has_clique_of_size(graph, 5)
        assert has_clique_of_size(graph, 0)

    def test_greedy_is_clique(self):
        graph = gnp_random_graph(12, 0.6, rng=0)
        clique = greedy_clique(graph)
        assert is_clique(graph, clique)

    def test_extend_to_maximal(self):
        graph = complete_graph(5)
        assert extend_to_maximal(graph, [2]) == [0, 1, 2, 3, 4]

    def test_planted_clique_found(self):
        graph, planted = planted_clique_graph(12, 8, rng=1)
        assert is_clique(graph, planted)
        assert max_clique_size(graph) >= 8


class TestVertexCover:
    def test_path(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert min_vertex_cover_size(graph) == 2

    def test_triangle(self):
        graph = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert min_vertex_cover_size(graph) == 2

    def test_star(self):
        graph = Graph(5, [(0, i) for i in range(1, 5)])
        assert min_vertex_cover(graph) == [0]

    def test_empty(self):
        assert min_vertex_cover(Graph(3, [])) == []

    def test_cover_is_valid(self):
        graph = gnp_random_graph(9, 0.5, rng=2)
        assert is_vertex_cover(graph, min_vertex_cover(graph))

    def test_2approx_is_valid_cover(self):
        graph = gnp_random_graph(10, 0.4, rng=3)
        cover = greedy_vertex_cover_2approx(graph)
        assert is_vertex_cover(graph, cover)
        assert len(cover) <= 2 * min_vertex_cover_size(graph)

    def test_gallai(self):
        graph = gnp_random_graph(8, 0.5, rng=4)
        assert independence_number(graph) == graph.num_vertices - min_vertex_cover_size(graph)

    def test_clique_vc_duality(self):
        graph = gnp_random_graph(8, 0.5, rng=5)
        # omega(G) = alpha(G^c) = n - tau(G^c)
        assert max_clique_size(graph) == independence_number(graph.complement())


class TestProperties:
    def test_lemma7_on_random_graphs(self):
        for seed in range(5):
            assert verify_lemma7(gnp_random_graph(9, 0.6, rng=seed))

    def test_lemma7_tight_on_construction(self):
        # K_{n-1} plus a vertex adjacent to all but one: omega = n-1 and
        # the bound is met with equality minus the missing edges.
        graph = complete_graph(6)
        assert graph.num_edges == lemma7_edge_bound(6, 6)

    def test_min_degree(self):
        assert min_degree(complete_graph(4)) == 3
        assert min_degree(Graph(3, [])) == 0

    def test_degree_deficit(self):
        assert has_min_degree_deficit(complete_graph(5), 0)
        assert not has_min_degree_deficit(Graph(5, [(0, 1)]), 1)

    def test_density(self):
        assert density(complete_graph(4)) == 1.0
        assert density(Graph(1, [])) == 0.0


class TestGenerators:
    def test_dense_min_degree(self):
        graph = dense_min_degree_graph(20, deficit=13, rng=6)
        assert has_min_degree_deficit(graph, 13)

    def test_connected_with_edges_exact(self):
        graph = connected_graph_with_edges(10, 15, rng=7)
        assert graph.num_edges == 15
        assert graph.is_connected()

    def test_connected_minimum(self):
        graph = connected_graph_with_edges(6, 5, rng=8)
        assert graph.is_connected()
        assert graph.num_edges == 5

    def test_connected_budget_validation(self):
        with pytest.raises(ValidationError):
            connected_graph_with_edges(5, 3)
        with pytest.raises(ValidationError):
            connected_graph_with_edges(5, 11)

    def test_gnp_extremes(self):
        assert gnp_random_graph(5, 0.0).num_edges == 0
        assert gnp_random_graph(5, 1.0).num_edges == 10


@settings(max_examples=30, deadline=None)
@given(graphs_strategy())
def test_property_lemma7(graph):
    assert verify_lemma7(graph)


@settings(max_examples=30, deadline=None)
@given(graphs_strategy())
def test_property_clique_vc_duality(graph):
    assert max_clique_size(graph) == independence_number(graph.complement())


@settings(max_examples=30, deadline=None)
@given(graphs_strategy())
def test_property_greedy_clique_sound(graph):
    clique = greedy_clique(graph)
    assert is_clique(graph, clique)
    assert len(clique) <= max_clique_size(graph)
