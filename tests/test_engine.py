"""Tests for the mini execution engine (cost-model validation)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import execute_sequence, generate_database
from repro.engine.data import harmonize_sizes
from repro.graphs.graph import Graph
from repro.joinopt.cost import intermediate_sizes, join_costs
from repro.joinopt.instance import QONInstance
from repro.utils.validation import ValidationError


def chain_instance():
    graph = Graph(3, [(0, 1), (1, 2)])
    return QONInstance(
        graph,
        [12, 6, 8],
        {(0, 1): Fraction(1, 3), (1, 2): Fraction(1, 2)},
    )


class TestGeneration:
    def test_sizes(self):
        database = generate_database(chain_instance())
        assert [database.size(r) for r in range(3)] == [12, 6, 8]
        assert database.total_rows() == 26

    def test_exact_flag_true_when_divisible(self):
        database = generate_database(chain_instance())
        assert database.exact

    def test_exact_flag_false_when_not(self):
        graph = Graph(2, [(0, 1)])
        instance = QONInstance(graph, [7, 6], {(0, 1): Fraction(1, 3)})
        assert not generate_database(instance).exact

    def test_attribute_domains(self):
        database = generate_database(chain_instance())
        values = {row[(0, 1)] for row in database.tuples[0]}
        assert values == {0, 1, 2}

    def test_uniform_distribution(self):
        database = generate_database(chain_instance())
        counts = {}
        for row in database.tuples[0]:
            counts[row[(0, 1)]] = counts.get(row[(0, 1)], 0) + 1
        assert set(counts.values()) == {4}  # 12 rows / domain 3

    def test_non_unit_selectivity_rejected(self):
        graph = Graph(2, [(0, 1)])
        instance = QONInstance(graph, [4, 4], {(0, 1): Fraction(2, 3)})
        with pytest.raises(ValidationError):
            generate_database(instance)

    def test_harmonize_sizes(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        instance = QONInstance(
            graph, [7, 7, 9],
            {(0, 1): Fraction(1, 3), (1, 2): Fraction(1, 2)},
        )
        adjusted = harmonize_sizes(instance)
        assert adjusted.size(0) == 9    # multiple of 3
        assert adjusted.size(1) == 12   # multiple of 6
        assert adjusted.size(2) == 10   # multiple of 2
        assert generate_database(adjusted).exact


class TestExecution:
    def test_cardinalities_match_model_exactly(self):
        instance = chain_instance()
        database = generate_database(instance)
        for sequence in [(0, 1, 2), (2, 1, 0), (1, 0, 2)]:
            trace = execute_sequence(database, sequence)
            predicted = intermediate_sizes(instance, sequence)
            measured = [join.output_rows for join in trace.joins]
            assert [Fraction(m) for m in measured] == predicted

    def test_probe_work_matches_h(self):
        """With w at the model's lower bound t_j * s, the measured probe
        rows equal H_i exactly."""
        instance = chain_instance()
        database = generate_database(instance)
        for sequence in [(0, 1, 2), (2, 1, 0)]:
            trace = execute_sequence(database, sequence)
            predicted = join_costs(instance, sequence)
            measured = [join.probe_rows for join in trace.joins]
            assert [Fraction(m) for m in measured] == predicted

    def test_cyclic_query_exact(self):
        graph = Graph(3, [(0, 1), (1, 2), (0, 2)])
        instance = QONInstance(
            graph,
            [6, 6, 6],
            {(0, 1): Fraction(1, 2), (1, 2): Fraction(1, 3),
             (0, 2): Fraction(1, 1)},
        )
        database = generate_database(instance)
        trace = execute_sequence(database, (0, 1, 2))
        predicted = intermediate_sizes(instance, (0, 1, 2))
        assert [Fraction(j.output_rows) for j in trace.joins] == predicted

    def test_cartesian_product_counts(self):
        graph = Graph(3, [(0, 1)])
        instance = QONInstance(graph, [4, 2, 3], {(0, 1): Fraction(1, 2)})
        database = generate_database(instance)
        trace = execute_sequence(database, (0, 2, 1))
        # Join 1 is a cartesian product: probe rows = 4 * 3.
        assert trace.joins[0].probe_edge is None
        assert trace.joins[0].probe_rows == 12
        assert trace.joins[0].output_rows == 12

    def test_residual_predicates_filter(self):
        """A triangle where the third edge filters the index hits."""
        graph = Graph(3, [(0, 1), (1, 2), (0, 2)])
        instance = QONInstance(
            graph,
            [4, 4, 4],
            {(0, 1): Fraction(1, 2), (1, 2): Fraction(1, 2),
             (0, 2): Fraction(1, 2)},
        )
        database = generate_database(instance)
        trace = execute_sequence(database, (0, 1, 2))
        last = trace.joins[-1]
        assert last.residual_checks > 0
        assert last.output_rows <= last.probe_rows

    def test_result_size_order_invariant(self):
        instance = chain_instance()
        database = generate_database(instance)
        results = {
            execute_sequence(database, seq).result_rows
            for seq in [(0, 1, 2), (2, 1, 0), (1, 2, 0)]
        }
        assert len(results) == 1

    def test_bad_sequence_rejected(self):
        database = generate_database(chain_instance())
        with pytest.raises(ValidationError):
            execute_sequence(database, (0, 1))


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_model_exact_on_harmonized_random_queries(seed):
    """On harmonized instances the model's N_i is the truth, for a
    random query graph and a random sequence."""
    import random

    rng = random.Random(seed)
    n = rng.randint(2, 4)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < 0.7
    ]
    graph = Graph(n, edges)
    instance = QONInstance(
        graph,
        [rng.randint(2, 10) for _ in range(n)],
        {edge: Fraction(1, rng.randint(1, 3)) for edge in edges},
    )
    instance = harmonize_sizes(instance)
    database = generate_database(instance)
    assert database.exact
    sequence = list(range(n))
    rng.shuffle(sequence)
    trace = execute_sequence(database, sequence)
    predicted = intermediate_sizes(instance, sequence)
    assert [Fraction(j.output_rows) for j in trace.joins] == predicted
