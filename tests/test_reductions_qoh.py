"""Tests for f_H (Section 5): construction, Lemmas 10-12, Theorem 15."""

from fractions import Fraction

import pytest

from repro.core.certificates import qoh_certificate_plan
from repro.core.reductions.clique_to_qoh import clique_to_qoh
from repro.graphs.generators import complete_graph
from repro.hashjoin.optimizer import (
    best_decomposition,
    is_feasible_sequence,
    qoh_greedy,
    qoh_optimal,
)
from repro.hashjoin.pipeline import Pipeline, pipeline_allocation
from repro.utils.lognum import log2_of
from repro.utils.validation import ValidationError
from repro.workloads.gaps import qoh_gap_pair, turan_graph


@pytest.fixture(scope="module")
def yes6():
    """f_H of K_6 with alpha = 4^6."""
    return clique_to_qoh(complete_graph(6), alpha=4**6)


class TestConstruction:
    def test_hub_is_relation_zero(self, yes6):
        graph = yes6.instance.graph
        assert graph.degree(0) == 6
        assert yes6.instance.size(0) == yes6.hub_size

    def test_sizes(self, yes6):
        # t = sqrt(alpha)^(n-1) = (2^6)^5.
        assert yes6.satellite_size == 2**30
        assert yes6.hub_size == (6 * 2**30) ** 13

    def test_memory_formula(self, yes6):
        model = yes6.instance.model
        t = yes6.satellite_size
        assert yes6.instance.memory == (6 // 3 - 1) * t + 2 * model.hjmin(t)

    def test_selectivities(self, yes6):
        instance = yes6.instance
        assert instance.selectivity(0, 1) == Fraction(1, 2)
        assert instance.selectivity(1, 2) == Fraction(1, 4**6)

    def test_hub_cannot_be_inner(self, yes6):
        assert not is_feasible_sequence(yes6.instance, [1, 0, 2, 3, 4, 5, 6])
        assert is_feasible_sequence(yes6.instance, [0, 1, 2, 3, 4, 5, 6])

    def test_n_must_be_divisible_by_three(self):
        with pytest.raises(ValidationError):
            clique_to_qoh(complete_graph(7), alpha=4)

    def test_hub_exponent_guard(self):
        with pytest.raises(ValidationError):
            clique_to_qoh(complete_graph(6), alpha=4**6, hub_exponent=0)


class TestLemma10:
    """Optimal memory allocation starves the smallest-outer joins."""

    def test_short_pipeline_fully_fed(self, yes6):
        # One join fits entirely: no starvation.
        sequence = tuple(range(7))
        allocation = pipeline_allocation(yes6.instance, sequence, Pipeline(1, 1))
        assert allocation is not None
        assert allocation.starved == ()

    def test_n_third_pipeline_one_starved(self, yes6):
        # n/3 = 2 joins with memory (n/3 - 1) t + 2 hjmin(t): one join
        # must starve, and it is the one with the smaller outer stream.
        sequence = tuple(range(7))
        allocation = pipeline_allocation(yes6.instance, sequence, Pipeline(2, 3))
        assert allocation is not None
        assert len(allocation.starved) == 1
        outers = [
            yes6.instance.intermediate_sizes(sequence)[j - 1] for j in (2, 3)
        ]
        starved_index = allocation.starved[0]
        other = 1 - starved_index
        assert outers[starved_index] <= outers[other]

    def test_starved_join_cost_theta_outer_plus_inner(self, yes6):
        sequence = tuple(range(7))
        allocation = pipeline_allocation(yes6.instance, sequence, Pipeline(2, 3))
        starved = allocation.starved[0]
        outers = [
            yes6.instance.intermediate_sizes(sequence)[j - 1] for j in (2, 3)
        ]
        t = yes6.satellite_size
        cost = allocation.join_costs[starved]
        # Theta(b_R + b_S): between half and the full hybrid-hash bound.
        assert (outers[starved] + t) / 2 <= cost <= (outers[starved] + t) + t


class TestLemma12Certificate:
    def test_certificate_structure(self, yes6):
        plan = qoh_certificate_plan(yes6, list(range(4)))
        assert plan.sequence[0] == 0
        # Five pipelines: P(1,1), P(2,2), P(3,4), P(5,5), P(6,6) for n=6.
        assert [
            (p.first_join, p.last_join) for p in plan.decomposition.pipelines
        ] == [(1, 1), (2, 2), (3, 4), (5, 5), (6, 6)]

    def test_certificate_cost_near_l_bound(self, yes6):
        plan = qoh_certificate_plan(yes6, list(range(4)))
        l_log2 = float(yes6.l_bound_log2())
        # O(L): within a constant number of doublings of L.
        assert log2_of(plan.cost) <= l_log2 + 4

    def test_certificate_needs_clique(self):
        reduction = clique_to_qoh(turan_graph(6, 3), alpha=4**6)
        with pytest.raises(ValidationError):
            qoh_certificate_plan(reduction, [0, 1, 2, 3])

    def test_certificate_needs_enough_vertices(self, yes6):
        with pytest.raises(ValidationError):
            qoh_certificate_plan(yes6, [0, 1])


class TestTheorem15Gap:
    def test_yes_no_separation_exact(self):
        """Exhaustive QO_H optimum separates YES from NO at n = 6."""
        pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
        yes_plan = qoh_optimal(pair.yes_reduction.instance)
        no_plan = qoh_optimal(pair.no_reduction.instance)
        assert yes_plan is not None and no_plan is not None
        assert no_plan.cost > yes_plan.cost

    def test_certificate_upper_bounds_optimum(self):
        pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
        cert = qoh_certificate_plan(pair.yes_reduction, pair.yes_clique)
        optimum = qoh_optimal(pair.yes_reduction.instance)
        assert optimum.cost <= cert.cost

    def test_greedy_feasible_on_gap_instances(self):
        pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
        plan = qoh_greedy(pair.no_reduction.instance)
        assert plan is not None
        assert plan.sequence[0] == 0

    def test_all_feasible_plans_start_with_hub(self):
        pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
        instance = pair.yes_reduction.instance
        for first in range(1, instance.num_relations):
            sequence = [first] + [r for r in range(instance.num_relations) if r != first]
            assert best_decomposition(instance, sequence) is None
