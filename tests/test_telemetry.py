"""Tests for the live telemetry layer (metrics, events, export, top).

Covers, per ISSUE requirements:

* concurrent-registry exactness — N threads x M increments sum
  exactly (integer counters, no lost updates);
* histogram bucket boundary pins (first-match-wins bucketing, the
  overflow bucket, ``sum(buckets) == count``, nearest-rank
  percentiles);
* exporter snapshot schema round-trip (write -> load -> validate,
  Prometheus rendering, summarize/diff);
* client-side distributed-trace stitching whose span counters are
  bit-identical to a local run of the same request;
* the slow-request event threshold and sampling;
* ``repro top`` / ``repro metrics`` CLI exit codes.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import api
from repro.cli import main
from repro.observability import (
    EVENT_KINDS,
    EventLog,
    LATENCY_BOUNDARIES_MS,
    MetricsRegistry,
    TelemetryExporter,
    Tracer,
    active_metrics,
    counter_totals,
    diff_metrics,
    install_metrics,
    load_events,
    load_metrics_file,
    metric_inc,
    render_prometheus,
    snapshot_percentile,
    summarize_metrics,
    use_metrics,
    use_tracer,
    validate_event,
    validate_metrics,
    validate_trace,
)
from repro.service import OptimizationServer, ServerConfig, ServiceClient
from repro.utils.validation import ValidationError
from repro.workloads import chain_query

DRAIN_TIMEOUT = 30.0


# ---------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------


class TestMetricsRegistry:
    def test_concurrent_increments_sum_exactly(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 2500

        def hammer():
            for _ in range(per_thread):
                registry.inc("test.hits")
                registry.observe("test.lat_ms", 3.0)

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert registry.counter_value("test.hits") == threads * per_thread
        snapshot = registry.snapshot()
        hist = snapshot["histograms"]["test.lat_ms"]
        assert hist["count"] == threads * per_thread
        assert sum(hist["buckets"]) == hist["count"]

    def test_counter_rejects_bad_input(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.inc("test.hits", -1)
        with pytest.raises(ValidationError):
            registry.inc("nodots")
        with pytest.raises(ValidationError):
            registry.inc("9leading.digit")

    def test_histogram_bucket_boundaries_pin(self):
        registry = MetricsRegistry()
        bounds = (10.0, 20.0, 50.0)
        for value in (1.0, 10.0, 10.5, 20.0, 49.0, 50.0, 51.0, 1e9):
            registry.observe("test.h", value, boundaries=bounds)
        hist = registry.snapshot()["histograms"]["test.h"]
        assert hist["boundaries"] == [10.0, 20.0, 50.0]
        # v <= 10 -> bucket 0; 10 < v <= 20 -> bucket 1;
        # 20 < v <= 50 -> bucket 2; rest overflow.
        assert hist["buckets"] == [2, 2, 2, 2]
        assert sum(hist["buckets"]) == hist["count"] == 8

    def test_histogram_percentile_nearest_rank(self):
        registry = MetricsRegistry()
        bounds = (1.0, 5.0, 10.0)
        for value in [0.5] * 50 + [4.0] * 45 + [9.0] * 5:
            registry.observe("test.h", value, boundaries=bounds)
        assert registry.histogram_percentile("test.h", 50) == 1.0
        assert registry.histogram_percentile("test.h", 90) == 5.0
        assert registry.histogram_percentile("test.h", 99) == 10.0
        hist = registry.snapshot()["histograms"]["test.h"]
        assert snapshot_percentile(hist, 50) == 1.0
        assert snapshot_percentile(hist, 99) == 10.0

    def test_histogram_boundary_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.declare_histogram("test.h", (1.0, 2.0))
        registry.declare_histogram("test.h", (1.0, 2.0))  # idempotent
        with pytest.raises(ValidationError):
            registry.declare_histogram("test.h", (1.0, 3.0))

    def test_snapshot_validates_and_seq_increments(self):
        registry = MetricsRegistry()
        registry.inc("test.hits")
        first = registry.snapshot()
        second = registry.snapshot()
        assert validate_metrics(first) == []
        assert validate_metrics(second) == []
        assert second["seq"] == first["seq"] + 1
        assert json.loads(json.dumps(first)) == first

    def test_default_latency_boundaries_pin(self):
        assert LATENCY_BOUNDARIES_MS == (
            1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
            1000.0, 2500.0, 5000.0,
        )


class TestNoOpDefault:
    def test_module_helpers_are_noops_without_registry(self):
        assert active_metrics() is None
        metric_inc("test.hits")  # must not raise

    def test_use_metrics_scopes_to_thread(self):
        registry = MetricsRegistry()
        seen = []

        def other_thread():
            seen.append(active_metrics())

        with use_metrics(registry):
            assert active_metrics() is registry
            metric_inc("test.hits")
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        assert active_metrics() is None
        assert seen == [None]
        assert registry.counter_value("test.hits") == 1

    def test_install_metrics_process_wide(self):
        registry = MetricsRegistry()
        previous = install_metrics(registry)
        try:
            metric_inc("test.hits", 2)
        finally:
            install_metrics(previous)
        assert registry.counter_value("test.hits") == 2
        assert active_metrics() is previous


# ---------------------------------------------------------------------
# EventLog
# ---------------------------------------------------------------------


class TestEventLog:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        log.emit("task.start", index=0, optimizer="dp")
        log.emit("task.finish", index=0, ok=True)
        log.close()
        events = load_events(path)
        assert [e["kind"] for e in events] == ["task.start", "task.finish"]
        for event in events:
            assert validate_event(event) == []

    def test_unknown_kind_and_reserved_keys_rejected(self, tmp_path):
        log = EventLog(str(tmp_path / "e.jsonl"))
        with pytest.raises(ValidationError):
            log.emit("task.exploded")
        with pytest.raises(ValidationError):
            log.emit("task.start", ts=123.0)
        with pytest.raises(ValidationError):
            log.emit("task.start", schema="repro.events/2")
        log.close()

    def test_slow_request_threshold(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        log = EventLog(path, slow_ms=50.0)
        assert log.observe_latency(0.010, op="optimize") is False
        assert log.observe_latency(0.051, op="optimize") is True
        assert log.observe_latency(0.050, op="optimize") is True  # at bound
        log.close()
        events = load_events(path)
        assert [e["kind"] for e in events] == ["service.slow_request"] * 2
        assert all(e["wall_ms"] >= 50.0 for e in events)

    def test_slow_request_sampling(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        log = EventLog(path, slow_ms=0.0, sample_every=3)
        emitted = [log.observe_latency(0.001) for _ in range(9)]
        log.close()
        # Every slow request counts; every 3rd is written.
        assert emitted.count(True) == 3
        assert len(load_events(path)) == 3

    def test_no_threshold_means_no_slow_events(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        log = EventLog(path)
        assert log.observe_latency(10.0) is False
        log.close()
        assert load_events(path) == []

    def test_taxonomy_pin(self):
        assert EVENT_KINDS == (
            "task.start", "task.finish", "task.retry",
            "task.worker_death", "service.admit", "service.reject",
            "service.coalesce", "service.evict", "service.slow_request",
        )


# ---------------------------------------------------------------------
# Exporter round-trip
# ---------------------------------------------------------------------


class TestExporter:
    def test_snapshot_file_round_trip(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        registry = MetricsRegistry()
        registry.inc("test.hits", 7)
        registry.observe("test.lat_ms", 12.0)
        exporter = TelemetryExporter(registry, path, interval_s=60.0)
        exporter.start()
        registry.inc("test.hits", 3)
        final = exporter.stop()
        snapshots = load_metrics_file(path)
        assert snapshots  # final snapshot always written on stop
        assert snapshots[-1]["counters"]["test.hits"] == 10
        assert snapshots[-1]["counters"] == final["counters"]
        for snapshot in snapshots:
            assert validate_metrics(snapshot) == []

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.inc("service.received", 4)
        registry.set_gauge("service.queue_depth", 2.0)
        registry.observe("service.latency_ms", 3.0, boundaries=(1.0, 5.0))
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_service_received counter" in text
        assert "repro_service_received 4" in text
        assert "repro_service_queue_depth 2.0" in text
        assert 'repro_service_latency_ms_bucket{le="5.0"} 1' in text
        assert 'repro_service_latency_ms_bucket{le="+Inf"} 1' in text
        assert "repro_service_latency_ms_count 1" in text

    def test_summarize_and_diff(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("test.hits", 5)
        before = registry.snapshot()
        registry.inc("test.hits", 3)
        registry.inc("test.misses", 1)
        after = registry.snapshot()
        assert "test.hits" in summarize_metrics([before, after])
        deltas = diff_metrics(before, after)
        assert deltas == {"test.hits": 3, "test.misses": 1}
        with pytest.raises(ValueError):
            diff_metrics(after, before)  # backwards movement


# ---------------------------------------------------------------------
# Service integration: metrics op, identity, distributed traces
# ---------------------------------------------------------------------


@pytest.fixture
def make_server():
    servers = []

    def factory(**overrides):
        config = ServerConfig(address=("127.0.0.1", 0), **overrides)
        server = OptimizationServer(config)
        address = server.start()
        servers.append(server)
        return server, tuple(address)

    yield factory
    for server in servers:
        server.request_stop()
        server.shutdown(drain_timeout=DRAIN_TIMEOUT)


class TestServiceTelemetry:
    def test_metrics_op_and_counter_identity(self, make_server):
        _server, address = make_server(workers=2)
        instance = chain_query(5, rng=3)
        with ServiceClient(address) as client:
            for _ in range(3):
                reply = client.optimize(api.OptimizeRequest.build(
                    instance, "dp"
                ))
                assert reply.ok
            snapshot = client.metrics()
        assert validate_metrics(snapshot) == []
        counters = snapshot["counters"]
        assert counters["service.received"] == 3
        assert counters["service.received"] == (
            counters.get("service.computed", 0)
            + counters.get("service.cache_hits", 0)
            + counters.get("service.coalesced", 0)
            + counters.get("service.rejected", 0)
            + counters.get("service.errors", 0)
        )
        assert counters["service.computed"] == 1
        assert counters["service.cache_hits"] == 2
        hist = snapshot["histograms"]["service.latency_ms"]
        assert hist["count"] == 1  # cache hits skip the compute path
        assert snapshot["gauges"]["service.workers"] == 2.0

    def test_stitched_trace_matches_local_run(self, make_server):
        _server, address = make_server(workers=1)
        instance = chain_query(6, rng=7)
        request = api.OptimizeRequest.build(instance, "dp")

        # Local reference run: fresh cache, own tracer.
        local_tracer = Tracer("local")
        with use_tracer(local_tracer), api.use_cache(api.CostCache()):
            local_result = api.execute_request(request)
        local = counter_totals(local_tracer.finish())

        remote_tracer = Tracer("client")
        with use_tracer(remote_tracer):
            with ServiceClient(address) as client:
                before = client.metrics()
                reply = client.optimize(request)
                after = client.metrics()
        assert reply.ok
        stitched_records = remote_tracer.finish()
        validate_trace(stitched_records)  # raises on malformed grafts
        stitched = counter_totals(stitched_records)

        # Bit-identical span counters vs the local run.
        assert stitched["cost_evaluations"] == local["cost_evaluations"]
        assert reply.result == local_result

        # ... and the stitched totals equal the server-side metrics
        # delta exactly (the acceptance criterion).
        delta = diff_metrics(before, after)
        assert delta["runtime.cost_evaluations"] == (
            stitched["cost_evaluations"]
        )

        # The grafted subtree is marked with its remote origin.
        origins = [
            record["attrs"]["origin"]
            for record in stitched_records
            if record.get("attrs", {}).get("origin")
        ]
        assert len(origins) == 1 and origins[0].startswith("service-")

    def test_trace_context_travels_without_client_tracer(self, make_server):
        _server, address = make_server(workers=1)
        request = api.OptimizeRequest.build(
            chain_query(5, rng=1), "dp", trace_id="abc123", parent_span=4
        )
        with ServiceClient(address) as client:
            reply = client.optimize(request)
        assert reply.ok
        assert reply.trace_records  # trace_id alone forces span return
        root = reply.trace_records[0]
        assert root["attrs"]["trace_id"] == "abc123"
        assert root["attrs"]["parent_span"] == 4

    def test_event_and_metrics_files(self, tmp_path):
        metrics_out = str(tmp_path / "metrics.jsonl")
        events_out = str(tmp_path / "events.jsonl")
        server = OptimizationServer(ServerConfig(
            address=("127.0.0.1", 0),
            workers=1,
            metrics_out=metrics_out,
            metrics_interval_s=60.0,
            events_out=events_out,
            slow_ms=0.0,
        ))
        address = tuple(server.start())
        with ServiceClient(address) as client:
            assert client.optimize(api.OptimizeRequest.build(
                chain_query(5, rng=2), "dp"
            )).ok
        server.request_stop()
        server.shutdown(drain_timeout=DRAIN_TIMEOUT)
        snapshots = load_metrics_file(metrics_out)
        assert snapshots[-1]["counters"]["service.received"] == 1
        kinds = [event["kind"] for event in load_events(events_out)]
        assert "service.admit" in kinds
        assert "service.slow_request" in kinds  # slow_ms=0 samples all


# ---------------------------------------------------------------------
# Sweep-side telemetry
# ---------------------------------------------------------------------


class TestSweepTelemetry:
    def test_run_sweep_publishes_counters_and_events(self, tmp_path):
        events_path = str(tmp_path / "events.jsonl")
        registry = MetricsRegistry()
        log = EventLog(events_path)
        instance = chain_query(5, rng=5)
        tasks = api.grid_tasks(
            ["dp", "greedy-cost"], [("chain5", instance)]
        )
        from repro.observability import use_event_log

        with use_metrics(registry), use_event_log(log):
            result = api.sweep(tasks)
        log.close()
        assert registry.counter_value("runtime.tasks_completed") == len(
            result.outcomes
        )
        assert registry.counter_value("runtime.cost_evaluations") > 0
        kinds = [event["kind"] for event in load_events(events_path)]
        assert kinds.count("task.start") == len(result.outcomes)
        assert kinds.count("task.finish") == len(result.outcomes)


# ---------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------


class TestCLI:
    def test_metrics_summarize_ok(self, tmp_path, capsys):
        path = str(tmp_path / "m.jsonl")
        registry = MetricsRegistry()
        registry.inc("test.hits", 2)
        exporter = TelemetryExporter(registry, path, interval_s=60.0)
        exporter.start()
        exporter.stop()
        assert main(["metrics", path]) == 0
        out = capsys.readouterr().out
        assert "test.hits" in out

    def test_metrics_diff_ok(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.inc("test.hits", 2)
        first = str(tmp_path / "a.jsonl")
        TelemetryExporter(registry, first, interval_s=60.0).write_snapshot()
        registry.inc("test.hits", 3)
        second = str(tmp_path / "b.jsonl")
        TelemetryExporter(registry, second, interval_s=60.0).write_snapshot()
        assert main(["metrics", first, "--diff", second]) == 0
        assert "test.hits +3" in capsys.readouterr().out
        # Backwards diff fails loudly.
        assert main(["metrics", second, "--diff", first]) == 1

    def test_metrics_missing_file_fails(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot load" in capsys.readouterr().err

    def test_metrics_rejects_wrong_schema_file(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"schema": "repro.events/1", "kind": "task.start", "ts": 0}\n'
        )
        assert main(["metrics", str(path)]) == 1

    def test_top_once_against_live_server(self, capsys):
        server = OptimizationServer(ServerConfig(
            address=("127.0.0.1", 0), workers=1
        ))
        host, port = tuple(server.start())
        try:
            with ServiceClient((host, port)) as client:
                assert client.optimize(api.OptimizeRequest.build(
                    chain_query(5, rng=2), "dp"
                )).ok
            assert main([
                "top", "--connect", f"{host}:{port}", "--once"
            ]) == 0
            out = capsys.readouterr().out
            assert "repro top" in out
            assert "received  1" in out
        finally:
            server.request_stop()
            server.shutdown(drain_timeout=DRAIN_TIMEOUT)

    def test_top_dead_daemon_exit_code(self, tmp_path, capsys):
        assert main([
            "top", "--connect", str(tmp_path / "nope.sock"), "--once"
        ]) == 3
        assert "cannot reach" in capsys.readouterr().err

    def test_top_bad_flags_exit_code(self, tmp_path, capsys):
        assert main([
            "top", "--connect", "127.0.0.1:1", "--interval", "0"
        ]) == 2
        assert main([
            "top", "--connect", "127.0.0.1:1", "--iterations", "-1"
        ]) == 2

    def test_serve_bad_telemetry_flags_exit_code(self, capsys):
        assert main([
            "serve", "--metrics-interval", "0"
        ]) == 2
        assert main([
            "serve", "--slow-ms", "-1"
        ]) == 2
