"""Tests for the QO_N instance model and cost semantics."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.joinopt.cost import (
    back_edge_counts,
    has_cartesian_product,
    intermediate_sizes,
    join_costs,
    prefix_edge_counts,
    total_cost,
)
from repro.joinopt.instance import QONInstance
from repro.utils.lognum import LogNumber, log2_of
from repro.utils.validation import ValidationError


@pytest.fixture
def chain_instance():
    """R0 -(1/10)- R1 -(1/20)- R2 -(1/2)- R3; sizes 100, 50, 200, 10."""
    graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
    return QONInstance(
        graph,
        [100, 50, 200, 10],
        {(0, 1): Fraction(1, 10), (1, 2): Fraction(1, 20), (2, 3): Fraction(1, 2)},
    )


class TestInstance:
    def test_missing_selectivity_rejected(self):
        graph = Graph(2, [(0, 1)])
        with pytest.raises(ValidationError):
            QONInstance(graph, [10, 10], {})

    def test_selectivity_on_non_edge_rejected(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(ValidationError):
            QONInstance(graph, [1, 1, 1], {(0, 1): Fraction(1, 2), (1, 2): Fraction(1, 2)})

    def test_non_edge_selectivity_is_one(self, chain_instance):
        assert chain_instance.selectivity(0, 3) == 1

    def test_default_access_cost_is_lower_bound(self, chain_instance):
        # w_01 (probe into R1 given a tuple of R0) = t1 * s01 = 5.
        assert chain_instance.access_cost(0, 1) == 5
        # probe into R0 given a tuple of R1 = t0 * s01 = 10.
        assert chain_instance.access_cost(1, 0) == 10

    def test_non_edge_access_cost_is_full_scan(self, chain_instance):
        assert chain_instance.access_cost(0, 3) == 10
        assert chain_instance.access_cost(3, 0) == 100

    def test_access_cost_bounds_enforced(self):
        graph = Graph(2, [(0, 1)])
        with pytest.raises(ValidationError):
            QONInstance(
                graph,
                [10, 10],
                {(0, 1): Fraction(1, 2)},
                access_costs={(0, 1): 11},  # above t_1
            )
        with pytest.raises(ValidationError):
            QONInstance(
                graph,
                [10, 10],
                {(0, 1): Fraction(1, 2)},
                access_costs={(0, 1): 4},  # below t_1 * s = 5
            )

    def test_selectivity_out_of_range(self):
        graph = Graph(2, [(0, 1)])
        with pytest.raises(ValidationError):
            QONInstance(graph, [10, 10], {(0, 1): Fraction(2)})

    def test_size_mismatch(self):
        with pytest.raises(ValidationError):
            QONInstance(Graph(3, []), [1, 2], {})


class TestSizes:
    def test_intermediate_sizes_chain(self, chain_instance):
        sizes = intermediate_sizes(chain_instance, [0, 1, 2, 3])
        # N1 = 100*50/10 = 500 ; N2 = 500*200/20 = 5000 ; N3 = 5000*10/2.
        assert sizes == [500, 5000, 25000]

    def test_size_is_order_independent_total(self, chain_instance):
        a = intermediate_sizes(chain_instance, [0, 1, 2, 3])[-1]
        b = intermediate_sizes(chain_instance, [3, 2, 1, 0])[-1]
        assert a == b

    def test_cartesian_product_size(self, chain_instance):
        sizes = intermediate_sizes(chain_instance, [0, 3, 1, 2])
        # R0 x R3 has no predicate: N1 = 100 * 10 = 1000.
        assert sizes[0] == 1000

    def test_bad_sequence_rejected(self, chain_instance):
        with pytest.raises(ValidationError):
            intermediate_sizes(chain_instance, [0, 1, 2])
        with pytest.raises(ValidationError):
            intermediate_sizes(chain_instance, [0, 1, 2, 2])


class TestCosts:
    def test_join_costs_chain(self, chain_instance):
        costs = join_costs(chain_instance, [0, 1, 2, 3])
        # H1 = t0 * w[0][1] = 100 * 5 = 500
        # H2 = N1 * w[1][2] = 500 * 10 = 5000
        # H3 = N2 * w[2][3] = 5000 * 5 = 25000
        assert costs == [500, 5000, 25000]

    def test_total_cost(self, chain_instance):
        assert total_cost(chain_instance, [0, 1, 2, 3]) == 30500

    def test_min_over_probe_choices(self, chain_instance):
        # Sequence 1, 0, 2: probing R2 can use predicate with R1
        # (w=10) even though R0 was joined later.
        costs = join_costs(chain_instance, [1, 0, 2, 3])
        assert costs[1] == 500 * 10  # N1 = 50*100/10 = 500

    def test_cartesian_pays_full_scan(self, chain_instance):
        costs = join_costs(chain_instance, [0, 3, 1, 2])
        # Second join: R3 has no predicate to R0 -> probe = t3 = 10.
        assert costs[0] == 100 * 10

    def test_back_edges(self, chain_instance):
        assert back_edge_counts(chain_instance, [0, 1, 2, 3]) == [0, 1, 1, 1]
        assert back_edge_counts(chain_instance, [0, 2, 1, 3]) == [0, 0, 2, 1]

    def test_prefix_edges(self, chain_instance):
        assert prefix_edge_counts(chain_instance, [0, 1, 2, 3]) == [0, 1, 2, 3]

    def test_has_cartesian_product(self, chain_instance):
        assert not has_cartesian_product(chain_instance, [0, 1, 2, 3])
        assert has_cartesian_product(chain_instance, [0, 2, 1, 3])

    def test_two_relations(self):
        graph = Graph(2, [(0, 1)])
        instance = QONInstance(graph, [4, 8], {(0, 1): Fraction(1, 2)})
        assert total_cost(instance, [0, 1]) == 4 * 4
        assert total_cost(instance, [1, 0]) == 8 * 2


class TestLogDomain:
    def test_log_costs_match_exact(self, chain_instance):
        log_instance = chain_instance.to_log_domain()
        exact = total_cost(chain_instance, [0, 1, 2, 3])
        logged = total_cost(log_instance, [0, 1, 2, 3])
        assert isinstance(logged, LogNumber)
        assert logged.log2 == pytest.approx(log2_of(exact), rel=1e-9)

    def test_log_ordering_matches_exact(self, chain_instance):
        log_instance = chain_instance.to_log_domain()
        import itertools

        sequences = list(itertools.permutations(range(4)))
        exact_best = min(sequences, key=lambda z: total_cost(chain_instance, z))
        log_best = min(
            sequences, key=lambda z: total_cost(log_instance, z).log2
        )
        assert exact_best == log_best


@st.composite
def random_instances(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(all_pairs), unique=True, min_size=0)
    ) if all_pairs else []
    graph = Graph(n, edges)
    sizes = [draw(st.integers(min_value=1, max_value=1000)) for _ in range(n)]
    selectivities = {
        edge: Fraction(1, draw(st.integers(min_value=1, max_value=100)))
        for edge in graph.edges
    }
    return QONInstance(graph, sizes, selectivities)


@settings(max_examples=40, deadline=None)
@given(random_instances(), st.randoms(use_true_random=False))
def test_property_costs_positive(instance, rng):
    order = list(range(instance.num_relations))
    rng.shuffle(order)
    costs = join_costs(instance, order)
    assert all(c > 0 for c in costs)
    assert len(costs) == instance.num_relations - 1


@settings(max_examples=40, deadline=None)
@given(random_instances(), st.randoms(use_true_random=False))
def test_property_final_size_order_invariant(instance, rng):
    base = list(range(instance.num_relations))
    shuffled = base[:]
    rng.shuffle(shuffled)
    a = intermediate_sizes(instance, base)[-1]
    b = intermediate_sizes(instance, shuffled)[-1]
    assert a == b


@settings(max_examples=40, deadline=None)
@given(random_instances(), st.randoms(use_true_random=False))
def test_property_prefix_edges_total(instance, rng):
    order = list(range(instance.num_relations))
    rng.shuffle(order)
    totals = prefix_edge_counts(instance, order)
    assert totals[-1] == instance.graph.num_edges
