"""Tests for the genetic optimizer and the hardness report."""

import pytest

from repro.core.report import QONHardnessReport, build_qon_report
from repro.joinopt.cost import total_cost
from repro.joinopt.optimizers import dp_optimal
from repro.joinopt.optimizers.genetic import (
    _order_crossover,
    _swap_mutation,
    genetic_algorithm,
)
from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError
from repro.workloads.gaps import qon_gap_pair
from repro.workloads.queries import clique_query, random_query


class TestGeneticOperators:
    def test_crossover_is_permutation(self):
        rng = make_rng(0)
        a = tuple(range(8))
        b = tuple(reversed(range(8)))
        for _ in range(50):
            child = _order_crossover(a, b, rng)
            assert sorted(child) == list(range(8))

    def test_crossover_preserves_slice(self):
        rng = make_rng(1)
        a = (0, 1, 2, 3, 4)
        b = (4, 3, 2, 1, 0)
        child = _order_crossover(a, b, rng)
        assert sorted(child) == [0, 1, 2, 3, 4]

    def test_mutation_is_permutation(self):
        rng = make_rng(2)
        sequence = tuple(range(6))
        for _ in range(20):
            assert sorted(_swap_mutation(sequence, rng)) == list(range(6))


class TestGeneticAlgorithm:
    def test_returns_valid_result(self):
        instance = random_query(7, rng=0)
        result = genetic_algorithm(instance, rng=0)
        assert sorted(result.sequence) == list(range(7))
        assert result.cost == total_cost(instance, result.sequence)

    def test_never_beats_optimum(self):
        instance = random_query(6, rng=1)
        optimum = dp_optimal(instance).cost
        assert genetic_algorithm(instance, rng=1).cost >= optimum

    def test_deterministic_with_seed(self):
        instance = random_query(6, rng=2)
        a = genetic_algorithm(instance, rng=5)
        b = genetic_algorithm(instance, rng=5)
        assert a.cost == b.cost

    def test_improves_over_generations(self):
        instance = clique_query(9, rng=3)
        short = genetic_algorithm(instance, generations=1, rng=4)
        long = genetic_algorithm(instance, generations=60, rng=4)
        assert long.cost <= short.cost

    def test_single_relation(self):
        from repro.graphs.graph import Graph
        from repro.joinopt.instance import QONInstance

        instance = QONInstance(Graph(1, []), [5], {})
        assert genetic_algorithm(instance).cost == 0

    def test_population_validation(self):
        instance = random_query(5, rng=5)
        with pytest.raises(ValidationError):
            genetic_algorithm(instance, population_size=1)

    def test_works_on_gap_instance_log_domain(self):
        pair = qon_gap_pair(8, 6, 2, alpha=4**8)
        instance = pair.no_reduction.instance.to_log_domain()
        result = genetic_algorithm(instance, generations=10, rng=6)
        assert sorted(result.sequence) == list(range(8))


class TestHardnessReport:
    @pytest.fixture(scope="class")
    def report(self):
        pair = qon_gap_pair(10, 8, 2, alpha=4**10)
        return build_qon_report(pair)

    def test_fields(self, report):
        assert report.n == 10
        assert report.k_yes == 8
        assert report.k_no == 2
        assert report.certificate_log2 <= report.k_bound_log2 + 1

    def test_floor_above_k(self, report):
        assert report.floor_log2 > report.k_bound_log2

    def test_heuristics_at_or_above_floor(self, report):
        for value in report.heuristic_log2.values():
            assert value >= report.floor_log2 - 1e-6

    def test_observed_gap_at_least_provable(self, report):
        assert report.observed_gap_log2 >= report.provable_gap_log2 - 1e-6

    def test_beats_half_budget(self, report):
        assert report.beats_budget(0.5)

    def test_render(self, report):
        text = report.render()
        assert "QO_N hardness report" in text
        assert "Lemma 8" in text
        assert "beaten" in text


class TestQOHHardnessReport:
    def test_build_and_render(self):
        from fractions import Fraction

        from repro.core.report import build_qoh_report
        from repro.workloads.gaps import qoh_gap_pair

        pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
        report = build_qoh_report(pair)
        assert report.n == 6
        assert report.certificate_log2 <= report.l_bound_log2 + 4
        assert report.observed_gap_log2 > 0
        text = report.render()
        assert "QO_H hardness report" in text
        assert "observed gap" in text
