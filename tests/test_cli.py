"""Tests for the command-line interface."""

import pytest

from repro import io
from repro.cli import build_parser, main
from repro.joinopt.instance import QONInstance


class TestGen:
    def test_writes_instance(self, tmp_path, capsys):
        out = tmp_path / "q.json"
        code = main(["gen", "--family", "chain", "--relations", "5", "--out", str(out)])
        assert code == 0
        instance = io.load(out)
        assert isinstance(instance, QONInstance)
        assert instance.num_relations == 5

    @pytest.mark.parametrize("family", ["chain", "star", "cycle", "clique", "random"])
    def test_all_families(self, tmp_path, family):
        out = tmp_path / f"{family}.json"
        assert main(["gen", "--family", family, "--relations", "4",
                     "--out", str(out)]) == 0
        assert io.load(out).num_relations == 4

    def test_deterministic_seed(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["gen", "--family", "random", "--relations", "5", "--seed", "9",
              "--out", str(a)])
        main(["gen", "--family", "random", "--relations", "5", "--seed", "9",
              "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestOptimize:
    @pytest.fixture
    def instance_path(self, tmp_path):
        out = tmp_path / "q.json"
        main(["gen", "--family", "random", "--relations", "6", "--out", str(out)])
        return str(out)

    @pytest.mark.parametrize(
        "algorithm",
        ["dp", "exhaustive", "greedy-cost", "greedy-size", "iterative",
         "annealing", "sampling"],
    )
    def test_algorithms_run(self, instance_path, algorithm, capsys):
        assert main(["optimize", instance_path, "--algorithm", algorithm]) == 0
        output = capsys.readouterr().out
        assert "sequence:" in output
        assert "cost:" in output

    def test_ikkbz_on_tree(self, tmp_path, capsys):
        out = tmp_path / "chain.json"
        main(["gen", "--family", "chain", "--relations", "5", "--out", str(out)])
        assert main(["optimize", str(out), "--algorithm", "ikkbz"]) == 0

    def test_rejects_non_qon(self, tmp_path, capsys):
        from repro.graphs.generators import complete_graph

        path = tmp_path / "g.json"
        io.save(complete_graph(3), path)
        assert main(["optimize", str(path)]) == 2


class TestReduceSat:
    def test_qon_target(self, tmp_path, capsys):
        out = tmp_path / "hard.json"
        code = main([
            "reduce-sat", "--variables", "6", "--clauses", "16",
            "--satisfiable", "--target", "qon", "--out", str(out),
        ])
        assert code == 0
        instance = io.load(out)
        assert isinstance(instance, QONInstance)
        assert "132 relations" in capsys.readouterr().out

    def test_no_side(self, tmp_path, capsys):
        out = tmp_path / "hard.json"
        code = main([
            "reduce-sat", "--variables", "6", "--clauses", "16",
            "--target", "qon", "--out", str(out),
        ])
        assert code == 0
        assert "NO 3SAT(13)" in capsys.readouterr().out


class TestGapReport:
    def test_report_contents(self, capsys):
        assert main(["gap-report", "--relations", "10", "--alpha-exp", "10"]) == 0
        output = capsys.readouterr().out
        assert "log2 K_{c,d}" in output
        assert "gap wins" in output


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gen", "--family", "nope", "--out", "x"])


class TestExplainCommand:
    def test_explain_output(self, tmp_path, capsys):
        out = tmp_path / "q.json"
        main(["gen", "--family", "chain", "--relations", "4", "--out", str(out)])
        assert main(["explain", str(out), "--algorithm", "dp"]) == 0
        output = capsys.readouterr().out
        assert "scan R" in output
        assert "total cost C(Z)" in output

    def test_explain_rejects_non_qon(self, tmp_path, capsys):
        from repro.graphs.generators import complete_graph

        path = tmp_path / "g.json"
        io.save(complete_graph(3), path)
        assert main(["explain", str(path)]) == 2


class TestExecuteCommand:
    def test_execute_small_instance(self, tmp_path, capsys):
        out = tmp_path / "q.json"
        main([
            "gen", "--family", "chain", "--relations", "4",
            "--size-max", "40", "--domain-max", "5", "--out", str(out),
        ])
        assert main(["execute", str(out), "--harmonize"]) == 0
        output = capsys.readouterr().out
        assert "result rows:" in output
        assert "exactness guaranteed: True" in output

    def test_guard_on_huge_instances(self, tmp_path, capsys):
        from repro.utils.validation import ValidationError

        out = tmp_path / "big.json"
        main([
            "gen", "--family", "chain", "--relations", "4",
            "--size-max", "100000", "--domain-max", "10000",
            "--out", str(out),
        ])
        with pytest.raises(ValidationError):
            main(["execute", str(out), "--harmonize"])


class TestSweepCommand:
    def test_quick_sweep_prints_table_and_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "sweep", "--n", "5", "--quick", "--workers", "1",
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "algorithm" in output
        assert "hit" in output
        assert metrics_path.exists()

        from repro.runtime.metrics import load_metrics, validate_metrics

        payload = load_metrics(metrics_path)
        validate_metrics(payload)
        assert payload["totals"]["ok"] == payload["totals"]["tasks"]

    def test_gap_family_sweep(self, tmp_path, capsys):
        metrics_path = tmp_path / "gap.json"
        code = main([
            "sweep", "--family", "gap", "--n", "6",
            "--algorithms", "dp,greedy-cost", "--workers", "1",
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "gap-yes-n6" in output
        assert "gap-no-n6" in output

    def test_rejects_unknown_algorithm(self, capsys):
        assert main(["sweep", "--n", "5", "--algorithms", "nope"]) == 2

    def test_no_cache_flag_disables_hits(self, tmp_path, capsys):
        metrics_path = tmp_path / "nocache.json"
        code = main([
            "sweep", "--n", "5", "--quick", "--workers", "1",
            "--no-cache", "--metrics-out", str(metrics_path),
        ])
        assert code == 0

        from repro.runtime.metrics import load_metrics

        payload = load_metrics(metrics_path)
        assert payload["totals"]["cache_hits"] == 0
        assert payload["totals"]["cost_evaluations"] > 0

    def test_journal_then_resume_round_trip(self, tmp_path, capsys):
        journal = tmp_path / "sweep-journal.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "sweep", "--n", "5", "--quick", "--workers", "1",
            "--journal", str(journal), "--retries", "2",
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        first = capsys.readouterr().out
        assert "journal at" in first
        assert journal.exists()

        code = main([
            "sweep", "--n", "5", "--quick", "--workers", "1",
            "--journal", str(journal), "--resume",
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        second = capsys.readouterr().out
        assert "tasks resumed from journal" in second

        from repro.runtime.metrics import load_metrics, validate_metrics

        payload = load_metrics(metrics_path)
        validate_metrics(payload)
        totals = payload["totals"]
        assert totals["resumed_tasks"] == totals["tasks"]
        assert totals["ok"] == totals["tasks"]

    def test_resume_requires_journal(self, capsys):
        assert main(["sweep", "--n", "5", "--quick", "--resume"]) == 2
        assert "journal" in capsys.readouterr().err

    def test_rejects_nonpositive_retries(self, capsys):
        code = main(["sweep", "--n", "5", "--quick", "--retries", "0"])
        assert code == 2
