"""Tests for the QO_H beam search and lower bounds."""

from fractions import Fraction

import pytest

from repro.graphs.graph import Graph
from repro.hashjoin.instance import QOHInstance
from repro.hashjoin.optimizer import qoh_greedy, qoh_optimal
from repro.hashjoin.search import (
    qoh_beam_search,
    qoh_materialization_lower_bound,
    qoh_trivial_lower_bound,
)
from repro.workloads.gaps import qoh_gap_pair


@pytest.fixture
def small_instance():
    graph = Graph(5, [(0, 1), (0, 2), (0, 3), (3, 4)])
    return QOHInstance(
        graph,
        [5_000, 400, 900, 1_600, 100],
        {
            (0, 1): Fraction(1, 400),
            (0, 2): Fraction(1, 900),
            (0, 3): Fraction(1, 1_600),
            (3, 4): Fraction(1, 100),
        },
        memory=2_000,
    )


class TestBeamSearch:
    def test_finds_a_feasible_plan(self, small_instance):
        plan = qoh_beam_search(small_instance, rng=0)
        assert plan is not None
        assert sorted(plan.sequence) == list(range(5))

    def test_never_beats_optimum(self, small_instance):
        optimum = qoh_optimal(small_instance)
        plan = qoh_beam_search(small_instance, rng=1)
        assert plan.cost >= optimum.cost

    def test_wide_beam_matches_optimum_here(self, small_instance):
        optimum = qoh_optimal(small_instance)
        plan = qoh_beam_search(small_instance, beam_width=64, rng=2)
        assert plan.cost == optimum.cost

    def test_improves_with_width(self, small_instance):
        narrow = qoh_beam_search(small_instance, beam_width=1, rng=3)
        wide = qoh_beam_search(small_instance, beam_width=32, rng=3)
        assert wide.cost <= narrow.cost

    def test_respects_pinned_hub(self):
        pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
        plan = qoh_beam_search(pair.yes_reduction.instance, rng=4)
        assert plan is not None
        assert plan.sequence[0] == 0

    def test_infeasible_instance(self):
        graph = Graph(2, [(0, 1)])
        instance = QOHInstance(
            graph, [10_000, 10_000], {(0, 1): Fraction(1, 2)}, memory=4
        )
        assert qoh_beam_search(instance, rng=5) is None


class TestLowerBounds:
    def test_trivial_bound_sound(self, small_instance):
        optimum = qoh_optimal(small_instance)
        assert optimum.cost >= qoh_trivial_lower_bound(small_instance)

    def test_materialization_bound_sound_per_sequence(self, small_instance):
        from repro.hashjoin.optimizer import best_decomposition

        import itertools

        for sequence in itertools.permutations(range(5)):
            plan = best_decomposition(small_instance, sequence)
            if plan is None:
                continue
            bound = qoh_materialization_lower_bound(small_instance, sequence)
            assert plan.cost >= bound

    def test_materialization_dominates_trivial_often(self, small_instance):
        sequence = (0, 1, 2, 3, 4)
        assert qoh_materialization_lower_bound(
            small_instance, sequence
        ) >= small_instance.intermediate_sizes(sequence)[-1]

    def test_bounds_on_gap_instances(self):
        pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
        instance = pair.no_reduction.instance
        optimum = qoh_optimal(instance)
        assert optimum.cost >= qoh_trivial_lower_bound(instance)
        assert optimum.cost >= qoh_materialization_lower_bound(
            instance, optimum.sequence
        )

    def test_beam_vs_greedy_on_gap_instance(self):
        pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
        instance = pair.no_reduction.instance
        beam = qoh_beam_search(instance, beam_width=16, rng=6)
        greedy = qoh_greedy(instance)
        optimum = qoh_optimal(instance)
        assert beam.cost >= optimum.cost
        assert greedy.cost >= optimum.cost
