"""Tests for the SQO-CP subset DP optimizer."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.starqo.cost import plan_cost
from repro.starqo.dp import dp_best_plan
from repro.starqo.instance import SQOCPInstance
from repro.starqo.optimizer import best_plan
from repro.utils.validation import ValidationError


def _random_instance(rng, m):
    tuples = [rng.randint(10, 500) for _ in range(m + 1)]
    pages = [max(1, t // rng.randint(1, 4)) for t in tuples]
    return SQOCPInstance(
        num_satellites=m,
        sort_passes=rng.randint(2, 5),
        page_size=8,
        tuples=tuples,
        pages=pages,
        sort_costs=[p * 4 for p in pages],
        selectivities=[
            Fraction(1, rng.randint(1, tuples[i + 1])) for i in range(m)
        ],
        satellite_access=[rng.randint(1, 50) for _ in range(m)],
        center_access=[rng.randint(1, 500) for _ in range(m)],
    )


class TestDPAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exhaustive(self, seed):
        import random

        rng = random.Random(seed)
        instance = _random_instance(rng, rng.randint(2, 4))
        exhaustive_cost, _ = best_plan(instance)
        dp_cost, dp_plan = dp_best_plan(instance)
        assert dp_cost == exhaustive_cost
        assert plan_cost(instance, dp_plan) == dp_cost

    def test_plan_is_feasible(self):
        import random

        instance = _random_instance(random.Random(42), 5)
        _, plan = dp_best_plan(instance)
        assert instance.is_feasible_sequence(plan.sequence)

    def test_satellite_first_form_reachable(self):
        """An instance where starting with a satellite then R_0 wins."""
        instance = SQOCPInstance(
            num_satellites=2,
            sort_passes=4,
            page_size=8,
            tuples=[10_000, 3, 5_000],
            pages=[10_000, 1, 5_000],
            sort_costs=[40_000, 4, 20_000],
            selectivities=[Fraction(1, 10_000), Fraction(1, 5_000)],
            satellite_access=[1, 1],
            center_access=[1, 1],
        )
        cost, plan = dp_best_plan(instance)
        brute_cost, brute_plan = best_plan(instance)
        assert cost == brute_cost
        # Starting with the tiny satellite avoids reading R_0's pages.
        assert plan.sequence[0] == 1
        assert plan.sequence[1] == 0

    def test_guard(self):
        import random

        instance = _random_instance(random.Random(0), 3)
        with pytest.raises(ValidationError):
            dp_best_plan(instance, max_satellites=2)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_dp_equals_exhaustive(seed):
    import random

    rng = random.Random(seed)
    instance = _random_instance(rng, 3)
    assert dp_best_plan(instance)[0] == best_plan(instance)[0]
