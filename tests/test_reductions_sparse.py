"""Tests for the sparse reductions f_{N,e} and f_{H,e} (Section 6)."""

import math
from fractions import Fraction

import pytest

from repro.core.reductions.sparse import (
    choose_k,
    sparse_clique_to_qoh,
    sparse_clique_to_qon,
)
from repro.graphs.generators import complete_graph
from repro.joinopt.cost import total_cost
from repro.joinopt.optimizers import greedy_min_cost
from repro.utils.lognum import log2_of
from repro.utils.validation import ValidationError
from repro.workloads.gaps import turan_graph


class TestChooseK:
    def test_values(self):
        assert choose_k(1.0) == 2
        assert choose_k(0.5) == 4
        assert choose_k(0.3) == 7

    def test_bounds(self):
        with pytest.raises(ValidationError):
            choose_k(0)
        with pytest.raises(ValidationError):
            choose_k(1.5)


class TestSparseFN:
    def test_edge_budget_met_exactly(self):
        graph = complete_graph(3)
        reduction = sparse_clique_to_qon(
            graph, k_yes=3, k_no=1, tau=0.5, alpha=4, rng=0
        )
        m = reduction.m
        assert m == 3**4
        expected = m + math.ceil(m**0.5)
        assert reduction.query_graph.num_edges == expected

    def test_custom_edge_budget(self):
        graph = complete_graph(3)
        budget = lambda m: 2 * m
        reduction = sparse_clique_to_qon(
            graph, k_yes=3, k_no=1, tau=0.5, edge_budget=budget, alpha=4, rng=1
        )
        assert reduction.query_graph.num_edges == 2 * reduction.m

    def test_query_graph_connected(self):
        graph = complete_graph(3)
        reduction = sparse_clique_to_qon(
            graph, k_yes=3, k_no=1, tau=0.5, alpha=4, rng=2
        )
        assert reduction.query_graph.is_connected()

    def test_original_subgraph_preserved(self):
        graph = turan_graph(4, 2)
        reduction = sparse_clique_to_qon(
            graph, k_yes=4, k_no=2, tau=0.5, alpha=4, rng=3
        )
        for u, v in graph.edges:
            assert reduction.query_graph.has_edge(u, v)

    def test_statistics_by_side(self):
        graph = complete_graph(3)
        reduction = sparse_clique_to_qon(
            graph, k_yes=3, k_no=1, tau=0.5, alpha=4, rng=4
        )
        instance = reduction.instance
        n = reduction.n
        # Original side.
        assert instance.size(0) == reduction.relation_size
        assert instance.selectivity(0, 1) == Fraction(1, 4)
        # Auxiliary side.
        assert instance.size(n) == reduction.aux_relation_size
        # Bridge edge {0, n}.
        assert instance.selectivity(0, n) == Fraction(1, reduction.beta)

    def test_budget_too_small_rejected(self):
        graph = complete_graph(3)
        with pytest.raises(ValidationError):
            sparse_clique_to_qon(
                graph, k_yes=3, k_no=1, tau=0.5,
                edge_budget=lambda m: m // 2, alpha=4,
            )

    def test_dominance_flag(self):
        graph = complete_graph(3)
        small_alpha = sparse_clique_to_qon(
            graph, k_yes=3, k_no=1, tau=0.5, alpha=4, rng=5
        )
        assert not small_alpha.dominance_ok

    def test_gap_with_moderate_alpha(self):
        """Even without full dominance the padded YES instance beats the
        padded NO instance when alpha is moderately large (the
        auxiliary perturbation is alpha-independent)."""
        alpha = 4**10
        yes = sparse_clique_to_qon(
            complete_graph(4), k_yes=4, k_no=2, tau=1.0, alpha=alpha, rng=6
        )
        no = sparse_clique_to_qon(
            turan_graph(4, 2), k_yes=4, k_no=2, tau=1.0, alpha=alpha, rng=6
        )
        # Perturbation budget from the auxiliary side.
        slack = float(yes.aux_perturbation_log2())
        yes_cost = greedy_min_cost(yes.instance.to_log_domain())
        no_cost = greedy_min_cost(no.instance.to_log_domain())
        assert log2_of(no_cost.cost) > log2_of(yes_cost.cost) - slack

    def test_yes_bound_matches_dense_formula(self):
        graph = complete_graph(3)
        reduction = sparse_clique_to_qon(
            graph, k_yes=3, k_no=1, tau=0.5, alpha=4, rng=7
        )
        from repro.core.gap import k_cd

        assert reduction.yes_cost_bound() == k_cd(
            4, reduction.edge_access_cost, reduction.k_yes, reduction.k_no
        )


class TestSparseFH:
    def test_shape(self):
        graph = complete_graph(3)
        reduction = sparse_clique_to_qoh(graph, tau=0.5, alpha=4**4, rng=8)
        m = reduction.m
        assert m == 3**4
        expected = m + math.ceil(m**0.5)
        assert reduction.query_graph.num_edges == expected
        assert reduction.instance.num_relations == m

    def test_hub_edges_and_selectivities(self):
        graph = complete_graph(3)
        reduction = sparse_clique_to_qoh(graph, tau=0.5, alpha=4**4, rng=9)
        instance = reduction.instance
        n = reduction.n
        for i in range(n):
            assert instance.graph.has_edge(0, i + 1)
            assert instance.selectivity(0, i + 1) == Fraction(1, 2**n)
        # Auxiliary relations have size 2^n and selectivity 1/2 edges.
        assert instance.size(n + 1) == 2**n

    def test_hub_still_pinned_first(self):
        from repro.hashjoin.optimizer import is_feasible_sequence

        graph = complete_graph(3)
        reduction = sparse_clique_to_qoh(graph, tau=0.5, alpha=4**4, rng=10)
        order = list(range(reduction.instance.num_relations))
        assert is_feasible_sequence(reduction.instance, order)
        swapped = [1, 0] + order[2:]
        assert not is_feasible_sequence(reduction.instance, swapped)

    def test_requires_divisible_by_three(self):
        with pytest.raises(ValidationError):
            sparse_clique_to_qoh(complete_graph(4), tau=0.5, alpha=4**4)
