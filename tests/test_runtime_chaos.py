"""Chaos suite for the resilience layer (``repro.runtime.resilience``).

Deterministic fault injection exercises every failure path without
real crashes (plus one test with a *real* SIGKILL of a journaled
sweep subprocess).  The load-bearing property throughout: a resilient
sweep's outcomes are a pure function of its tasks — independent of
schedule, worker placement, injected faults that were retried away,
and how many times the sweep was interrupted — so resumed, retried
and chaos-ridden sweeps are bit-identical to clean ones.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runtime.journal import (
    SCHEMA as JOURNAL_SCHEMA,
    completed_by_fingerprint,
    read_journal,
    record_to_outcome,
    task_fingerprint,
)
from repro.runtime.metrics import (
    FAILURE_KINDS,
    sweep_metrics,
    validate_metrics,
    write_metrics,
)
from repro.runtime.resilience import (
    FaultInjected,
    FaultInjection,
    FaultPlan,
    RetryPolicy,
    apply_fault,
    resume_sweep,
    run_resilient_sweep,
)
from repro.runtime.runner import (
    OPTIMIZERS,
    SweepTask,
    SweepTimeout,
    WorkerDied,
    grid_tasks,
)
from repro.utils.validation import ValidationError
from repro.workloads.queries import random_query

REPO_ROOT = Path(__file__).resolve().parents[1]


def _tasks(optimizers=("dp", "greedy-cost"), seeds=2):
    instances = [
        (f"c-s{seed}", random_query(5, rng=seed)) for seed in range(seeds)
    ]
    return grid_tasks(list(optimizers), instances)


def _no_sleep(_delay):
    return None


def assert_equivalent(actual, expected):
    """Bit-identical outcomes: costs, sequences, explored, cache."""
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        assert (a.index, a.optimizer, a.label) == (
            b.index, b.optimizer, b.label,
        )
        assert a.ok and b.ok
        assert a.result.cost == b.result.cost
        assert type(a.result.cost) is type(b.result.cost)
        assert a.result.sequence == b.result.sequence
        assert a.explored == b.explored
        assert a.cache == b.cache
    assert actual.cache_totals() == expected.cache_totals()


def plan_of(*faults):
    return FaultPlan(faults=tuple(FaultInjection(*f) for f in faults))


class TestFaultPlan:
    def test_lookup_is_exact(self):
        plan = plan_of((2, 1, "error"))
        assert plan.fault_for(2, 1) == "error"
        assert plan.fault_for(2, 0) is None
        assert plan.fault_for(1, 1) is None

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValidationError):
            plan_of((0, 0, "meteor-strike"))

    def test_seeded_is_reproducible(self):
        a = FaultPlan.seeded(7, num_tasks=10, max_attempt=2)
        b = FaultPlan.seeded(7, num_tasks=10, max_attempt=2)
        assert a == b
        kinds = {fault.kind for fault in a.faults}
        assert kinds == {"timeout", "error", "worker-kill"}

    def test_apply_fault_raises_the_right_exception(self):
        with pytest.raises(SweepTimeout):
            apply_fault("timeout", index=0, attempt=0)
        with pytest.raises(FaultInjected):
            apply_fault("error", index=0, attempt=0)
        # Serial mode: worker-kill degrades to a catchable exception.
        with pytest.raises(WorkerDied):
            apply_fault("worker-kill", index=0, attempt=0)


class TestRetry:
    def test_retry_until_success(self):
        tasks = _tasks()
        chaotic = run_resilient_sweep(
            tasks, workers=1, retry=RetryPolicy(attempts=2),
            fault_plan=plan_of((0, 0, "error")), sleep=_no_sleep,
        )
        clean = run_resilient_sweep(tasks, workers=1)
        assert chaotic.retries == 1
        assert chaotic.outcomes[0].attempts == 2
        assert all(o.attempts == 1 for o in chaotic.outcomes[1:])
        assert_equivalent(chaotic, clean)

    def test_retry_exhaustion_keeps_taxonomy(self):
        tasks = _tasks()
        result = run_resilient_sweep(
            tasks, workers=1, retry=RetryPolicy(attempts=2),
            fault_plan=plan_of((0, 0, "error"), (0, 1, "error")),
            sleep=_no_sleep,
        )
        failed = result.outcomes[0]
        assert not failed.ok
        assert failed.failure == "error"
        assert failed.attempts == 2
        assert "FaultInjected" in failed.error
        assert all(o.ok for o in result.outcomes[1:])
        assert result.failure_counts() == {"error": 1}

    def test_three_failure_kinds_surface_distinct_labels(self):
        """Acceptance: >= 3 injected kinds, distinct taxonomy labels."""
        tasks = _tasks()
        plan = plan_of(
            (0, 0, "timeout"), (0, 1, "timeout"),
            (1, 0, "error"), (1, 1, "error"),
            (2, 0, "worker-kill"), (2, 1, "worker-kill"),
        )
        result = run_resilient_sweep(
            tasks, workers=1, retry=RetryPolicy(attempts=2),
            fault_plan=plan, sleep=_no_sleep,
        )
        labels = [o.failure for o in result.outcomes]
        assert labels == ["timeout", "error", "worker-died", None]
        assert result.outcomes[0].timed_out
        payload = sweep_metrics(result, grid={"purpose": "chaos"})
        validate_metrics(payload)
        recorded = [t["failure"] for t in payload["tasks"]]
        assert recorded == labels
        distinct = {label for label in recorded if label is not None}
        assert len(distinct) == 3
        assert distinct < set(FAILURE_KINDS)
        assert payload["totals"]["retries"] == 3

    def test_metrics_round_trip_with_failures(self, tmp_path):
        result = run_resilient_sweep(
            _tasks(), workers=1, retry=RetryPolicy(attempts=2),
            fault_plan=plan_of((0, 0, "timeout")), sleep=_no_sleep,
        )
        payload = sweep_metrics(result, grid={})
        path = write_metrics(payload, tmp_path / "chaos-metrics.json")
        assert json.loads(path.read_text())["totals"]["retries"] == 1

    def test_metrics_validation_rejects_bad_failure_label(self):
        payload = sweep_metrics(
            run_resilient_sweep(_tasks(), workers=1), grid={}
        )
        payload["tasks"][0]["failure"] = "gremlins"
        with pytest.raises(ValidationError):
            validate_metrics(payload)


class TestBackoff:
    def test_schedule_is_deterministic(self):
        policy = RetryPolicy(attempts=4, backoff=0.5)
        assert policy.delays() == (0.5, 1.0, 2.0)
        assert policy.delays() == RetryPolicy(attempts=4, backoff=0.5).delays()

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(attempts=6, backoff=1.0, max_delay=3.0)
        assert policy.delays() == (1.0, 2.0, 3.0, 3.0, 3.0)

    def test_sweep_sleeps_exactly_the_schedule(self):
        recorded = []
        policy = RetryPolicy(attempts=3, backoff=0.25)
        run_resilient_sweep(
            _tasks(), workers=1, retry=policy,
            fault_plan=plan_of((0, 0, "error"), (0, 1, "error")),
            sleep=recorded.append,
        )
        assert recorded == [0.25, 0.5]
        assert tuple(recorded) == policy.delays()

    def test_policy_rejects_nonsense(self):
        with pytest.raises(ValidationError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValidationError):
            RetryPolicy(factor=0.5)


class TestWorkerKillRecovery:
    def test_serial_simulation_recovers_via_retry(self):
        tasks = _tasks()
        result = run_resilient_sweep(
            tasks, workers=1, retry=RetryPolicy(attempts=2),
            fault_plan=plan_of((1, 0, "worker-kill")), sleep=_no_sleep,
        )
        assert result.retries == 1
        assert result.outcomes[1].attempts == 2
        assert_equivalent(result, run_resilient_sweep(tasks, workers=1))

    def test_parallel_real_kill_respawns_pool(self):
        tasks = _tasks()
        result = run_resilient_sweep(
            tasks, workers=2, retry=RetryPolicy(attempts=3),
            fault_plan=plan_of((1, 0, "worker-kill")), sleep=_no_sleep,
        )
        if result.mode != "parallel":
            pytest.skip("no process pool available here")
        assert result.recovered_workers >= 1
        assert all(o.ok for o in result)
        # Task isolation makes parallel-with-chaos == clean-serial.
        assert_equivalent(result, run_resilient_sweep(tasks, workers=1))
        payload = sweep_metrics(result, grid={})
        assert payload["totals"]["recovered_workers"] >= 1

    def test_pool_creation_failure_falls_back_to_serial(self, monkeypatch):
        from repro.runtime import resilience as resilience_mod

        def explode(*_args, **_kwargs):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(resilience_mod, "_make_executor", explode)
        result = run_resilient_sweep(_tasks(), workers=4)
        assert result.mode == "serial"
        assert all(o.ok for o in result)


class TestJournal:
    def test_journal_has_header_and_valid_records(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        tasks = _tasks()
        run_resilient_sweep(tasks, workers=1, journal=journal)
        meta, records = read_journal(journal)
        assert meta["tasks"] == len(tasks)
        assert len(records) == len(tasks)
        header = json.loads(journal.read_text().splitlines()[0])
        assert header["schema"] == JOURNAL_SCHEMA
        fingerprints = {r["fingerprint"] for r in records}
        assert fingerprints == {
            task_fingerprint(i, t) for i, t in enumerate(tasks)
        }

    def test_records_round_trip_outcomes_exactly(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        tasks = _tasks()
        result = run_resilient_sweep(tasks, workers=1, journal=journal)
        _, records = read_journal(journal)
        by_fp = completed_by_fingerprint(records)
        for index, task in enumerate(tasks):
            stored = record_to_outcome(by_fp[task_fingerprint(index, task)])
            original = result.outcomes[index]
            assert stored.result.cost == original.result.cost
            assert stored.result.sequence == original.result.sequence
            assert stored.explored == original.explored
            assert stored.cache == original.cache
            assert stored.attempts == original.attempts

    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        tasks = _tasks()
        run_resilient_sweep(tasks, workers=1, journal=journal)
        with journal.open("a") as handle:
            handle.write('{"record": "task", "finge')  # SIGKILL mid-write
        _, records = read_journal(journal)
        assert len(records) == len(tasks)

    def test_corrupt_middle_line_raises(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_resilient_sweep(_tasks(), workers=1, journal=journal)
        lines = journal.read_text().splitlines()
        lines[2] = "not json at all"
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValidationError):
            read_journal(journal)

    def test_wrong_schema_rejected(self, tmp_path):
        journal = tmp_path / "bogus.jsonl"
        journal.write_text('{"schema": "repro.sweep/1", "meta": {}}\n')
        with pytest.raises(ValidationError):
            read_journal(journal)

    def test_fingerprint_tracks_task_content(self):
        tasks = _tasks()
        base = task_fingerprint(0, tasks[0])
        assert task_fingerprint(1, tasks[0]) != base
        assert task_fingerprint(0, tasks[1]) != base
        assert task_fingerprint(0, tasks[0].with_kwargs(rng=3)) != base
        assert task_fingerprint(0, tasks[0]) == base


class TestResume:
    def test_crash_midway_then_resume_is_bit_identical_serial(self, tmp_path):
        """The golden test: interrupted + resumed == uninterrupted."""
        tasks = _tasks(optimizers=("dp", "bnb", "greedy-cost"), seeds=2)
        uninterrupted = run_resilient_sweep(tasks, workers=1)

        journal = tmp_path / "crashed.jsonl"
        # Simulate dying after 3 of 6 tasks: journal only a prefix.
        run_resilient_sweep(tasks[:3], workers=1, journal=journal)
        resumed = run_resilient_sweep(
            tasks, workers=1, journal=journal,
            completed={
                i: record_to_outcome(r)
                for i, r in enumerate(read_journal(journal)[1])
            },
            resumed=3,
        )
        assert resumed.resumed == 3
        assert_equivalent(resumed, uninterrupted)

    def test_resume_sweep_skips_completed_tasks(self, tmp_path):
        tasks = _tasks()
        journal = tmp_path / "sweep.jsonl"
        run_resilient_sweep(tasks[:2], workers=1, journal=journal)
        resumed = resume_sweep(journal, tasks, workers=1)
        assert resumed.resumed == 2
        assert_equivalent(resumed, run_resilient_sweep(tasks, workers=1))
        # The journal now covers everything: a second resume runs nothing.
        again = resume_sweep(journal, tasks, workers=1)
        assert again.resumed == len(tasks)
        assert_equivalent(again, resumed)

    def test_resume_parallel_matches_uninterrupted(self, tmp_path):
        tasks = _tasks(optimizers=("dp", "bnb", "greedy-cost"), seeds=2)
        journal = tmp_path / "crashed.jsonl"
        run_resilient_sweep(tasks[:3], workers=1, journal=journal)
        resumed = resume_sweep(journal, tasks, workers=2)
        if resumed.mode != "parallel":
            pytest.skip("no process pool available here")
        assert resumed.resumed == 3
        assert_equivalent(resumed, run_resilient_sweep(tasks, workers=1))

    def test_resume_ignores_foreign_fingerprints(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_resilient_sweep(_tasks(), workers=1, journal=journal)
        different = grid_tasks(
            ["dp", "greedy-cost"],
            [(f"c-s{seed}", random_query(5, rng=seed + 10))
             for seed in range(2)],
        )
        resumed = resume_sweep(journal, different, workers=1)
        assert resumed.resumed == 0
        assert all(o.ok for o in resumed)

    def test_resumed_metrics_validate(self, tmp_path):
        tasks = _tasks()
        journal = tmp_path / "sweep.jsonl"
        run_resilient_sweep(tasks[:2], workers=1, journal=journal)
        resumed = resume_sweep(journal, tasks, workers=1)
        payload = sweep_metrics(resumed, grid={"resumed": True})
        validate_metrics(payload)
        assert payload["totals"]["resumed_tasks"] == 2


def _interruptible(instance, flag="", **_kwargs):
    if flag and os.path.exists(flag):
        raise KeyboardInterrupt()
    return OPTIMIZERS["greedy-cost"](instance)


class TestCancellation:
    def test_interrupt_cancels_rest_and_resume_reruns_them(self, tmp_path):
        flag = tmp_path / "explode"
        flag.write_text("boom")
        instance = random_query(5, rng=0)
        tasks = [
            SweepTask(optimizer="dp", instance=instance, label="before"),
            SweepTask(
                optimizer=_interruptible, instance=instance, label="ki",
                kwargs=(("flag", str(flag)),),
            ),
            SweepTask(optimizer="dp", instance=instance, label="after"),
        ]
        journal = tmp_path / "sweep.jsonl"
        interrupted = run_resilient_sweep(tasks, workers=1, journal=journal)
        assert interrupted.outcomes[0].ok
        assert interrupted.outcomes[1].failure == "cancelled"
        assert interrupted.outcomes[2].failure == "cancelled"
        assert interrupted.outcomes[2].attempts == 0
        assert not interrupted.outcomes[1].ok
        # Only the completed task was journaled.
        _, records = read_journal(journal)
        assert len(records) == 1
        # Clear the tripwire; resume re-runs exactly the cancelled tasks.
        flag.unlink()
        resumed = resume_sweep(journal, tasks, workers=1)
        assert resumed.resumed == 1
        assert all(o.ok for o in resumed)
        clean = run_resilient_sweep(tasks, workers=1)
        assert_equivalent(resumed, clean)

    def test_cancelled_outcomes_validate_in_metrics(self, tmp_path):
        flag = tmp_path / "explode"
        flag.write_text("boom")
        instance = random_query(5, rng=0)
        tasks = [
            SweepTask(
                optimizer=_interruptible, instance=instance, label="ki",
                kwargs=(("flag", str(flag)),),
            ),
            SweepTask(optimizer="dp", instance=instance, label="after"),
        ]
        result = run_resilient_sweep(tasks, workers=1)
        payload = sweep_metrics(result, grid={})
        validate_metrics(payload)
        assert [t["failure"] for t in payload["tasks"]] == [
            "cancelled", "cancelled",
        ]


def _sigkill_self(instance, **_kwargs):  # pragma: no cover - dies
    os.kill(os.getpid(), signal.SIGKILL)


def _crash_main(journal_path):  # pragma: no cover - run in a subprocess
    """Entry point for the real-SIGKILL test: die on the third task."""
    tasks = _tasks(optimizers=("dp", "bnb", "greedy-cost"), seeds=2)
    tasks[2] = SweepTask(
        optimizer=_sigkill_self,
        instance=tasks[2].instance,
        label=tasks[2].label,
    )
    run_resilient_sweep(tasks, workers=1, journal=journal_path)


class TestRealSigkill:
    def test_sigkilled_sweep_resumes_bit_identically(self, tmp_path):
        """Acceptance: SIGKILL mid-sweep, resume, bit-identical result."""
        journal = tmp_path / "sweep.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        )
        process = subprocess.run(
            [
                sys.executable, "-c",
                "from tests.test_runtime_chaos import _crash_main; "
                f"_crash_main({str(journal)!r})",
            ],
            env=env, cwd=REPO_ROOT, capture_output=True, timeout=120,
        )
        assert process.returncode == -signal.SIGKILL, process.stderr.decode()
        _, records = read_journal(journal)
        assert len(records) == 2  # exactly the tasks that finished

        tasks = _tasks(optimizers=("dp", "bnb", "greedy-cost"), seeds=2)
        resumed = resume_sweep(journal, tasks, workers=1)
        assert resumed.resumed == 2
        assert_equivalent(resumed, run_resilient_sweep(tasks, workers=1))


class TestTraceIntegration:
    def test_resilience_counters_land_on_the_root_span(self):
        result = run_resilient_sweep(
            _tasks(), workers=1, trace=True,
            retry=RetryPolicy(attempts=2),
            fault_plan=plan_of((0, 0, "error")), sleep=_no_sleep,
        )
        root = result.trace_records()[0]
        assert root["counters"]["retries"] == 1

    def test_trace_validates_end_to_end(self, tmp_path):
        from repro.observability import load_trace, write_trace

        result = run_resilient_sweep(
            _tasks(), workers=1, trace=True,
            retry=RetryPolicy(attempts=2),
            fault_plan=plan_of((0, 0, "timeout")), sleep=_no_sleep,
        )
        path = write_trace(
            result.trace_records(), tmp_path / "chaos.jsonl", meta={}
        )
        trace = load_trace(path)
        assert trace.records[0]["counters"]["retries"] == 1
