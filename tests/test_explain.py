"""Tests for the plan explainers and the new workload topologies."""

from fractions import Fraction

import pytest

from repro.graphs.graph import Graph
from repro.hashjoin.explain import explain_plan
from repro.hashjoin.instance import QOHInstance
from repro.hashjoin.optimizer import qoh_optimal
from repro.joinopt.explain import explain, probe_choices
from repro.joinopt.instance import QONInstance
from repro.joinopt.optimizers import dp_optimal, ikkbz
from repro.utils.validation import ValidationError
from repro.workloads.queries import grid_query, snowflake_query


@pytest.fixture
def chain_instance():
    graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
    return QONInstance(
        graph,
        [100, 50, 200, 10],
        {(0, 1): Fraction(1, 10), (1, 2): Fraction(1, 20), (2, 3): Fraction(1, 2)},
    )


class TestQONExplain:
    def test_contains_all_relations(self, chain_instance):
        text = explain(chain_instance, [0, 1, 2, 3])
        for name in ("R0", "R1", "R2", "R3"):
            assert name in text

    def test_total_cost_line(self, chain_instance):
        text = explain(chain_instance, [0, 1, 2, 3])
        assert "total cost C(Z) = 30500" in text

    def test_custom_names(self, chain_instance):
        text = explain(
            chain_instance, [0, 1, 2, 3],
            relation_names=["customers", "orders", "items", "parts"],
        )
        assert "scan customers" in text
        assert "orders" in text

    def test_cartesian_flagged(self, chain_instance):
        text = explain(chain_instance, [0, 3, 1, 2])
        assert "CARTESIAN product" in text

    def test_probe_choices(self, chain_instance):
        # Sequence 1,0,2,3: R2 probes via R1 (w=10 < t2=200 via R0).
        choices = probe_choices(chain_instance, [1, 0, 2, 3])
        assert choices == [1, 1, 2]

    def test_huge_numbers_render_log2(self):
        from repro.core.reductions.clique_to_qon import clique_to_qon
        from repro.graphs.generators import complete_graph

        reduction = clique_to_qon(complete_graph(6), k_yes=6, k_no=2, alpha=4**20)
        text = explain(reduction.instance, list(range(6)))
        assert "2^" in text

    def test_bad_sequence_rejected(self, chain_instance):
        with pytest.raises(ValidationError):
            explain(chain_instance, [0, 1, 2])


class TestQOHExplain:
    def test_renders_pipelines(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        instance = QOHInstance(
            graph,
            [64, 32, 128, 16],
            {(0, 1): Fraction(1, 8), (1, 2): Fraction(1, 16), (2, 3): Fraction(1, 4)},
            memory=64,
        )
        plan = qoh_optimal(instance)
        text = explain_plan(instance, plan)
        assert "pipeline 1" in text
        assert "build hash" in text
        assert "total cost" in text

    def test_starvation_annotated(self):
        from repro.workloads.gaps import qoh_gap_pair
        from repro.core.certificates import qoh_certificate_plan

        pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
        plan = qoh_certificate_plan(pair.yes_reduction, pair.yes_clique)
        text = explain_plan(pair.yes_reduction.instance, plan)
        assert "starved" in text
        assert "pipeline 5" in text


class TestNewWorkloads:
    def test_snowflake_is_tree(self):
        instance = snowflake_query(3, 2, rng=0)
        graph = instance.graph
        assert graph.is_connected()
        assert graph.num_edges == graph.num_vertices - 1

    def test_snowflake_ikkbz_optimal(self):
        instance = snowflake_query(2, 2, rng=1)
        assert ikkbz(instance).cost == dp_optimal(
            instance, allow_cartesian=False
        ).cost

    def test_snowflake_shape(self):
        instance = snowflake_query(4, 0, rng=2)
        assert instance.graph.num_vertices == 5
        assert instance.graph.degree(0) == 4

    def test_grid_shape(self):
        instance = grid_query(3, 4, rng=3)
        assert instance.graph.num_vertices == 12
        assert instance.graph.num_edges == 3 * 3 + 2 * 4
        assert instance.graph.is_connected()

    def test_grid_validation(self):
        with pytest.raises(ValidationError):
            grid_query(1, 5)
