"""Property-based invariants of the QO_H cost machinery."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.hashjoin.allocation import allocate_memory
from repro.hashjoin.cost_model import HashJoinCostModel
from repro.hashjoin.instance import QOHInstance
from repro.hashjoin.optimizer import best_decomposition
from repro.hashjoin.pipeline import PipelineDecomposition, decomposition_cost


@st.composite
def qoh_instances(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    extra = draw(st.lists(st.sampled_from(all_pairs), unique=True)) if all_pairs else []
    # Thread a path for connectivity.
    edges = sorted(set(extra) | {(i, i + 1) for i in range(n - 1)})
    graph = Graph(n, edges)
    sizes = [draw(st.integers(min_value=4, max_value=400)) for _ in range(n)]
    selectivities = {
        edge: Fraction(1, draw(st.integers(min_value=1, max_value=20)))
        for edge in graph.edges
    }
    memory = draw(st.integers(min_value=8, max_value=500))
    return QOHInstance(graph, sizes, selectivities, memory=memory)


@settings(max_examples=40, deadline=None)
@given(qoh_instances(), st.randoms(use_true_random=False))
def test_property_dp_below_every_decomposition(instance, rng):
    """The breakpoint DP never exceeds any explicit decomposition."""
    n = instance.num_relations
    sequence = list(range(n))
    rng.shuffle(sequence)
    plan = best_decomposition(instance, sequence)
    num_joins = n - 1
    for mask in range(1 << (num_joins - 1)):
        breaks = [k for k in range(1, num_joins) if mask >> (k - 1) & 1]
        decomposition = PipelineDecomposition.from_breaks(num_joins, breaks)
        cost = decomposition_cost(instance, sequence, decomposition)
        if cost is None:
            continue
        assert plan is not None
        assert plan.cost <= cost


@settings(max_examples=40, deadline=None)
@given(qoh_instances())
def test_property_cost_monotone_in_memory(instance):
    """More memory never makes the optimal plan more expensive."""
    sequence = list(range(instance.num_relations))
    plan = best_decomposition(instance, sequence)
    richer = QOHInstance(
        instance.graph,
        list(instance.sizes),
        {edge: instance.selectivity(*edge) for edge in instance.graph.edges},
        memory=instance.memory * 2,
        model=instance.model,
    )
    richer_plan = best_decomposition(richer, sequence)
    if plan is None:
        return  # infeasible stays comparable only when both exist
    assert richer_plan is not None
    assert richer_plan.cost <= plan.cost


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=4, max_value=10_000),
    st.integers(min_value=1, max_value=10_000),
)
def test_property_h_bounds(inner, outer):
    """h is between the pure scan b_S and the starved Theta(b_R+b_S)."""
    model = HashJoinCostModel()
    floor = model.hjmin(inner)
    for memory in {floor, (floor + inner) // 2, inner}:
        cost = model.h(memory, outer, inner)
        assert cost >= inner
        assert cost <= (outer + inner) * model.g_scale + inner


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5_000),
            st.integers(min_value=4, max_value=500),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_property_allocation_uses_all_useful_memory(joins):
    """The greedy split leaves spare memory only when every hash table
    is fully resident."""
    model = HashJoinCostModel()
    outers = [Fraction(outer) for outer, _ in joins]
    inners = [inner for _, inner in joins]
    memory = sum(inners) + 10  # plenty
    result = allocate_memory(model, outers, inners, memory)
    assert result is not None
    assert result.starved == ()
    assert result.total_join_cost == sum(inners)
