"""Tests for the QO_H substrate: cost model, allocation, pipelines, search."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.hashjoin.allocation import allocate_memory
from repro.hashjoin.cost_model import HashJoinCostModel, ceil_root
from repro.hashjoin.instance import QOHInstance
from repro.hashjoin.optimizer import (
    best_decomposition,
    feasible_sequences,
    is_feasible_sequence,
    qoh_greedy,
    qoh_optimal,
)
from repro.hashjoin.pipeline import (
    Pipeline,
    PipelineDecomposition,
    decomposition_cost,
    pipeline_allocation,
    pipeline_cost,
)
from repro.utils.validation import ValidationError


@pytest.fixture
def small_instance():
    """Path query 0-1-2-3, selective predicates, moderate memory."""
    graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
    return QOHInstance(
        graph,
        [64, 32, 128, 16],
        {(0, 1): Fraction(1, 8), (1, 2): Fraction(1, 16), (2, 3): Fraction(1, 4)},
        memory=64,
    )


class TestCeilRoot:
    def test_exact_square(self):
        assert ceil_root(16, 2) == 4

    def test_rounds_up(self):
        assert ceil_root(17, 2) == 5

    def test_degree_one(self):
        assert ceil_root(7, 1) == 7

    def test_zero_and_one(self):
        assert ceil_root(0, 3) == 0
        assert ceil_root(1, 5) == 1

    def test_big_values(self):
        value = (10**50 + 3) ** 2
        assert ceil_root(value, 2) == 10**50 + 3

    @given(st.integers(min_value=0, max_value=10**18), st.integers(min_value=1, max_value=5))
    def test_property_ceiling(self, value, degree):
        root = ceil_root(value, degree)
        assert root**degree >= value
        if root > 0:
            assert (root - 1) ** degree < value


class TestCostModel:
    def test_hjmin_sqrt(self):
        model = HashJoinCostModel()
        assert model.hjmin(100) == 10
        assert model.hjmin(101) == 11

    def test_hjmin_other_psi(self):
        model = HashJoinCostModel(psi=Fraction(1, 3))
        assert model.hjmin(27) == 3
        assert model.hjmin(28) == 4

    def test_psi_bounds(self):
        with pytest.raises(ValidationError):
            HashJoinCostModel(psi=Fraction(1))
        with pytest.raises(ValidationError):
            HashJoinCostModel(psi=Fraction(0))

    def test_g_zero_when_fits(self):
        model = HashJoinCostModel()
        assert model.g(100, 100) == 0
        assert model.g(150, 100) == 0

    def test_g_max_at_floor(self):
        model = HashJoinCostModel()
        assert model.g(10, 100) == 1  # g_scale at hjmin

    def test_g_linear_midpoint(self):
        model = HashJoinCostModel()
        # span = 90; at m = 55 the overhead is (100-55)/90 = 1/2.
        assert model.g(55, 100) == Fraction(1, 2)

    def test_g_below_floor_rejected(self):
        model = HashJoinCostModel()
        with pytest.raises(ValidationError):
            model.g(9, 100)

    def test_h_in_memory_join(self):
        model = HashJoinCostModel()
        # Inner fits: cost is just reading the inner once.
        assert model.h(128, 1000, 128) == 128

    def test_h_starved_join(self):
        model = HashJoinCostModel()
        # At the floor the paper requires Theta(b_R + b_S) + b_S.
        assert model.h(10, 200, 100) == (200 + 100) * 1 + 100

    def test_h_monotone_in_memory(self):
        model = HashJoinCostModel()
        costs = [model.h(m, 500, 100) for m in (10, 40, 70, 100)]
        assert costs == sorted(costs, reverse=True)


class TestAllocation:
    def test_everything_fits(self):
        model = HashJoinCostModel()
        result = allocate_memory(model, [Fraction(100)], [64], memory=64)
        assert result.allocation == (Fraction(64),)
        assert result.starved == ()
        assert result.total_join_cost == 64

    def test_infeasible_returns_none(self):
        model = HashJoinCostModel()
        assert allocate_memory(model, [Fraction(10)], [10_000], memory=50) is None

    def test_starves_smallest_outer(self):
        """Lemma 10: minimum memory goes to the joins with the smallest
        outer relations."""
        model = HashJoinCostModel()
        outers = [Fraction(1000), Fraction(10)]
        inners = [100, 100]
        # Memory for one full table plus one floor.
        result = allocate_memory(model, outers, inners, memory=110)
        assert result is not None
        assert result.allocation[0] == 100  # big outer gets the table
        assert result.allocation[1] == 10  # small outer starves
        assert result.starved == (1,)

    def test_budget_respected(self):
        model = HashJoinCostModel()
        result = allocate_memory(
            model, [Fraction(5), Fraction(7)], [50, 60], memory=80
        )
        assert sum(result.allocation) <= 80

    def test_allocation_never_exceeds_inner(self):
        model = HashJoinCostModel()
        result = allocate_memory(model, [Fraction(5)], [20], memory=500)
        assert result.allocation[0] == 20

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10_000),
                st.integers(min_value=4, max_value=400),
            ),
            min_size=1,
            max_size=5,
        ),
        st.integers(min_value=10, max_value=1000),
    )
    def test_property_greedy_is_optimal_vs_sampling(self, joins, memory):
        """The greedy fill beats random feasible allocations."""
        import random

        model = HashJoinCostModel()
        outers = [Fraction(outer) for outer, _ in joins]
        inners = [inner for _, inner in joins]
        result = allocate_memory(model, outers, inners, memory)
        floors = [model.hjmin(b) for b in inners]
        if result is None:
            assert sum(floors) > memory
            return
        rng = random.Random(0)
        for _ in range(20):
            # Random feasible allocation.
            spare = memory - sum(floors)
            alloc = [Fraction(f) for f in floors]
            for index in range(len(alloc)):
                if spare <= 0:
                    break
                grant = min(
                    Fraction(rng.randint(0, int(spare))),
                    Fraction(inners[index]) - alloc[index],
                )
                grant = max(grant, 0)
                alloc[index] += grant
                spare -= grant
            cost = sum(
                model.h(alloc[i], outers[i], inners[i])
                for i in range(len(alloc))
            )
            assert cost >= result.total_join_cost


class TestPipeline:
    def test_from_breaks(self):
        deco = PipelineDecomposition.from_breaks(5, [2, 4])
        assert deco.pipelines == (
            Pipeline(1, 2), Pipeline(3, 4), Pipeline(5, 5)
        )

    def test_single(self):
        deco = PipelineDecomposition.single(4)
        assert deco.pipelines == (Pipeline(1, 4),)

    def test_fully_materialized(self):
        deco = PipelineDecomposition.fully_materialized(3)
        assert len(deco.pipelines) == 3

    def test_break_out_of_range(self):
        with pytest.raises(ValidationError):
            PipelineDecomposition.from_breaks(3, [3])

    def test_non_contiguous_rejected(self):
        with pytest.raises(ValidationError):
            PipelineDecomposition(
                (Pipeline(1, 2), Pipeline(4, 5))
            )

    def test_pipeline_cost_components(self, small_instance):
        seq = [0, 1, 2, 3]
        inter = small_instance.intermediate_sizes(seq)
        cost = pipeline_cost(small_instance, seq, Pipeline(1, 1), inter)
        # read N0 + h(inner fits?) + write N1
        assert cost is not None
        assert cost >= inter[0] + inter[1]

    def test_decomposition_cost_additive(self, small_instance):
        seq = [0, 1, 2, 3]
        full = decomposition_cost(
            small_instance, seq, PipelineDecomposition.fully_materialized(3)
        )
        parts = sum(
            pipeline_cost(small_instance, seq, Pipeline(k, k))
            for k in (1, 2, 3)
        )
        assert full == parts

    def test_allocation_view(self, small_instance):
        result = pipeline_allocation(small_instance, [0, 1, 2, 3], Pipeline(1, 3))
        assert result is not None
        assert sum(result.allocation) <= small_instance.memory


class TestOptimizer:
    def test_feasibility(self, small_instance):
        assert is_feasible_sequence(small_instance, [0, 1, 2, 3])

    def test_infeasible_big_inner(self):
        graph = Graph(2, [(0, 1)])
        instance = QOHInstance(
            graph, [10, 10_000], {(0, 1): Fraction(1, 2)}, memory=16
        )
        # hjmin(10_000) = 100 > 16: relation 1 can never be the inner.
        assert not is_feasible_sequence(instance, [0, 1])
        assert is_feasible_sequence(instance, [1, 0])
        sequences = list(feasible_sequences(instance))
        assert sequences == [(1, 0)]

    def test_best_decomposition_at_least_single_and_materialized(
        self, small_instance
    ):
        seq = [0, 1, 2, 3]
        best = best_decomposition(small_instance, seq)
        single = decomposition_cost(
            small_instance, seq, PipelineDecomposition.single(3)
        )
        materialized = decomposition_cost(
            small_instance, seq, PipelineDecomposition.fully_materialized(3)
        )
        for alternative in (single, materialized):
            if alternative is not None:
                assert best.cost <= alternative

    def test_best_decomposition_brute_force(self, small_instance):
        import itertools

        seq = [0, 1, 2, 3]
        best = best_decomposition(small_instance, seq)
        candidates = []
        for mask in range(4):
            breaks = [k for k in (1, 2) if mask >> (k - 1) & 1]
            deco = PipelineDecomposition.from_breaks(3, breaks)
            cost = decomposition_cost(small_instance, seq, deco)
            if cost is not None:
                candidates.append(cost)
        assert best.cost == min(candidates)

    def test_optimal_beats_greedy(self, small_instance):
        optimal = qoh_optimal(small_instance)
        greedy = qoh_greedy(small_instance)
        assert optimal is not None and greedy is not None
        assert optimal.cost <= greedy.cost

    def test_optimal_guard(self):
        graph = Graph(10, [(i, i + 1) for i in range(9)])
        instance = QOHInstance(
            graph,
            [16] * 10,
            {(i, i + 1): Fraction(1, 2) for i in range(9)},
            memory=64,
        )
        with pytest.raises(ValidationError):
            qoh_optimal(instance)

    def test_plan_cost_reproducible(self, small_instance):
        plan = qoh_optimal(small_instance)
        recomputed = decomposition_cost(
            small_instance, plan.sequence, plan.decomposition
        )
        assert recomputed == plan.cost
