"""Tests for the SQO-CP substrate, PARTITION and SPPCS."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.starqo.cost import join_costs, plan_cost, prefix_pages, prefix_tuples
from repro.starqo.instance import JoinMethod, SQOCPInstance, StarPlan
from repro.starqo.optimizer import best_plan, decide, enumerate_plans, feasible_sequences
from repro.starqo.partition import (
    PartitionInstance,
    find_partition,
    from_standard_instance,
    has_partition,
    verify_partition,
)
from repro.starqo.sppcs import (
    SPPCSInstance,
    sppcs_best_subset,
    sppcs_brute_force,
    sppcs_decide,
)
from repro.utils.validation import ValidationError

NL = JoinMethod.NESTED_LOOPS
SM = JoinMethod.SORT_MERGE


@pytest.fixture
def star3():
    """Central R0 (100 tuples) with three satellites."""
    return SQOCPInstance(
        num_satellites=3,
        sort_passes=4,
        page_size=8,
        tuples=[100, 50, 80, 40],
        pages=[100, 50, 80, 40],
        sort_costs=[400, 200, 320, 160],
        selectivities=[Fraction(1, 10), Fraction(1, 8), Fraction(1, 4)],
        satellite_access=[5, 10, 10],
        center_access=[100, 100, 100],
        threshold=None,
    )


class TestPartition:
    def test_yes(self):
        assert has_partition(PartitionInstance([2, 2, 4]))

    def test_no(self):
        assert not has_partition(PartitionInstance([2, 4, 8]))

    def test_witness_verifies(self):
        instance = PartitionInstance([6, 2, 4, 8, 10, 2])
        witness = find_partition(instance)
        assert witness is not None
        assert verify_partition(instance, witness)

    def test_zero_total(self):
        assert has_partition(PartitionInstance([0, 0]))

    def test_odd_total_rejected(self):
        with pytest.raises(ValidationError):
            PartitionInstance([1, 2])

    def test_from_standard_doubles(self):
        instance = from_standard_instance([1, 2, 3])
        assert instance.values == (2, 4, 6)
        assert has_partition(instance)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=8))
    def test_property_dp_matches_brute_force(self, raw):
        import itertools

        values = [2 * v for v in raw]
        instance = PartitionInstance(values)
        brute = any(
            sum(combo) == instance.half
            for r in range(len(values) + 1)
            for combo in itertools.combinations(values, r)
        )
        assert has_partition(instance) == brute


class TestSPPCS:
    def test_objective_empty_subset(self):
        instance = SPPCSInstance([(2, 3), (5, 7)], 100)
        assert instance.objective([]) == 1 + 3 + 7

    def test_objective_full_subset(self):
        instance = SPPCSInstance([(2, 3), (5, 7)], 100)
        assert instance.objective([0, 1]) == 10

    def test_decide(self):
        # Objectives: {} -> 11, {0} -> 9, {1} -> 8, {0,1} -> 10.
        assert sppcs_decide(SPPCSInstance([(2, 3), (5, 7)], 8))
        assert not sppcs_decide(SPPCSInstance([(2, 3), (5, 7)], 7))

    def test_zero_p_handled(self):
        instance = SPPCSInstance([(0, 100), (3, 1)], 5)
        best, subset = sppcs_best_subset(instance)
        assert best == instance.objective(subset)
        assert best <= 1  # include the zero: product 0, complement c=1

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=12),
                st.integers(min_value=0, max_value=20),
            ),
            min_size=1,
            max_size=7,
        )
    )
    def test_property_branch_bound_matches_brute(self, pairs):
        instance = SPPCSInstance(pairs, 0)
        assert sppcs_best_subset(instance)[0] == sppcs_brute_force(instance)[0]


class TestStarPlanModel:
    def test_method_count_enforced(self):
        with pytest.raises(ValidationError):
            StarPlan(sequence=(0, 1, 2), methods=(NL,))

    def test_feasibility(self, star3):
        assert star3.is_feasible_sequence((0, 2, 1, 3))
        assert star3.is_feasible_sequence((2, 0, 1, 3))
        assert not star3.is_feasible_sequence((2, 1, 0, 3))
        assert not star3.is_feasible_sequence((0, 1, 2))  # not a permutation

    def test_prefix_tuples(self, star3):
        # n(R0, R1) = 100 * 50 * 1/10 = 500.
        assert prefix_tuples(star3, (0, 1)) == 500
        # Adding R2: * 80 / 8 = 5000.
        assert prefix_tuples(star3, (0, 1, 2)) == 5000

    def test_prefix_pages_base_relation(self, star3):
        assert prefix_pages(star3, (2,)) == 80

    def test_prefix_tuples_requires_center(self, star3):
        with pytest.raises(ValidationError):
            prefix_tuples(star3, (1, 2))


class TestStarCosts:
    def test_first_join_nl_from_center(self, star3):
        plan = StarPlan((0, 1, 2, 3), (NL, NL, NL))
        costs = join_costs(star3, plan)
        # b0 + n0 * w_1 = 100 + 100*5.
        assert costs[0] == 600

    def test_first_join_nl_from_satellite(self, star3):
        plan = StarPlan((1, 0, 2, 3), (NL, NL, NL))
        costs = join_costs(star3, plan)
        # b1 + n1 * w_{0,1} = 50 + 50*100.
        assert costs[0] == 5050

    def test_first_join_sort_merge(self, star3):
        plan = StarPlan((0, 1, 2, 3), (SM, NL, NL))
        costs = join_costs(star3, plan)
        # C_sm = b0*ks + b1*ks = 400 + 200.
        assert costs[0] == 600

    def test_later_nl_cost(self, star3):
        plan = StarPlan((0, 1, 2, 3), (NL, NL, NL))
        costs = join_costs(star3, plan)
        # n(R0 R1) * w_2 = 500 * 10.
        assert costs[1] == 5000

    def test_later_sm_cost(self, star3):
        plan = StarPlan((0, 1, 2, 3), (NL, SM, NL))
        costs = join_costs(star3, plan)
        # b(W)(ks-1) + A_2 = 500*3 + 320.
        assert costs[1] == 1820

    def test_plan_cost_is_sum(self, star3):
        plan = StarPlan((0, 1, 2, 3), (NL, SM, NL))
        assert plan_cost(star3, plan) == sum(join_costs(star3, plan))

    def test_infeasible_plan_rejected(self, star3):
        plan = StarPlan((1, 2, 0, 3), (NL, NL, NL))
        with pytest.raises(ValidationError):
            plan_cost(star3, plan)


class TestStarOptimizer:
    def test_feasible_sequence_count(self, star3):
        # 3! starting with R0 plus 3 * 2! starting with a satellite.
        assert len(list(feasible_sequences(star3))) == 6 + 6

    def test_enumerate_plan_count(self, star3):
        # 12 sequences * 2^3 method vectors.
        assert len(list(enumerate_plans(star3))) == 12 * 8

    def test_best_matches_enumeration(self, star3):
        cost, plan = best_plan(star3)
        brute = min(plan_cost(star3, p) for p in enumerate_plans(star3))
        assert cost == brute
        assert plan_cost(star3, plan) == cost

    def test_decide_needs_threshold(self, star3):
        with pytest.raises(ValidationError):
            decide(star3)

    def test_guard(self):
        instance = SQOCPInstance(
            num_satellites=9,
            sort_passes=4,
            page_size=4,
            tuples=[10] * 10,
            pages=[10] * 10,
            sort_costs=[40] * 10,
            selectivities=[Fraction(1, 2)] * 9,
            satellite_access=[5] * 9,
            center_access=[10] * 9,
        )
        with pytest.raises(ValidationError):
            best_plan(instance)
