"""Property-level backfill for ``repro.engine`` (executor + hashsim).

The executor is the library's ground truth: it materializes a
synthetic database and *runs* the plan, so comparing its measured
counters to the cost model's closed forms tests both layers at once.
On harmonized instances the model is exact, which turns "roughly
agrees" into "equals" — every assertion here is an equality, not a
tolerance.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import permutations

from hypothesis import assume, given, settings, strategies as st

from repro import api
from repro.engine import execute_sequence, generate_database
from repro.engine.data import harmonize_sizes
from repro.engine.hashsim import simulate_hash_join
from repro.joinopt.cost import intermediate_sizes, join_costs
from repro.utils.validation import ValidationError

SMALL = dict(size_max=30, domain_max=8)
FAMILIES = sorted(api.FAMILIES)


def _instance(family, n, seed):
    return api.generate(family, n, seed=seed, **SMALL)


def _execute(instance, algorithm):
    """Run the plan, skipping draws whose *harmonized* sizes blow the
    executor's memory guards (harmonizing rounds sizes up to domain
    products, which on dense graphs can explode)."""
    try:
        return api.execute_plan(instance, algorithm=algorithm, harmonize=True)
    except ValidationError as exc:
        assume("guard" not in str(exc))
        raise


class TestExecutePlanMatchesModel:
    """``execute_plan`` measured counters == cost-model predictions."""

    @settings(max_examples=30, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        n=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=1_000),
        algorithm=st.sampled_from(["dp", "greedy-cost", "bnb"]),
    )
    def test_output_rows_equal_predicted_sizes(
        self, family, n, seed, algorithm
    ):
        if family == "cycle" and n < 3:
            n = 3
        report = _execute(_instance(family, n, seed), algorithm)
        assert report.exact
        measured = tuple(output for output, _probe in report.joins)
        assert measured == report.predicted_sizes
        assert report.result_rows == report.predicted_sizes[-1]

    @settings(max_examples=30, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        n=st.integers(min_value=3, max_value=5),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_probe_rows_dominate_output_rows(self, family, n, seed):
        """Probing fetches at least every surviving row."""
        report = _execute(_instance(family, n, seed), "dp")
        for output_rows, probe_rows in report.joins:
            assert probe_rows >= output_rows

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=5),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_predicted_costs_match_measured_probe_work(self, n, seed):
        """Measured probe_rows equals the model's H_i exactly:
        H_i counts only the chosen access path's probes, which is
        precisely what the executor's hash-index fetch meters."""
        report = _execute(_instance("random", n, seed), "dp")
        measured = tuple(probe for _output, probe in report.joins)
        assert measured == report.predicted_costs


class TestAllPermutations:
    """Exhaustive n<=4: every plan's reality matches its prediction."""

    def test_every_permutation_matches_model(self):
        for family in ("chain", "cycle", "clique", "random"):
            for seed in range(3):
                instance = harmonize_sizes(_instance(family, 4, seed))
                database = generate_database(instance)
                for sequence in permutations(range(4)):
                    trace = execute_sequence(
                        database, sequence, max_intermediate_rows=50_000_000
                    )
                    predicted = intermediate_sizes(instance, sequence)
                    measured = [j.output_rows for j in trace.joins]
                    assert measured == predicted, (family, seed, sequence)

    def test_every_permutation_probe_work_matches_h(self):
        for seed in range(3):
            instance = harmonize_sizes(_instance("random", 4, seed))
            database = generate_database(instance)
            for sequence in permutations(range(4)):
                trace = execute_sequence(
                    database, sequence, max_intermediate_rows=50_000_000
                )
                predicted = join_costs(instance, sequence)
                measured = [j.probe_rows for j in trace.joins]
                assert measured == predicted, (seed, sequence)

    def test_result_rows_are_plan_invariant(self):
        instance = harmonize_sizes(_instance("random", 4, 7))
        database = generate_database(instance)
        results = {
            execute_sequence(
                database, sequence, max_intermediate_rows=50_000_000
            ).result_rows
            for sequence in permutations(range(4))
        }
        assert len(results) == 1


class TestHashsimClosedForm:
    """The mechanical I/O count equals its documented closed form."""

    @settings(max_examples=100, deadline=None)
    @given(
        memory=st.integers(min_value=1, max_value=200),
        outer=st.integers(min_value=1, max_value=500),
        inner=st.integers(min_value=1, max_value=200),
    )
    def test_io_matches_closed_form(self, memory, outer, inner):
        simulated = simulate_hash_join(memory, outer, inner)
        m, b_r, b_s = Fraction(memory), Fraction(outer), Fraction(inner)
        if m >= b_s:
            assert simulated.total_io == b_s
        else:
            expected = b_s + 2 * (b_s - m) + 2 * b_r * (b_s - m) / b_s
            assert simulated.total_io == expected

    @settings(max_examples=50, deadline=None)
    @given(
        memory=st.integers(min_value=1, max_value=199),
        outer=st.integers(min_value=1, max_value=500),
        inner=st.integers(min_value=2, max_value=200),
    )
    def test_io_monotone_nonincreasing_in_memory(self, memory, outer, inner):
        more_memory = simulate_hash_join(memory + 1, outer, inner)
        less_memory = simulate_hash_join(memory, outer, inner)
        assert more_memory.total_io <= less_memory.total_io

    @settings(max_examples=50, deadline=None)
    @given(
        outer=st.integers(min_value=1, max_value=500),
        inner=st.integers(min_value=1, max_value=200),
    )
    def test_resident_endpoint(self, outer, inner):
        """At m = b_S the join degenerates to one build scan."""
        simulated = simulate_hash_join(inner, outer, inner)
        assert simulated.total_io == inner
        assert simulated.spill_writes == 0
        assert simulated.spill_reads == 0

    @settings(max_examples=50, deadline=None)
    @given(
        memory=st.integers(min_value=1, max_value=200),
        outer=st.integers(min_value=1, max_value=500),
        inner=st.integers(min_value=1, max_value=200),
    )
    def test_writes_equal_reads_for_spilled_pages(self, memory, outer, inner):
        """Every spilled page is written once and read back once."""
        simulated = simulate_hash_join(memory, outer, inner)
        assert simulated.spill_writes == simulated.spill_reads
        assert simulated.build_reads == inner
