"""Tests for the content-addressed registry and the chunked executor.

Four contracts, per ISSUE requirements:

* registry semantics — content-keyed dedup, live-tier object identity,
  eviction followed by transparent *refetch* (re-decode) from the
  payload tier, pass-through mode, counters;
* golden bit-identity — a chunked + registry parallel sweep produces
  outcome-for-outcome identical results (cost value, type and
  ``repr``, sequence, ``explored``, exact cache counters) to the
  serial runner, with ``cache=False`` so counters are
  schedule-independent;
* deterministic reassembly — ``imap_unordered`` completion order never
  leaks into outcome order (the module-docstring guarantee), and an
  inconsistent outcome set is rejected rather than silently returned;
* resilience under chunking — a worker killed mid-chunk re-queues at
  *task* granularity and the recovered sweep stays bit-identical.

Executor stats (``ship_bytes``/``registry_hits``/``kernels_compiled``/
``chunks``) describe scheduling, not results: the tests assert they
move in the right direction but never fold them into the bit-identity
comparison.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.journal import instance_token, task_fingerprint
from repro.runtime.metrics import sweep_metrics, validate_metrics
from repro.runtime.registry import (
    InstanceRef,
    InstanceRegistry,
    RegistryStats,
    instance_key,
)
from repro.runtime.resilience import (
    FaultInjection,
    FaultPlan,
    RetryPolicy,
    run_resilient_sweep,
)
from repro.runtime.runner import (
    ExecutorStats,
    TaskOutcome,
    auto_chunksize,
    grid_tasks,
    run_sweep,
    _reassemble,
)
from repro.utils.validation import ValidationError
from repro.workloads.queries import random_query


def _tasks(optimizers=("dp", "greedy-cost", "iterative"), seeds=2, n=5):
    """A grid that *repeats* instances across optimizers — the shape
    the registry dedups."""
    instances = [
        (f"reg-s{seed}", random_query(n, rng=seed)) for seed in range(seeds)
    ]
    kwargs = {
        (name, label): {
            "rng": 0, "restarts": 1, "neighborhood_samples": 4,
            "max_rounds": 2,
        }
        for name in optimizers if name == "iterative"
        for label, _ in instances
    }
    return grid_tasks(
        list(optimizers), instances,
        kwargs_for=lambda name, label: kwargs.get((name, label), {}),
    )


def assert_bit_identical(actual, expected):
    """Value, type AND repr of every cost; sequence, explored, exact
    cache counters.  Executor stats are deliberately excluded."""
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        assert (a.index, a.optimizer, a.label, a.ok) == (
            b.index, b.optimizer, b.label, b.ok,
        )
        assert a.result.cost == b.result.cost
        assert type(a.result.cost) is type(b.result.cost)
        assert repr(a.result.cost) == repr(b.result.cost)
        assert a.result.sequence == b.result.sequence
        assert a.explored == b.explored
        assert a.cache == b.cache
    assert actual.cache_totals() == expected.cache_totals()


# ---------------------------------------------------------------------
# instance_key / registry semantics
# ---------------------------------------------------------------------


class TestInstanceKey:
    def test_equal_content_distinct_objects_share_a_key(self):
        a = random_query(5, rng=3)
        b = pickle.loads(pickle.dumps(a))
        assert a is not b
        assert instance_key(a) == instance_key(b)

    def test_distinct_content_distinct_keys(self):
        assert instance_key(random_query(5, rng=0)) != instance_key(
            random_query(5, rng=1)
        )

    def test_agrees_with_journal_instance_token(self):
        instance = random_query(4, rng=7)
        assert instance_key(instance) == instance_token(instance)

    def test_graphless_instances_key_on_repr(self):
        assert instance_key((1, 2, "x")) == repr((1, 2, "x"))


class TestRegistry:
    def test_register_dedups_by_content(self):
        registry = InstanceRegistry()
        a = random_query(5, rng=0)
        b = pickle.loads(pickle.dumps(a))
        key_a = registry.register(a)
        key_b = registry.register(b)
        assert key_a == key_b
        assert len(registry) == 1
        assert registry.payload_bytes() == sum(
            len(blob) for blob in registry.payloads().values()
        )

    def test_live_hit_returns_the_same_object(self):
        registry = InstanceRegistry()
        instance = random_query(5, rng=0)
        key = registry.register(instance)
        assert registry.get(key) is instance
        assert registry.get(key) is instance
        stats = registry.stats()
        assert stats.hits == 2
        assert stats.decodes == 0

    def test_unregistered_key_raises(self):
        with pytest.raises(KeyError):
            InstanceRegistry().get("no-such-key")

    def test_eviction_then_refetch(self):
        """An evicted instance is transparently re-decoded from its
        payload — eviction is a memory/speed trade, never a loss."""
        registry = InstanceRegistry(max_live=1)
        first = random_query(5, rng=0)
        second = random_query(5, rng=1)
        key_first = registry.register(first)
        registry.register(second)  # evicts `first` from the live tier
        assert registry.stats().evictions == 1
        refetched = registry.get(key_first)
        assert refetched is not first  # decoded copy, not the original
        assert instance_key(refetched) == key_first  # same content
        assert registry.stats().decodes == 1
        # The refetched object is now live: next get is an identity hit.
        assert registry.get(key_first) is refetched

    def test_max_live_zero_is_pass_through(self):
        registry = InstanceRegistry(max_live=0)
        instance = random_query(5, rng=0)
        key = registry.register(instance)
        assert registry.canonical(key, instance) is instance
        first = registry.get(key)
        second = registry.get(key)
        assert first is not second  # nothing kept live: decode per get
        assert registry.stats().live == 0

    def test_canonical_dedups_decoded_instances(self):
        registry = InstanceRegistry(max_live=4)
        original = random_query(5, rng=0)
        copy = pickle.loads(pickle.dumps(original))
        assert registry.canonical("k", original) is original
        assert registry.canonical("k", copy) is original
        stats = registry.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.stored == 0  # canonical never touches payloads

    def test_from_payloads_round_trip(self):
        parent = InstanceRegistry()
        instance = random_query(5, rng=2)
        key = parent.register(instance)
        worker = InstanceRegistry.from_payloads(parent.payloads())
        decoded = worker.get(key)
        assert decoded is not instance
        assert instance_key(decoded) == key

    def test_rejects_negative_max_live(self):
        with pytest.raises(ValidationError):
            InstanceRegistry(max_live=-1)

    def test_stats_delta(self):
        registry = InstanceRegistry()
        key = registry.register(random_query(4, rng=0))
        before = registry.stats()
        registry.get(key)
        movement = registry.stats().delta(before)
        assert movement.hits == 1
        assert movement.misses == 0


# ---------------------------------------------------------------------
# Deterministic reassembly (the docstring's task-order guarantee)
# ---------------------------------------------------------------------


def _outcome(index):
    return TaskOutcome(index=index, optimizer="dp", label=f"t{index}")


class TestReassembly:
    def test_restores_submission_order_from_any_completion_order(self):
        shuffled = [_outcome(i) for i in (3, 0, 4, 1, 2)]
        ordered = _reassemble(shuffled, expected=5)
        assert [o.index for o in ordered] == [0, 1, 2, 3, 4]

    def test_rejects_missing_outcomes(self):
        with pytest.raises(ValidationError):
            _reassemble([_outcome(0), _outcome(2)], expected=3)

    def test_rejects_duplicate_outcomes(self):
        with pytest.raises(ValidationError):
            _reassemble([_outcome(0), _outcome(0)], expected=2)

    def test_sweep_outcomes_are_in_task_order(self):
        tasks = _tasks(seeds=2)
        result = run_sweep(tasks, workers=2, cache=False, chunksize=2)
        assert [o.index for o in result] == list(range(len(tasks)))
        assert [o.optimizer for o in result] == [
            t.optimizer if isinstance(t.optimizer, str) else "?"
            for t in tasks
        ]


# ---------------------------------------------------------------------
# Golden bit-identity: chunked + registry parallel vs serial
# ---------------------------------------------------------------------


class TestChunkedBitIdentity:
    def test_chunked_parallel_matches_serial(self):
        tasks = _tasks()
        serial = run_sweep(tasks, workers=1, cache=False)
        chunked = run_sweep(tasks, workers=2, cache=False, chunksize=2)
        if chunked.mode != "parallel":
            pytest.skip("no process pool available here")
        assert_bit_identical(chunked, serial)
        executor = chunked.executor
        assert executor.chunks > 0
        assert executor.ship_bytes > 0
        # 3 optimizers per instance in one worker set: reuse must show.
        assert executor.registry_hits > 0

    def test_legacy_chunksize_zero_matches_serial(self):
        tasks = _tasks()
        serial = run_sweep(tasks, workers=1, cache=False)
        legacy = run_sweep(tasks, workers=2, cache=False, chunksize=0)
        if legacy.mode != "parallel":
            pytest.skip("no process pool available here")
        assert_bit_identical(legacy, serial)
        assert legacy.executor.chunks == 0
        assert legacy.executor.registry_hits == 0
        # Per-task shipping costs strictly more than per-distinct-payload.
        chunked = run_sweep(tasks, workers=2, cache=False, chunksize=2)
        if chunked.mode == "parallel":
            assert legacy.executor.ship_bytes > chunked.executor.ship_bytes

    def test_bounded_registry_evicts_and_stays_identical(self):
        """registry_maxsize=1 forces eviction-then-refetch inside the
        sweep; outcomes must not notice."""
        tasks = _tasks(seeds=3)
        serial = run_sweep(tasks, workers=1, cache=False)
        bounded = run_sweep(
            tasks, workers=2, cache=False, chunksize=2, registry_maxsize=1,
        )
        if bounded.mode != "parallel":
            pytest.skip("no process pool available here")
        assert_bit_identical(bounded, serial)

    def test_executor_stats_flow_into_metrics(self):
        tasks = _tasks(seeds=2)
        result = run_sweep(tasks, workers=2, cache=False, chunksize=2)
        payload = sweep_metrics(result, grid={"purpose": "registry-test"})
        validate_metrics(payload)
        totals = payload["totals"]
        for name in (
            "ship_bytes", "registry_hits", "kernels_compiled", "chunks"
        ):
            assert isinstance(totals[name], int)
            assert totals[name] >= 0
        if result.mode == "parallel":
            assert totals["ship_bytes"] == result.executor.ship_bytes

    def test_refs_do_not_perturb_journal_fingerprints(self):
        """Registry addressing and journal identity agree: fingerprints
        computed from the original tasks match what a resumed sweep
        recomputes, chunked dispatch or not."""
        tasks = _tasks(seeds=2)
        before = [
            task_fingerprint(index, task)
            for index, task in enumerate(tasks)
        ]
        run_sweep(tasks, workers=2, cache=False, chunksize=2)
        after = [
            task_fingerprint(index, task)
            for index, task in enumerate(tasks)
        ]
        assert before == after

    def test_serial_executor_stats_count_kernels(self):
        tasks = _tasks()
        result = run_sweep(tasks, workers=1, cache=False)
        assert result.executor.ship_bytes == 0
        assert result.executor.chunks == 0
        assert result.executor.kernels_compiled >= 0


# ---------------------------------------------------------------------
# Schedule independence (Hypothesis): chunksize/workers never matter
# ---------------------------------------------------------------------


class TestScheduleIndependence:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        chunksize=st.integers(min_value=0, max_value=5),
        workers=st.integers(min_value=1, max_value=2),
    )
    def test_outcomes_independent_of_chunking(self, chunksize, workers):
        tasks = _tasks(optimizers=("dp", "greedy-cost"), seeds=2, n=4)
        reference = run_sweep(tasks, workers=1, cache=False)
        result = run_sweep(
            tasks, workers=workers, cache=False, chunksize=chunksize,
        )
        assert_bit_identical(result, reference)

    def test_auto_chunksize_is_deterministic_and_bounded(self):
        assert auto_chunksize(0, 4) == 1
        assert auto_chunksize(1, 1) == 1
        assert auto_chunksize(200, 4) == auto_chunksize(200, 4)
        for tasks_n in (1, 7, 33, 200, 4096):
            for workers in (1, 2, 8):
                size = auto_chunksize(tasks_n, workers)
                assert 1 <= size <= 32
        with pytest.raises(ValidationError):
            auto_chunksize(-1, 2)
        with pytest.raises(ValidationError):
            auto_chunksize(4, 0)


# ---------------------------------------------------------------------
# Worker death mid-chunk: task-granular recovery
# ---------------------------------------------------------------------


class TestWorkerDeathMidChunk:
    def test_kill_mid_chunk_requeues_tasks_and_stays_identical(self):
        tasks = _tasks(optimizers=("dp", "greedy-cost"), seeds=3, n=4)
        plan = FaultPlan(
            faults=(FaultInjection(index=2, attempt=0, kind="worker-kill"),)
        )
        result = run_resilient_sweep(
            tasks, workers=2, cache=False, chunksize=3,
            retry=RetryPolicy(attempts=3), fault_plan=plan,
            sleep=lambda _delay: None,
        )
        if result.mode != "parallel":
            pytest.skip("no process pool available here")
        assert result.recovered_workers >= 1
        assert all(o.ok for o in result)
        # The killed task burned at least one attempt before recovery.
        assert result.outcomes[2].attempts >= 2
        clean = run_resilient_sweep(tasks, workers=1, cache=False)
        assert_bit_identical(result, clean)

    def test_resilient_chunked_clean_run_matches_serial(self):
        tasks = _tasks(seeds=2)
        serial = run_resilient_sweep(tasks, workers=1, cache=False)
        chunked = run_resilient_sweep(
            tasks, workers=2, cache=False, chunksize=2,
        )
        if chunked.mode != "parallel":
            pytest.skip("no process pool available here")
        assert_bit_identical(chunked, serial)
        assert chunked.executor.chunks > 0

    def test_executor_stats_default_and_merge(self):
        base = ExecutorStats()
        assert (base.ship_bytes, base.registry_hits) == (0, 0)
        merged = base.merged(
            ExecutorStats(
                ship_bytes=5, registry_hits=2, kernels_compiled=1, chunks=3,
            )
        )
        assert merged == ExecutorStats(
            ship_bytes=5, registry_hits=2, kernels_compiled=1, chunks=3,
        )
        assert merged.to_dict() == {
            "ship_bytes": 5,
            "registry_hits": 2,
            "kernels_compiled": 1,
            "chunks": 3,
        }
