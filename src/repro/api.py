"""Stable public facade over the three substrates.

This is the documented entry point for scripts, notebooks and the CLI;
everything here speaks plain data (family names, algorithm names,
:class:`~repro.core.results.PlanResult`) so callers never need to know
which subpackage implements what.

    from repro import api

    instance = api.generate("random", n=8, seed=1)
    result = api.optimize(instance, algorithm="dp")
    chain = api.reduce("qon", formula)
    sweep = api.sweep({"optimizers": ["dp", "greedy-cost"],
                       "instances": [("q0", instance)]}, trace=True)

The deeper modules remain importable — the facade adds no state — but
only the names exported here are covered by the compatibility promise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.results import PlanResult
from repro.runtime.journal import read_journal
from repro.runtime.metrics import (
    load_metrics,
    sweep_metrics,
    validate_metrics,
    write_metrics,
)
from repro.runtime.resilience import (
    RetryPolicy,
    run_resilient_sweep,
)
from repro.runtime.resilience import (
    resume_sweep as _resume_sweep,
)
from repro.runtime.runner import (
    OPTIMIZERS,
    SweepResult,
    SweepTask,
    default_workers,
    grid_tasks,
    run_sweep,
)
from repro.utils.validation import require
from repro.workloads import (
    chain_query,
    clique_query,
    cycle_query,
    random_query,
    star_query,
)

#: Workload family name -> generator (all take ``(n, rng=seed, ...)``).
FAMILIES: Dict[str, Callable] = {
    "chain": chain_query,
    "star": star_query,
    "cycle": cycle_query,
    "clique": clique_query,
    "random": random_query,
}


def _reduction_registry() -> Dict[str, Callable]:
    # Resolved lazily: the chains import the substrate packages, and a
    # module-level import here would make ``repro.api`` heavy for
    # callers who only generate workloads.
    from repro.core.chains import hardness_chain_qoh, hardness_chain_qon
    from repro.core.reductions.clique_to_qoh import clique_to_qoh
    from repro.core.reductions.clique_to_qon import clique_to_qon
    from repro.core.reductions.partition_to_sppcs import partition_to_sppcs
    from repro.core.reductions.sat_to_clique import sat_to_clique
    from repro.core.reductions.sat_to_two_thirds_clique import (
        sat_to_two_thirds_clique,
    )
    from repro.core.reductions.sat_to_vc import sat_to_vertex_cover
    from repro.core.reductions.sparse import (
        sparse_clique_to_qoh,
        sparse_clique_to_qon,
    )
    from repro.core.reductions.sppcs_to_sqocp import sppcs_to_sqocp

    return {
        "qon": hardness_chain_qon,
        "qoh": hardness_chain_qoh,
        "sat-to-vertex-cover": sat_to_vertex_cover,
        "sat-to-clique": sat_to_clique,
        "sat-to-two-thirds-clique": sat_to_two_thirds_clique,
        "clique-to-qon": clique_to_qon,
        "clique-to-qoh": clique_to_qoh,
        "sparse-clique-to-qon": sparse_clique_to_qon,
        "sparse-clique-to-qoh": sparse_clique_to_qoh,
        "partition-to-sppcs": partition_to_sppcs,
        "sppcs-to-sqocp": sppcs_to_sqocp,
    }


def reduction_names() -> List[str]:
    """The chain names :func:`reduce` accepts."""
    return sorted(_reduction_registry())


def optimizer_names(substrate: Optional[str] = None) -> List[str]:
    """The algorithm names :func:`optimize` / :func:`sweep` accept.

    With ``substrate`` (``"qon"``, ``"qoh"`` or ``"sqocp"``) only the
    algorithms taking that substrate's instances are listed; registry
    names are substrate-prefixed for QO_H/SQO-CP, unprefixed for QO_N.
    """
    if substrate is None:
        return sorted(OPTIMIZERS)
    require(
        substrate in ("qon", "qoh", "sqocp"),
        f"unknown substrate {substrate!r}; known: qon, qoh, sqocp",
    )
    if substrate == "qon":
        return sorted(
            name for name in OPTIMIZERS
            if not name.startswith(("qoh-", "sqocp-"))
        )
    return sorted(
        name for name in OPTIMIZERS if name.startswith(substrate + "-")
    )


def substrate_of(instance: object) -> Optional[str]:
    """Which substrate an instance belongs to, or None.

    Returns ``"qon"``, ``"qoh"`` or ``"sqocp"`` — the value accepted by
    :func:`optimizer_names` — so callers (the CLI above all) can
    validate inputs without importing the substrate packages.
    """
    from repro.hashjoin.instance import QOHInstance
    from repro.joinopt.instance import QONInstance
    from repro.starqo.instance import SQOCPInstance

    if isinstance(instance, QONInstance):
        return "qon"
    if isinstance(instance, QOHInstance):
        return "qoh"
    if isinstance(instance, SQOCPInstance):
        return "sqocp"
    return None


def generate(family: str, n: int, seed: int = 0, **kwargs: Any) -> Any:
    """Generate a workload instance of the given family and size.

    ``family`` is one of :data:`FAMILIES`; extra keyword arguments pass
    through to the generator (e.g. ``size_max``, ``domain_max``).
    """
    require(
        family in FAMILIES,
        f"unknown family {family!r}; known: {sorted(FAMILIES)}",
    )
    return FAMILIES[family](n, rng=seed, **kwargs)


def reduce(chain: str, source: Any, **kwargs: Any) -> Any:
    """Run a named reduction (or full hardness chain) on ``source``.

    ``chain`` is one of :func:`reduction_names` — the end-to-end chains
    (``"qon"``, ``"qoh"``, taking a gap formula) or an individual step.
    Returns the reduction's construction object with all intermediate
    artifacts retained.
    """
    registry = _reduction_registry()
    require(
        chain in registry,
        f"unknown reduction chain {chain!r}; known: {sorted(registry)}",
    )
    return registry[chain](source, **kwargs)


def optimize(instance: Any, algorithm: str = "dp", **kwargs: Any) -> PlanResult:
    """Run one optimizer on one instance; returns a :class:`PlanResult`.

    ``algorithm`` is a name from :func:`optimizer_names`; the instance
    type must match the algorithm's substrate (``qoh-*`` expect a
    :class:`~repro.hashjoin.instance.QOHInstance`, ``sqocp-*`` a
    :class:`~repro.starqo.instance.SQOCPInstance`, the rest a
    :class:`~repro.joinopt.instance.QONInstance`).
    """
    require(
        algorithm in OPTIMIZERS,
        f"unknown algorithm {algorithm!r}; known: {sorted(OPTIMIZERS)}",
    )
    return OPTIMIZERS[algorithm](instance, **kwargs)


GridLike = Union[Sequence[SweepTask], Mapping]


def _grid_to_tasks(grid: GridLike) -> List[SweepTask]:
    if isinstance(grid, Mapping):
        require(
            "optimizers" in grid and "instances" in grid,
            "grid mapping needs 'optimizers' and 'instances' keys",
        )
        return grid_tasks(
            grid["optimizers"],
            grid["instances"],
            kwargs_for=grid.get("kwargs_for"),
            timeout=grid.get("timeout"),
        )
    return list(grid)


def sweep(
    grid: GridLike,
    workers: Optional[int] = None,
    cache: bool = True,
    cache_maxsize: Optional[int] = None,
    timeout: Optional[float] = None,
    trace: bool = False,
    retries: int = 1,
    backoff: float = 0.0,
    journal: Optional[Any] = None,
    resume: bool = False,
    fault_plan: Optional[Any] = None,
) -> SweepResult:
    """Run an optimizer x instance grid through the instrumented runner.

    ``grid`` is either a prepared sequence of
    :class:`~repro.runtime.runner.SweepTask` or a mapping with

    * ``"optimizers"`` — algorithm names (or callables),
    * ``"instances"`` — ``(label, instance)`` pairs,
    * ``"kwargs_for"`` — optional ``(name, label) -> dict`` hook,

    which is flattened with :func:`~repro.runtime.runner.grid_tasks`.
    The core arguments mirror
    :func:`~repro.runtime.runner.run_sweep`; with ``trace=True`` the
    result's :meth:`~repro.runtime.runner.SweepResult.trace_records`
    yields the merged ``repro.trace/1`` span tree.

    The resilience arguments route the sweep through
    :func:`~repro.runtime.resilience.run_resilient_sweep` instead:
    ``retries`` tries per task with deterministic exponential
    ``backoff``, an fsynced ``journal`` (``repro.journal/1``) of
    completed tasks, and ``resume=True`` to skip tasks the journal
    already holds (requires ``journal``).  ``fault_plan`` installs a
    deterministic chaos schedule — test tooling only.  Any of these
    set to a non-default engages the resilient runner, whose outcomes
    are task-isolated (fresh cost cache per attempt).
    """
    tasks = _grid_to_tasks(grid)
    resilient = (
        journal is not None or resume or retries > 1
        or backoff > 0.0 or fault_plan is not None
    )
    if not resilient:
        return run_sweep(
            tasks,
            workers=workers,
            cache=cache,
            cache_maxsize=cache_maxsize,
            timeout=timeout,
            trace=trace,
        )
    retry = RetryPolicy(attempts=max(1, retries), backoff=backoff)
    if resume:
        require(journal is not None, "resume requires a journal path")
        return _resume_sweep(
            journal,
            tasks,
            workers=workers,
            cache=cache,
            cache_maxsize=cache_maxsize,
            timeout=timeout,
            trace=trace,
            retry=retry,
            fault_plan=fault_plan,
        )
    return run_resilient_sweep(
        tasks,
        workers=workers,
        cache=cache,
        cache_maxsize=cache_maxsize,
        timeout=timeout,
        trace=trace,
        retry=retry,
        fault_plan=fault_plan,
        journal=journal,
    )


def resume_sweep(
    journal: Any,
    grid: GridLike,
    workers: Optional[int] = None,
    cache: bool = True,
    cache_maxsize: Optional[int] = None,
    timeout: Optional[float] = None,
    trace: bool = False,
    retries: int = 1,
    backoff: float = 0.0,
) -> SweepResult:
    """Resume a journaled sweep; equivalent to ``sweep(resume=True)``.

    Tasks whose fingerprint already has a completed record in
    ``journal`` are restored bit-identically; the rest run and are
    appended to the same journal.  The merged result's ``resumed``
    counter says how many tasks were restored.
    """
    return sweep(
        grid,
        workers=workers,
        cache=cache,
        cache_maxsize=cache_maxsize,
        timeout=timeout,
        trace=trace,
        retries=retries,
        backoff=backoff,
        journal=journal,
        resume=True,
    )


def gap_formula(
    variables: int = 6,
    clauses: int = 16,
    satisfiable: bool = True,
    seed: int = 0,
) -> Any:
    """A YES- or NO-promise 3SAT(13) gap formula for :func:`reduce`.

    The YES side plants a satisfying assignment (seeded); the NO side
    chains enough certified unsatisfiable cores to reach roughly the
    requested clause count.
    """
    from repro.sat.gapfamilies import no_instance, yes_instance

    if satisfiable:
        return yes_instance(variables, clauses, rng=seed)
    return no_instance(max(1, clauses // 8))


def gap_pair(n: int, k_yes: int, k_no: int, alpha: int = 4) -> Any:
    """The Theorem 9 YES/NO QO_N reduction pair on ``n`` relations.

    Returns a :class:`~repro.workloads.gaps.GapPair` whose
    ``yes_reduction`` / ``no_reduction`` carry the f_N constructions.
    """
    from repro.workloads import qon_gap_pair

    return qon_gap_pair(n, k_yes, k_no, alpha=alpha)


def gap_report_numbers(
    relations: int,
    alpha_exp: int,
    deltas: Sequence[float] = (0.9, 0.5, 0.25),
) -> Dict[str, Any]:
    """The Theorem 9 gap quantities, as plain data.

    For ``n`` relations and ``alpha = 4 ** alpha_exp``: the YES/NO
    clique sizes, ``log2 K_{c,d}``, the log2 gap factor, and for each
    ``delta`` the ``2^{log^{1-delta} K}`` budget with whether the gap
    exceeds it (the theorem's "no polylog-approximation" statement).
    """
    from repro.core.gap import (
        gap_factor_log2,
        k_cd_log2,
        polylog_budget_log2,
    )
    from repro.utils.lognum import log2_of

    k_yes = relations - 2
    k_no = 2 + (k_yes % 2)
    pair = gap_pair(relations, k_yes, k_no, alpha=4**alpha_exp)
    fn = pair.yes_reduction
    k_log2 = float(
        k_cd_log2(fn.alpha_log2, log2_of(fn.edge_access_cost), fn.k_yes, fn.k_no)
    )
    gap_log2 = float(gap_factor_log2(fn.alpha_log2, fn.k_yes, fn.k_no))
    budgets = [
        {
            "delta": delta,
            "budget_log2": polylog_budget_log2(k_log2, delta=delta),
            "gap_wins": gap_log2 > polylog_budget_log2(k_log2, delta=delta),
        }
        for delta in deltas
    ]
    return {
        "n": relations,
        "alpha_exp": alpha_exp,
        "k_yes": fn.k_yes,
        "k_no": fn.k_no,
        "k_cd_log2": k_log2,
        "gap_log2": gap_log2,
        "budgets": budgets,
    }


def explain_plan(instance: object, algorithm: str = "dp") -> str:
    """Optimize a QO_N instance and render its plan as text."""
    from repro.joinopt.explain import explain
    from repro.joinopt.instance import QONInstance

    require(
        isinstance(instance, QONInstance),
        "explain_plan supports QO_N instances",
    )
    assert isinstance(instance, QONInstance)
    result = optimize(instance, algorithm=algorithm)
    return explain(instance, result.sequence)


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of :func:`execute_plan`: model predictions vs reality.

    ``joins`` holds one ``(output_rows, probe_rows)`` pair per join, in
    plan order, to compare against ``predicted_sizes`` (the model's
    ``N_i``) and ``predicted_costs`` (the model's ``H_i``).
    """

    result: PlanResult
    exact: bool
    predicted_sizes: Tuple[Any, ...]
    predicted_costs: Tuple[Any, ...]
    joins: Tuple[Tuple[int, int], ...]
    result_rows: int


def execute_plan(
    instance: object,
    algorithm: str = "dp",
    harmonize: bool = False,
) -> ExecutionReport:
    """Optimize a QO_N instance, materialize data, run the plan.

    With ``harmonize`` the relation sizes are rounded so the synthetic
    database reproduces the model's estimates exactly (``exact`` is
    then True and model columns must equal the measured ones).
    """
    from repro.engine import execute_sequence, generate_database
    from repro.engine.data import harmonize_sizes
    from repro.joinopt.cost import intermediate_sizes, join_costs
    from repro.joinopt.instance import QONInstance

    require(
        isinstance(instance, QONInstance),
        "execute_plan supports QO_N instances",
    )
    assert isinstance(instance, QONInstance)
    if harmonize:
        instance = harmonize_sizes(instance)
    database = generate_database(instance)
    result = optimize(instance, algorithm=algorithm)
    trace = execute_sequence(database, result.sequence)
    return ExecutionReport(
        result=result,
        exact=database.exact,
        predicted_sizes=tuple(intermediate_sizes(instance, result.sequence)),
        predicted_costs=tuple(join_costs(instance, result.sequence)),
        joins=tuple(
            (join.output_rows, join.probe_rows) for join in trace.joins
        ),
        result_rows=trace.result_rows,
    )


def run_bench(
    smoke: bool = False, seed: int = 0, out: Optional[Any] = None
) -> Dict[str, Any]:
    """Run the pinned perf microbenchmark suite (``repro.bench/1``).

    Measures the compiled/incremental evaluation layer against the
    reference cost path on the Theorem-9/15 gap families; see
    :mod:`repro.perf.bench`.  With ``out`` the validated payload is also
    written as JSON.
    """
    from repro.perf.bench import run_bench as _run_bench

    return _run_bench(smoke=smoke, seed=seed, out=out)


def bench_summary_lines(payload: Dict[str, Any]) -> List[str]:
    """Per-case summary lines for a ``repro.bench/1`` payload."""
    from repro.perf.bench import bench_summary_lines as _summary

    return _summary(payload)


def validate_bench(payload: Dict[str, Any]) -> None:
    """Schema-check a ``repro.bench/1`` payload (raises on mismatch)."""
    from repro.perf.bench import validate_bench as _validate

    _validate(payload)


def write_bench(payload: Dict[str, Any], path: Any) -> Any:
    """Validate and write a bench payload as JSON; returns the path."""
    from repro.perf.bench import write_bench as _write

    return _write(payload, path)


def load_bench(path: Any) -> Dict[str, Any]:
    """Read and validate a previously written bench payload."""
    from repro.perf.bench import load_bench as _load

    return _load(path)


def scorecard() -> Any:
    """Run every theorem's fast verification checks.

    Returns the :class:`~repro.core.scorecard.Scorecard` (``render()``
    for the table, ``ok`` for the verdict).
    """
    from repro.core.scorecard import build_scorecard

    return build_scorecard()


__all__ = [
    "FAMILIES",
    "ExecutionReport",
    "PlanResult",
    "RetryPolicy",
    "SweepResult",
    "SweepTask",
    "bench_summary_lines",
    "default_workers",
    "execute_plan",
    "explain_plan",
    "gap_formula",
    "gap_pair",
    "gap_report_numbers",
    "generate",
    "grid_tasks",
    "load_bench",
    "load_metrics",
    "optimize",
    "optimizer_names",
    "read_journal",
    "reduce",
    "reduction_names",
    "resume_sweep",
    "run_bench",
    "scorecard",
    "substrate_of",
    "sweep",
    "sweep_metrics",
    "validate_bench",
    "validate_metrics",
    "write_bench",
    "write_metrics",
]
