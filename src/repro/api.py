"""Stable public facade over the three substrates.

This is the documented entry point for scripts, notebooks and the CLI;
everything here speaks plain data (family names, algorithm names,
:class:`~repro.core.results.PlanResult`) so callers never need to know
which subpackage implements what.

    from repro import api

    instance = api.generate("random", n=8, seed=1)
    result = api.optimize(instance, algorithm="dp")
    chain = api.reduce("qon", formula)
    sweep = api.sweep({"optimizers": ["dp", "greedy-cost"],
                       "instances": [("q0", instance)]}, trace=True)

Since the service layer landed, the canonical way to describe work is
a typed request object — :class:`OptimizeRequest` for one run,
:class:`SweepSpec` for a grid — executed with :func:`execute_request`
(or shipped to a ``repro serve`` daemon unchanged, since both
round-trip through JSON exactly):

    request = api.OptimizeRequest.build(instance, "dp")
    result = api.execute_request(request)

:func:`optimize` and :func:`sweep` accept request objects directly and
keep their historical kwarg forms as shims that build the request
internally (a one-time :class:`DeprecationWarning` fires when the old
kwarg spellings are used).

The deeper modules remain importable — the facade adds no state — but
only the names exported here are covered by the compatibility promise.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.requests import (
    REPLY_SCHEMA,
    REQUEST_SCHEMA,
    OptimizeRequest,
    ServiceReply,
    SweepSpec,
)
from repro.core.results import PlanResult
from repro.observability.events import EVENTS_SCHEMA
from repro.observability.metrics import METRICS_SCHEMA
from repro.runtime.costcache import CostCache, use_cache
from repro.runtime.registry import InstanceRegistry, RegistryStats, instance_key
from repro.runtime.journal import read_journal
from repro.runtime.metrics import (
    load_metrics,
    sweep_metrics,
    validate_metrics,
    write_metrics,
)
from repro.runtime.resilience import (
    RetryPolicy,
    run_resilient_sweep,
)
from repro.runtime.resilience import (
    resume_sweep as _resume_sweep,
)
from repro.runtime.runner import (
    OPTIMIZERS,
    SweepResult,
    SweepTask,
    default_workers,
    grid_tasks,
    run_sweep,
)
from repro.utils.validation import require
from repro.workloads import (
    chain_query,
    clique_query,
    cycle_query,
    random_query,
    star_query,
)

#: Workload family name -> generator (all take ``(n, rng=seed, ...)``).
FAMILIES: Dict[str, Callable] = {
    "chain": chain_query,
    "star": star_query,
    "cycle": cycle_query,
    "clique": clique_query,
    "random": random_query,
}

#: Facade version, bumped whenever the request/reply surface changes.
API_VERSION = "1.1"

#: Every wire schema this facade (and the service daemon) speaks.
RPC_SCHEMAS: Tuple[str, ...] = (
    "repro.rpc/1",
    REQUEST_SCHEMA,
    REPLY_SCHEMA,
    "repro.stats/1",
    METRICS_SCHEMA,
    EVENTS_SCHEMA,
)

_warned: Set[str] = set()


def _warn_once(key: str, message: str) -> None:
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=4)


def _reset_deprecation_warnings() -> None:
    """Re-arm the warn-once latches (test helper)."""
    _warned.clear()


def capabilities() -> Dict[str, Any]:
    """What this facade can do, as plain JSON-safe data.

    The payload behind ``repro request --capabilities`` and the
    service handshake: the facade version, the wire schemas, and every
    family/optimizer/reduction name the request layer accepts.  Clients
    should check ``rpc_schemas`` before sending requests rather than
    pinning the facade version.
    """
    return {
        "api_version": API_VERSION,
        "rpc_schemas": list(RPC_SCHEMAS),
        "request_types": ["optimize_request", "sweep_spec"],
        "families": sorted(FAMILIES),
        "optimizers": sorted(OPTIMIZERS),
        "reductions": reduction_names(),
    }


def _reduction_registry() -> Dict[str, Callable]:
    # Resolved lazily: the chains import the substrate packages, and a
    # module-level import here would make ``repro.api`` heavy for
    # callers who only generate workloads.
    from repro.core.chains import hardness_chain_qoh, hardness_chain_qon
    from repro.core.reductions.clique_to_qoh import clique_to_qoh
    from repro.core.reductions.clique_to_qon import clique_to_qon
    from repro.core.reductions.partition_to_sppcs import partition_to_sppcs
    from repro.core.reductions.sat_to_clique import sat_to_clique
    from repro.core.reductions.sat_to_two_thirds_clique import (
        sat_to_two_thirds_clique,
    )
    from repro.core.reductions.sat_to_vc import sat_to_vertex_cover
    from repro.core.reductions.sparse import (
        sparse_clique_to_qoh,
        sparse_clique_to_qon,
    )
    from repro.core.reductions.sppcs_to_sqocp import sppcs_to_sqocp

    return {
        "qon": hardness_chain_qon,
        "qoh": hardness_chain_qoh,
        "sat-to-vertex-cover": sat_to_vertex_cover,
        "sat-to-clique": sat_to_clique,
        "sat-to-two-thirds-clique": sat_to_two_thirds_clique,
        "clique-to-qon": clique_to_qon,
        "clique-to-qoh": clique_to_qoh,
        "sparse-clique-to-qon": sparse_clique_to_qon,
        "sparse-clique-to-qoh": sparse_clique_to_qoh,
        "partition-to-sppcs": partition_to_sppcs,
        "sppcs-to-sqocp": sppcs_to_sqocp,
    }


def reduction_names() -> List[str]:
    """The chain names :func:`reduce` accepts."""
    return sorted(_reduction_registry())


def optimizer_names(substrate: Optional[str] = None) -> List[str]:
    """The algorithm names :func:`optimize` / :func:`sweep` accept.

    With ``substrate`` (``"qon"``, ``"qoh"`` or ``"sqocp"``) only the
    algorithms taking that substrate's instances are listed; registry
    names are substrate-prefixed for QO_H/SQO-CP, unprefixed for QO_N.
    """
    if substrate is None:
        return sorted(OPTIMIZERS)
    require(
        substrate in ("qon", "qoh", "sqocp"),
        f"unknown substrate {substrate!r}; known: qon, qoh, sqocp",
    )
    if substrate == "qon":
        return sorted(
            name for name in OPTIMIZERS
            if not name.startswith(("qoh-", "sqocp-"))
        )
    return sorted(
        name for name in OPTIMIZERS if name.startswith(substrate + "-")
    )


def substrate_of(instance: object) -> Optional[str]:
    """Which substrate an instance belongs to, or None.

    Returns ``"qon"``, ``"qoh"`` or ``"sqocp"`` — the value accepted by
    :func:`optimizer_names` — so callers (the CLI above all) can
    validate inputs without importing the substrate packages.
    """
    from repro.hashjoin.instance import QOHInstance
    from repro.joinopt.instance import QONInstance
    from repro.starqo.instance import SQOCPInstance

    if isinstance(instance, QONInstance):
        return "qon"
    if isinstance(instance, QOHInstance):
        return "qoh"
    if isinstance(instance, SQOCPInstance):
        return "sqocp"
    return None


def generate(family: str, n: int, seed: int = 0, **kwargs: Any) -> Any:
    """Generate a workload instance of the given family and size.

    ``family`` is one of :data:`FAMILIES`; extra keyword arguments pass
    through to the generator (e.g. ``size_max``, ``domain_max``).
    """
    require(
        family in FAMILIES,
        f"unknown family {family!r}; known: {sorted(FAMILIES)}",
    )
    return FAMILIES[family](n, rng=seed, **kwargs)


def reduce(chain: str, source: Any, **kwargs: Any) -> Any:
    """Run a named reduction (or full hardness chain) on ``source``.

    ``chain`` is one of :func:`reduction_names` — the end-to-end chains
    (``"qon"``, ``"qoh"``, taking a gap formula) or an individual step.
    Returns the reduction's construction object with all intermediate
    artifacts retained.
    """
    registry = _reduction_registry()
    require(
        chain in registry,
        f"unknown reduction chain {chain!r}; known: {sorted(registry)}",
    )
    return registry[chain](source, **kwargs)


def optimize(instance: Any, algorithm: str = "dp", **kwargs: Any) -> PlanResult:
    """Run one optimizer on one instance; returns a :class:`PlanResult`.

    The canonical spelling passes an :class:`OptimizeRequest` as the
    sole argument::

        api.optimize(api.OptimizeRequest.build(instance, "dp"))

    The historical form ``optimize(instance, algorithm, **kwargs)``
    still works: it builds the request internally.  Passing
    per-optimizer ``**kwargs`` positionally like that is deprecated
    (one :class:`DeprecationWarning` per process) — put them in the
    request instead, where they serialize and fingerprint.

    ``algorithm`` is a name from :func:`optimizer_names`; the instance
    type must match the algorithm's substrate (``qoh-*`` expect a
    :class:`~repro.hashjoin.instance.QOHInstance`, ``sqocp-*`` a
    :class:`~repro.starqo.instance.SQOCPInstance`, the rest a
    :class:`~repro.joinopt.instance.QONInstance`).
    """
    if isinstance(instance, OptimizeRequest):
        require(
            algorithm == "dp" and not kwargs,
            "optimize(request) takes no extra arguments; set the "
            "algorithm and params on the OptimizeRequest",
        )
        request = instance
    else:
        if kwargs:
            _warn_once(
                "optimize-kwargs",
                "passing optimizer kwargs to api.optimize() is "
                "deprecated; build an api.OptimizeRequest instead",
            )
        request = OptimizeRequest.build(instance, algorithm, **kwargs)
    return execute_request(request)


def request_fingerprint(request: Union[OptimizeRequest, SweepSpec]) -> str:
    """The stable content hash of a request (dedup/cache identity).

    Identical work — same instance statistics, optimizer, params,
    and (for sweeps) runner settings — yields the same fingerprint
    regardless of when or where the request object was built; the
    ``no_cache`` delivery flag is excluded.
    """
    require(
        isinstance(request, (OptimizeRequest, SweepSpec)),
        f"expected OptimizeRequest or SweepSpec, got {type(request)!r}",
    )
    return request.fingerprint()


def execute_request(
    request: Union[OptimizeRequest, SweepSpec],
) -> Union[PlanResult, SweepResult]:
    """Execute a typed request object locally.

    The single entry point the service daemon is allowed to call (lint
    rule RPR011): an :class:`OptimizeRequest` runs its optimizer and
    returns a :class:`PlanResult`; a :class:`SweepSpec` runs its grid
    through the instrumented runner (resilient when the spec sets
    ``retries > 1`` or ``backoff > 0``) and returns a
    :class:`SweepResult`.  Results are produced by the same code paths
    as :func:`optimize` / :func:`sweep`, so a served reply decodes
    bit-identically to a direct call.
    """
    if isinstance(request, OptimizeRequest):
        require(
            request.algorithm in OPTIMIZERS,
            f"unknown algorithm {request.algorithm!r}; "
            f"known: {sorted(OPTIMIZERS)}",
        )
        return OPTIMIZERS[request.algorithm](
            request.instance, **request.kwargs()
        )
    require(
        isinstance(request, SweepSpec),
        f"expected OptimizeRequest or SweepSpec, got {type(request)!r}",
    )
    tasks = grid_tasks(
        request.optimizers,
        request.instances,
        kwargs_for=request.kwargs_for,
        timeout=request.timeout,
    )
    if request.retries > 1 or request.backoff > 0.0:
        return run_resilient_sweep(
            tasks,
            workers=request.workers,
            cache=request.cache,
            cache_maxsize=request.cache_maxsize,
            timeout=request.timeout,
            trace=request.trace,
            retry=RetryPolicy(
                attempts=max(1, request.retries), backoff=request.backoff
            ),
        )
    return run_sweep(
        tasks,
        workers=request.workers,
        cache=request.cache,
        cache_maxsize=request.cache_maxsize,
        timeout=request.timeout,
        trace=request.trace,
    )


GridLike = Union[Sequence[SweepTask], Mapping]


def _grid_to_tasks(grid: GridLike) -> List[SweepTask]:
    if isinstance(grid, Mapping):
        require(
            "optimizers" in grid and "instances" in grid,
            "grid mapping needs 'optimizers' and 'instances' keys",
        )
        return grid_tasks(
            grid["optimizers"],
            grid["instances"],
            kwargs_for=grid.get("kwargs_for"),
            timeout=grid.get("timeout"),
        )
    return list(grid)


def sweep(
    grid: Union[SweepSpec, GridLike],
    workers: Optional[int] = None,
    cache: bool = True,
    cache_maxsize: Optional[int] = None,
    timeout: Optional[float] = None,
    trace: bool = False,
    retries: int = 1,
    backoff: float = 0.0,
    journal: Optional[Any] = None,
    resume: bool = False,
    fault_plan: Optional[Any] = None,
    chunksize: Optional[int] = None,
    registry_maxsize: Optional[int] = None,
) -> SweepResult:
    """Run an optimizer x instance grid through the instrumented runner.

    The canonical spelling passes a :class:`SweepSpec`, which carries
    the grid *and* the runner settings as one serializable value::

        spec = api.SweepSpec.build(["dp", "greedy-cost"],
                                   [("q0", instance)], workers=1)
        result = api.sweep(spec)

    Only the host-local operational arguments — ``journal``,
    ``resume``, ``fault_plan``, ``chunksize``, ``registry_maxsize`` —
    may accompany a spec; they are deliberately not part of the spec
    (a spec must be safe to accept over a socket, and the executor
    knobs never change results — only throughput — so they stay out
    of request fingerprints).

    The historical form still works: ``grid`` as a prepared sequence
    of :class:`~repro.runtime.runner.SweepTask` or a mapping with

    * ``"optimizers"`` — algorithm names (or callables),
    * ``"instances"`` — ``(label, instance)`` pairs,
    * ``"kwargs_for"`` — optional ``(name, label) -> dict`` hook,

    flattened with :func:`~repro.runtime.runner.grid_tasks`.  Passing
    the runner settings as keywords alongside an old-style grid is
    deprecated (one :class:`DeprecationWarning` per process) — put
    them on a :class:`SweepSpec`.  With ``trace=True`` the result's
    :meth:`~repro.runtime.runner.SweepResult.trace_records` yields the
    merged ``repro.trace/1`` span tree.

    The resilience arguments route the sweep through
    :func:`~repro.runtime.resilience.run_resilient_sweep` instead:
    ``retries`` tries per task with deterministic exponential
    ``backoff``, an fsynced ``journal`` (``repro.journal/1``) of
    completed tasks, and ``resume=True`` to skip tasks the journal
    already holds (requires ``journal``).  ``fault_plan`` installs a
    deterministic chaos schedule — test tooling only.  Any of these
    set to a non-default engages the resilient runner, whose outcomes
    are task-isolated (fresh cost cache per attempt).

    ``chunksize`` / ``registry_maxsize`` tune the parallel executor:
    tasks per dispatched chunk (``None`` auto-heuristic, ``0`` legacy
    per-task dispatch) and the per-worker bound on live decoded
    instances.  See :mod:`repro.runtime.registry`.
    """
    if isinstance(grid, SweepSpec):
        spec = grid
        require(
            workers is None and cache and cache_maxsize is None
            and timeout is None and not trace and retries == 1
            and backoff == 0.0,
            "sweep(spec) takes runner settings on the SweepSpec itself; "
            "only journal/resume/fault_plan/chunksize/registry_maxsize "
            "may be passed alongside",
        )
        if (journal is None and not resume and fault_plan is None
                and chunksize is None and registry_maxsize is None):
            result = execute_request(spec)
            assert isinstance(result, SweepResult)
            return result
        workers = spec.workers
        cache = spec.cache
        cache_maxsize = spec.cache_maxsize
        timeout = spec.timeout
        trace = spec.trace
        retries = spec.retries
        backoff = spec.backoff
        tasks = grid_tasks(
            spec.optimizers,
            spec.instances,
            kwargs_for=spec.kwargs_for,
            timeout=spec.timeout,
        )
    else:
        if (
            workers is not None or not cache or cache_maxsize is not None
            or timeout is not None or trace or retries != 1
            or backoff != 0.0
        ):
            _warn_once(
                "sweep-kwargs",
                "passing runner settings as api.sweep() keywords is "
                "deprecated; build an api.SweepSpec instead",
            )
        tasks = _grid_to_tasks(grid)
    resilient = (
        journal is not None or resume or retries > 1
        or backoff > 0.0 or fault_plan is not None
    )
    if not resilient:
        return run_sweep(
            tasks,
            workers=workers,
            cache=cache,
            cache_maxsize=cache_maxsize,
            timeout=timeout,
            trace=trace,
            chunksize=chunksize,
            registry_maxsize=registry_maxsize,
        )
    retry = RetryPolicy(attempts=max(1, retries), backoff=backoff)
    if resume:
        require(journal is not None, "resume requires a journal path")
        return _resume_sweep(
            journal,
            tasks,
            workers=workers,
            cache=cache,
            cache_maxsize=cache_maxsize,
            timeout=timeout,
            trace=trace,
            retry=retry,
            fault_plan=fault_plan,
            chunksize=chunksize,
            registry_maxsize=registry_maxsize,
        )
    return run_resilient_sweep(
        tasks,
        workers=workers,
        cache=cache,
        cache_maxsize=cache_maxsize,
        timeout=timeout,
        trace=trace,
        retry=retry,
        fault_plan=fault_plan,
        journal=journal,
        chunksize=chunksize,
        registry_maxsize=registry_maxsize,
    )


def resume_sweep(
    journal: Any,
    grid: GridLike,
    workers: Optional[int] = None,
    cache: bool = True,
    cache_maxsize: Optional[int] = None,
    timeout: Optional[float] = None,
    trace: bool = False,
    retries: int = 1,
    backoff: float = 0.0,
) -> SweepResult:
    """Resume a journaled sweep; equivalent to ``sweep(resume=True)``.

    Tasks whose fingerprint already has a completed record in
    ``journal`` are restored bit-identically; the rest run and are
    appended to the same journal.  The merged result's ``resumed``
    counter says how many tasks were restored.
    """
    return sweep(
        grid,
        workers=workers,
        cache=cache,
        cache_maxsize=cache_maxsize,
        timeout=timeout,
        trace=trace,
        retries=retries,
        backoff=backoff,
        journal=journal,
        resume=True,
    )


def gap_formula(
    variables: int = 6,
    clauses: int = 16,
    satisfiable: bool = True,
    seed: int = 0,
) -> Any:
    """A YES- or NO-promise 3SAT(13) gap formula for :func:`reduce`.

    The YES side plants a satisfying assignment (seeded); the NO side
    chains enough certified unsatisfiable cores to reach roughly the
    requested clause count.
    """
    from repro.sat.gapfamilies import no_instance, yes_instance

    if satisfiable:
        return yes_instance(variables, clauses, rng=seed)
    return no_instance(max(1, clauses // 8))


def gap_pair(n: int, k_yes: int, k_no: int, alpha: int = 4) -> Any:
    """The Theorem 9 YES/NO QO_N reduction pair on ``n`` relations.

    Returns a :class:`~repro.workloads.gaps.GapPair` whose
    ``yes_reduction`` / ``no_reduction`` carry the f_N constructions.
    """
    from repro.workloads import qon_gap_pair

    return qon_gap_pair(n, k_yes, k_no, alpha=alpha)


def gap_report_numbers(
    relations: int,
    alpha_exp: int,
    deltas: Sequence[float] = (0.9, 0.5, 0.25),
) -> Dict[str, Any]:
    """The Theorem 9 gap quantities, as plain data.

    For ``n`` relations and ``alpha = 4 ** alpha_exp``: the YES/NO
    clique sizes, ``log2 K_{c,d}``, the log2 gap factor, and for each
    ``delta`` the ``2^{log^{1-delta} K}`` budget with whether the gap
    exceeds it (the theorem's "no polylog-approximation" statement).
    """
    from repro.core.gap import (
        gap_factor_log2,
        k_cd_log2,
        polylog_budget_log2,
    )
    from repro.utils.lognum import log2_of

    k_yes = relations - 2
    k_no = 2 + (k_yes % 2)
    pair = gap_pair(relations, k_yes, k_no, alpha=4**alpha_exp)
    fn = pair.yes_reduction
    k_log2 = float(
        k_cd_log2(fn.alpha_log2, log2_of(fn.edge_access_cost), fn.k_yes, fn.k_no)
    )
    gap_log2 = float(gap_factor_log2(fn.alpha_log2, fn.k_yes, fn.k_no))
    budgets = [
        {
            "delta": delta,
            "budget_log2": polylog_budget_log2(k_log2, delta=delta),
            "gap_wins": gap_log2 > polylog_budget_log2(k_log2, delta=delta),
        }
        for delta in deltas
    ]
    return {
        "n": relations,
        "alpha_exp": alpha_exp,
        "k_yes": fn.k_yes,
        "k_no": fn.k_no,
        "k_cd_log2": k_log2,
        "gap_log2": gap_log2,
        "budgets": budgets,
    }


def explain_plan(instance: object, algorithm: str = "dp") -> str:
    """Optimize a QO_N instance and render its plan as text."""
    from repro.joinopt.explain import explain
    from repro.joinopt.instance import QONInstance

    require(
        isinstance(instance, QONInstance),
        "explain_plan supports QO_N instances",
    )
    assert isinstance(instance, QONInstance)
    result = optimize(instance, algorithm=algorithm)
    return explain(instance, result.sequence)


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of :func:`execute_plan`: model predictions vs reality.

    ``joins`` holds one ``(output_rows, probe_rows)`` pair per join, in
    plan order, to compare against ``predicted_sizes`` (the model's
    ``N_i``) and ``predicted_costs`` (the model's ``H_i``).
    """

    result: PlanResult
    exact: bool
    predicted_sizes: Tuple[Any, ...]
    predicted_costs: Tuple[Any, ...]
    joins: Tuple[Tuple[int, int], ...]
    result_rows: int


def execute_plan(
    instance: object,
    algorithm: str = "dp",
    harmonize: bool = False,
) -> ExecutionReport:
    """Optimize a QO_N instance, materialize data, run the plan.

    With ``harmonize`` the relation sizes are rounded so the synthetic
    database reproduces the model's estimates exactly (``exact`` is
    then True and model columns must equal the measured ones).
    """
    from repro.engine import execute_sequence, generate_database
    from repro.engine.data import harmonize_sizes
    from repro.joinopt.cost import intermediate_sizes, join_costs
    from repro.joinopt.instance import QONInstance

    require(
        isinstance(instance, QONInstance),
        "execute_plan supports QO_N instances",
    )
    assert isinstance(instance, QONInstance)
    if harmonize:
        instance = harmonize_sizes(instance)
    database = generate_database(instance)
    result = optimize(instance, algorithm=algorithm)
    trace = execute_sequence(database, result.sequence)
    return ExecutionReport(
        result=result,
        exact=database.exact,
        predicted_sizes=tuple(intermediate_sizes(instance, result.sequence)),
        predicted_costs=tuple(join_costs(instance, result.sequence)),
        joins=tuple(
            (join.output_rows, join.probe_rows) for join in trace.joins
        ),
        result_rows=trace.result_rows,
    )


def run_bench(
    smoke: bool = False, seed: int = 0, out: Optional[Any] = None,
    suite: str = "gap-families",
) -> Dict[str, Any]:
    """Run a pinned perf benchmark suite (``repro.bench/1``).

    ``suite="gap-families"`` (default) measures the compiled /
    incremental evaluation layer against the reference cost path on
    the Theorem-9/15 gap families; ``suite="executor"`` measures sweep
    executor throughput — serial vs parallel, chunked+registry vs
    legacy per-task dispatch — on a Theorem-9 grid with repeated
    instances.  See :mod:`repro.perf.bench`.  With ``out`` the
    validated payload is also written as JSON.
    """
    from repro.perf.bench import run_bench as _run_bench
    from repro.perf.bench import run_executor_bench as _run_executor

    if suite == "executor":
        return _run_executor(smoke=smoke, seed=seed, out=out)
    require(
        suite == "gap-families",
        f"unknown bench suite {suite!r}; known: gap-families, executor",
    )
    return _run_bench(smoke=smoke, seed=seed, out=out)


def bench_summary_lines(payload: Dict[str, Any]) -> List[str]:
    """Per-case summary lines for a ``repro.bench/1`` payload."""
    from repro.perf.bench import bench_summary_lines as _summary

    return _summary(payload)


def validate_bench(payload: Dict[str, Any]) -> None:
    """Schema-check a ``repro.bench/1`` payload (raises on mismatch)."""
    from repro.perf.bench import validate_bench as _validate

    _validate(payload)


def write_bench(payload: Dict[str, Any], path: Any) -> Any:
    """Validate and write a bench payload as JSON; returns the path."""
    from repro.perf.bench import write_bench as _write

    return _write(payload, path)


def load_bench(path: Any) -> Dict[str, Any]:
    """Read and validate a previously written bench payload."""
    from repro.perf.bench import load_bench as _load

    return _load(path)


def scorecard() -> Any:
    """Run every theorem's fast verification checks.

    Returns the :class:`~repro.core.scorecard.Scorecard` (``render()``
    for the table, ``ok`` for the verdict).
    """
    from repro.core.scorecard import build_scorecard

    return build_scorecard()


__all__ = [
    "API_VERSION",
    "EVENTS_SCHEMA",
    "FAMILIES",
    "METRICS_SCHEMA",
    "RPC_SCHEMAS",
    "CostCache",
    "ExecutionReport",
    "InstanceRegistry",
    "OptimizeRequest",
    "PlanResult",
    "RegistryStats",
    "RetryPolicy",
    "ServiceReply",
    "SweepResult",
    "SweepSpec",
    "SweepTask",
    "bench_summary_lines",
    "capabilities",
    "default_workers",
    "execute_plan",
    "execute_request",
    "explain_plan",
    "gap_formula",
    "gap_pair",
    "gap_report_numbers",
    "generate",
    "grid_tasks",
    "instance_key",
    "load_bench",
    "load_metrics",
    "optimize",
    "optimizer_names",
    "read_journal",
    "reduce",
    "reduction_names",
    "request_fingerprint",
    "resume_sweep",
    "run_bench",
    "scorecard",
    "substrate_of",
    "sweep",
    "sweep_metrics",
    "use_cache",
    "validate_bench",
    "validate_metrics",
    "write_bench",
    "write_metrics",
]
