"""Stable public facade over the three substrates.

This is the documented entry point for scripts, notebooks and the CLI;
everything here speaks plain data (family names, algorithm names,
:class:`~repro.core.results.PlanResult`) so callers never need to know
which subpackage implements what.

    from repro import api

    instance = api.generate("random", n=8, seed=1)
    result = api.optimize(instance, algorithm="dp")
    chain = api.reduce("qon", formula)
    sweep = api.sweep({"optimizers": ["dp", "greedy-cost"],
                       "instances": [("q0", instance)]}, trace=True)

The deeper modules remain importable — the facade adds no state — but
only the names exported here are covered by the compatibility promise.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.results import PlanResult
from repro.runtime.runner import (
    OPTIMIZERS,
    SweepResult,
    SweepTask,
    grid_tasks,
    run_sweep,
)
from repro.utils.validation import require
from repro.workloads import (
    chain_query,
    clique_query,
    cycle_query,
    random_query,
    star_query,
)

#: Workload family name -> generator (all take ``(n, rng=seed, ...)``).
FAMILIES: Dict[str, Callable] = {
    "chain": chain_query,
    "star": star_query,
    "cycle": cycle_query,
    "clique": clique_query,
    "random": random_query,
}


def _reduction_registry() -> Dict[str, Callable]:
    # Resolved lazily: the chains import the substrate packages, and a
    # module-level import here would make ``repro.api`` heavy for
    # callers who only generate workloads.
    from repro.core.chains import hardness_chain_qoh, hardness_chain_qon
    from repro.core.reductions.clique_to_qoh import clique_to_qoh
    from repro.core.reductions.clique_to_qon import clique_to_qon
    from repro.core.reductions.partition_to_sppcs import partition_to_sppcs
    from repro.core.reductions.sat_to_clique import sat_to_clique
    from repro.core.reductions.sat_to_two_thirds_clique import (
        sat_to_two_thirds_clique,
    )
    from repro.core.reductions.sat_to_vc import sat_to_vertex_cover
    from repro.core.reductions.sparse import (
        sparse_clique_to_qoh,
        sparse_clique_to_qon,
    )
    from repro.core.reductions.sppcs_to_sqocp import sppcs_to_sqocp

    return {
        "qon": hardness_chain_qon,
        "qoh": hardness_chain_qoh,
        "sat-to-vertex-cover": sat_to_vertex_cover,
        "sat-to-clique": sat_to_clique,
        "sat-to-two-thirds-clique": sat_to_two_thirds_clique,
        "clique-to-qon": clique_to_qon,
        "clique-to-qoh": clique_to_qoh,
        "sparse-clique-to-qon": sparse_clique_to_qon,
        "sparse-clique-to-qoh": sparse_clique_to_qoh,
        "partition-to-sppcs": partition_to_sppcs,
        "sppcs-to-sqocp": sppcs_to_sqocp,
    }


def reduction_names() -> List[str]:
    """The chain names :func:`reduce` accepts."""
    return sorted(_reduction_registry())


def optimizer_names() -> List[str]:
    """The algorithm names :func:`optimize` / :func:`sweep` accept."""
    return sorted(OPTIMIZERS)


def generate(family: str, n: int, seed: int = 0, **kwargs):
    """Generate a workload instance of the given family and size.

    ``family`` is one of :data:`FAMILIES`; extra keyword arguments pass
    through to the generator (e.g. ``size_max``, ``domain_max``).
    """
    require(
        family in FAMILIES,
        f"unknown family {family!r}; known: {sorted(FAMILIES)}",
    )
    return FAMILIES[family](n, rng=seed, **kwargs)


def reduce(chain: str, source, **kwargs):
    """Run a named reduction (or full hardness chain) on ``source``.

    ``chain`` is one of :func:`reduction_names` — the end-to-end chains
    (``"qon"``, ``"qoh"``, taking a gap formula) or an individual step.
    Returns the reduction's construction object with all intermediate
    artifacts retained.
    """
    registry = _reduction_registry()
    require(
        chain in registry,
        f"unknown reduction chain {chain!r}; known: {sorted(registry)}",
    )
    return registry[chain](source, **kwargs)


def optimize(instance, algorithm: str = "dp", **kwargs) -> PlanResult:
    """Run one optimizer on one instance; returns a :class:`PlanResult`.

    ``algorithm`` is a name from :func:`optimizer_names`; the instance
    type must match the algorithm's substrate (``qoh-*`` expect a
    :class:`~repro.hashjoin.instance.QOHInstance`, ``sqocp-*`` a
    :class:`~repro.starqo.instance.SQOCPInstance`, the rest a
    :class:`~repro.joinopt.instance.QONInstance`).
    """
    require(
        algorithm in OPTIMIZERS,
        f"unknown algorithm {algorithm!r}; known: {sorted(OPTIMIZERS)}",
    )
    return OPTIMIZERS[algorithm](instance, **kwargs)


GridLike = Union[Sequence[SweepTask], Mapping]


def sweep(
    grid: GridLike,
    workers: Optional[int] = None,
    cache: bool = True,
    cache_maxsize: Optional[int] = None,
    timeout: Optional[float] = None,
    trace: bool = False,
) -> SweepResult:
    """Run an optimizer x instance grid through the instrumented runner.

    ``grid`` is either a prepared sequence of
    :class:`~repro.runtime.runner.SweepTask` or a mapping with

    * ``"optimizers"`` — algorithm names (or callables),
    * ``"instances"`` — ``(label, instance)`` pairs,
    * ``"kwargs_for"`` — optional ``(name, label) -> dict`` hook,

    which is flattened with :func:`~repro.runtime.runner.grid_tasks`.
    The remaining arguments mirror
    :func:`~repro.runtime.runner.run_sweep`; with ``trace=True`` the
    result's :meth:`~repro.runtime.runner.SweepResult.trace_records`
    yields the merged ``repro.trace/1`` span tree.
    """
    if isinstance(grid, Mapping):
        require(
            "optimizers" in grid and "instances" in grid,
            "grid mapping needs 'optimizers' and 'instances' keys",
        )
        tasks = grid_tasks(
            grid["optimizers"],
            grid["instances"],
            kwargs_for=grid.get("kwargs_for"),
            timeout=grid.get("timeout"),
        )
    else:
        tasks = list(grid)
    return run_sweep(
        tasks,
        workers=workers,
        cache=cache,
        cache_maxsize=cache_maxsize,
        timeout=timeout,
        trace=trace,
    )


__all__ = [
    "FAMILIES",
    "PlanResult",
    "SweepResult",
    "SweepTask",
    "generate",
    "optimize",
    "optimizer_names",
    "reduce",
    "reduction_names",
    "sweep",
]
