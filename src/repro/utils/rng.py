"""Seeded random-number helpers.

Every stochastic component in the library (instance generators,
randomized optimizers) takes either a seed or a ``random.Random``
instance; :func:`make_rng` normalizes both forms so call sites stay
uniform and experiments stay reproducible.
"""

from __future__ import annotations

import random
from typing import Optional, Union

#: Re-exported so other modules can annotate RNG parameters without
#: importing :mod:`random` themselves (lint rule RPR002).
Random = random.Random

RngLike = Union[int, random.Random, None]


def make_rng(seed_or_rng: RngLike = None) -> random.Random:
    """Return a ``random.Random`` from a seed, an existing RNG or None.

    ``None`` yields a deterministic default (seed 0) rather than a
    time-seeded generator: reproducibility is the default in this
    library, opt out by passing an explicitly seeded RNG.
    """
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    if seed_or_rng is None:
        return random.Random(0)
    return random.Random(seed_or_rng)


def spawn(rng: random.Random, stream: str) -> random.Random:
    """Derive an independent, reproducible child RNG for a named stream."""
    seed = rng.getrandbits(64) ^ hash(stream) & 0xFFFFFFFFFFFFFFFF
    return random.Random(seed)


def sample_distinct_pairs(
    rng: random.Random, n: int, count: int
) -> list[tuple[int, int]]:
    """Sample ``count`` distinct unordered pairs from ``range(n)``."""
    max_pairs = n * (n - 1) // 2
    if count > max_pairs:
        raise ValueError(f"cannot sample {count} pairs from {max_pairs}")
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < count:
        i = rng.randrange(n)
        j = rng.randrange(n)
        if i == j:
            continue
        chosen.add((min(i, j), max(i, j)))
    return sorted(chosen)


def random_permutation(rng: random.Random, n: int) -> list[int]:
    """A uniformly random permutation of ``range(n)``."""
    order = list(range(n))
    rng.shuffle(order)
    return order
