"""Log-domain arbitrary-magnitude numbers.

The reductions in the paper construct relation sizes and plan costs of
the form ``w * alpha ** e`` where ``alpha`` itself is ``4 ** n``; for a
sweep over ``n`` up to a few hundred the exact integers become slow to
multiply.  :class:`LogNumber` stores ``log2`` of the magnitude as a
float, which preserves ordering and multiplicative structure — exactly
what the gap theorems are about — while staying O(1) per operation.

Only non-negative magnitudes are supported (plan costs, cardinalities
and selectivities are non-negative by definition).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Union

Numeric = Union[int, float, Fraction, "LogNumber"]

#: log2 representation of zero.
_NEG_INF = float("-inf")


def log2_of(value: Numeric) -> float:
    """Return ``log2(value)`` for any supported numeric type.

    Works for exact integers far beyond float range (uses
    ``int.bit_length`` based scaling), for ``Fraction`` and for
    :class:`LogNumber` itself.
    """
    if isinstance(value, LogNumber):
        return value.log2
    if isinstance(value, Fraction):
        if value < 0:
            raise ValueError("log2_of requires a non-negative value")
        if value == 0:
            return _NEG_INF
        return _int_log2(value.numerator) - _int_log2(value.denominator)
    if isinstance(value, int):
        if value < 0:
            raise ValueError("log2_of requires a non-negative value")
        if value == 0:
            return _NEG_INF
        return _int_log2(value)
    if isinstance(value, float):
        if value < 0:
            raise ValueError("log2_of requires a non-negative value")
        if value == 0.0:
            return _NEG_INF
        return math.log2(value)
    raise TypeError(f"unsupported type for log2_of: {type(value)!r}")


def _int_log2(value: int) -> float:
    """``log2`` of a positive int, robust to values beyond float range."""
    bits = value.bit_length()
    if bits <= 960:
        return math.log2(value)
    # Keep the top 64 bits for the mantissa; the rest is pure exponent.
    shift = bits - 64
    return math.log2(value >> shift) + shift


class LogNumber:
    """A non-negative number stored as ``log2`` of its magnitude.

    Supports ``+ - * / **``, total ordering and mixing with ``int``,
    ``float`` and ``Fraction`` operands.  Subtraction is defined only
    when the result stays non-negative.
    """

    __slots__ = ("_log2",)

    def __init__(self, value: Numeric = 0) -> None:
        if isinstance(value, LogNumber):
            self._log2 = value._log2
        else:
            self._log2 = log2_of(value)

    # -- constructors ------------------------------------------------
    @classmethod
    def from_log2(cls, log2_value: float) -> "LogNumber":
        """Build a LogNumber directly from its ``log2``."""
        obj = cls.__new__(cls)
        obj._log2 = float(log2_value)
        return obj

    @classmethod
    def zero(cls) -> "LogNumber":
        return cls.from_log2(_NEG_INF)

    @classmethod
    def one(cls) -> "LogNumber":
        return cls.from_log2(0.0)

    # -- accessors ---------------------------------------------------
    @property
    def log2(self) -> float:
        """``log2`` of the magnitude (``-inf`` for zero)."""
        return self._log2

    def is_zero(self) -> bool:
        return self._log2 == _NEG_INF

    def to_float(self) -> float:
        """Convert to float; raises ``OverflowError`` out of range."""
        if self.is_zero():
            return 0.0
        if self._log2 > 1023:
            raise OverflowError("LogNumber too large for float")
        return 2.0 ** self._log2

    # -- arithmetic --------------------------------------------------
    def __add__(self, other: Numeric) -> "LogNumber":
        other_log = log2_of(other)
        return LogNumber.from_log2(_log_add(self._log2, other_log))

    __radd__ = __add__

    def __sub__(self, other: Numeric) -> "LogNumber":
        other_log = log2_of(other)
        return LogNumber.from_log2(_log_sub(self._log2, other_log))

    def __rsub__(self, other: Numeric) -> "LogNumber":
        return LogNumber(other).__sub__(self)

    def __mul__(self, other: Numeric) -> "LogNumber":
        other_log = log2_of(other)
        if self.is_zero() or other_log == _NEG_INF:
            return LogNumber.zero()
        return LogNumber.from_log2(self._log2 + other_log)

    __rmul__ = __mul__

    def __truediv__(self, other: Numeric) -> "LogNumber":
        other_log = log2_of(other)
        if other_log == _NEG_INF:
            raise ZeroDivisionError("division by LogNumber zero")
        if self.is_zero():
            return LogNumber.zero()
        return LogNumber.from_log2(self._log2 - other_log)

    def __rtruediv__(self, other: Numeric) -> "LogNumber":
        return LogNumber(other).__truediv__(self)

    def __pow__(self, exponent: Union[int, float, Fraction]) -> "LogNumber":
        if isinstance(exponent, Fraction):
            exponent = float(exponent)
        if self.is_zero():
            if exponent == 0:
                return LogNumber.one()
            if exponent < 0:
                raise ZeroDivisionError("zero to a negative power")
            return LogNumber.zero()
        return LogNumber.from_log2(self._log2 * exponent)

    # -- comparisons -------------------------------------------------
    def _cmp_key(self, other: Numeric) -> float:
        return log2_of(other)

    def __eq__(self, other: object) -> bool:
        try:
            return self._log2 == self._cmp_key(other)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return NotImplemented

    def __lt__(self, other: Numeric) -> bool:
        return self._log2 < self._cmp_key(other)

    def __le__(self, other: Numeric) -> bool:
        return self._log2 <= self._cmp_key(other)

    def __gt__(self, other: Numeric) -> bool:
        return self._log2 > self._cmp_key(other)

    def __ge__(self, other: Numeric) -> bool:
        return self._log2 >= self._cmp_key(other)

    def __hash__(self) -> int:
        return hash(("LogNumber", self._log2))

    def __bool__(self) -> bool:
        return not self.is_zero()

    def __repr__(self) -> str:
        if self.is_zero():
            return "LogNumber(0)"
        return f"LogNumber(log2={self._log2:.6g})"


def _log_add(a: float, b: float) -> float:
    """``log2(2**a + 2**b)`` computed stably."""
    if a == _NEG_INF:
        return b
    if b == _NEG_INF:
        return a
    hi, lo = (a, b) if a >= b else (b, a)
    diff = lo - hi
    if diff < -64:
        return hi
    return hi + math.log2(1.0 + 2.0 ** diff)


def _log_sub(a: float, b: float) -> float:
    """``log2(2**a - 2**b)``; requires ``a >= b``."""
    if b == _NEG_INF:
        return a
    if a < b:
        raise ValueError("LogNumber subtraction would be negative")
    if a == b:
        return _NEG_INF
    diff = b - a
    if diff < -64:
        return a
    return a + math.log2(1.0 - 2.0 ** diff)


def as_log(value: Numeric) -> LogNumber:
    """Coerce any supported numeric to :class:`LogNumber`."""
    if isinstance(value, LogNumber):
        return value
    return LogNumber(value)
