"""Small validation helpers shared by instance constructors.

Instances of the optimization problems carry numeric invariants from
the paper (e.g. the access-path bounds ``t_j * s_ij <= w_ij <= t_j``).
Constructors enforce them eagerly so that a malformed instance fails at
build time, not deep inside a cost computation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

Real = Union[int, float, Fraction]


class ValidationError(ValueError):
    """Raised when a problem instance violates a model invariant."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def check_positive(value: Real, name: str) -> None:
    """Require ``value > 0``."""
    require(value > 0, f"{name} must be positive, got {value!r}")


def check_nonnegative(value: Real, name: str) -> None:
    """Require ``value >= 0``."""
    require(value >= 0, f"{name} must be non-negative, got {value!r}")


def check_probability(value: Real, name: str) -> None:
    """Require ``0 <= value <= 1``."""
    require(0 <= value <= 1, f"{name} must lie in [0, 1], got {value!r}")


def check_fraction(value: Real, name: str) -> None:
    """Require ``0 < value <= 1`` (selectivities, fractions of clauses)."""
    require(0 < value <= 1, f"{name} must lie in (0, 1], got {value!r}")


def check_index(index: int, size: int, name: str) -> None:
    """Require ``0 <= index < size``."""
    require(
        0 <= index < size,
        f"{name} must lie in [0, {size}), got {index}",
    )
