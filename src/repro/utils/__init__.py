"""Shared numeric and utility substrate.

The constructed hardness instances manipulate numbers such as
``alpha ** (n * n)`` with ``alpha = 4 ** n`` — far beyond the range of
floats.  Two representations are supported throughout the library:

* exact mode — plain Python ``int`` / :class:`fractions.Fraction`
  arithmetic, used by default for small and medium instances;
* log mode — :class:`~repro.utils.lognum.LogNumber`, which tracks
  ``log2`` of the magnitude in a float and is used for wide parameter
  sweeps in the benchmark harness.

Both support ``+``, ``*``, ``/``, ``**`` and total ordering, so every
cost function in the library is written once and works for either.
"""

from repro.utils.lognum import LogNumber, as_log, log2_of
from repro.utils.rng import make_rng
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
    require,
)

__all__ = [
    "LogNumber",
    "as_log",
    "log2_of",
    "make_rng",
    "check_fraction",
    "check_positive",
    "check_probability",
    "require",
]
