"""File classification and cross-file context for the lint rules.

Most rules are local to one file, but they need to know *which* file
they are looking at (a cost-model module, the CLI, a benchmark) and a
few need project-wide facts — above all the runtime optimizer registry
(:data:`repro.runtime.runner.OPTIMIZERS`), which rule ``RPR004``
cross-checks against the ``@traced`` decorators in the optimizer
packages.

Classification is purely path-based so the linter works on any tree
that mirrors the repository layout (the test fixtures build miniature
``repro`` packages under a tmpdir): the dotted module name is the path
relative to the innermost ``repro`` package directory, benchmarks are
anything under a ``benchmarks/`` directory, examples anything under
``examples/``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SourceFile:
    """One parsed file plus everything the rules ask about it."""

    path: Path
    source: str
    tree: ast.Module
    lines: Tuple[str, ...]
    #: Dotted module path relative to the ``repro`` package
    #: (``"joinopt.cost"``), ``""`` for the package ``__init__`` and
    #: for files outside any ``repro`` package.
    module: str
    #: Path of the ``repro`` package directory this file lives under,
    #: or None for benchmarks/examples/stray files.
    package_root: Optional[Path]
    is_benchmark: bool
    is_example: bool


def classify(path: Path, source: str, tree: ast.Module) -> SourceFile:
    """Build the :class:`SourceFile` record for one parsed file."""
    resolved = path.resolve()
    parts = resolved.parts
    module = ""
    package_root: Optional[Path] = None
    if "repro" in parts:
        anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        package_root = Path(*parts[: anchor + 1])
        relative = parts[anchor + 1 :]
        pieces: List[str] = list(relative[:-1])
        stem = Path(relative[-1]).stem if relative else ""
        if stem and stem != "__init__":
            pieces.append(stem)
        module = ".".join(pieces)
    return SourceFile(
        path=path,
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
        module=module,
        package_root=package_root,
        is_benchmark="benchmarks" in parts,
        is_example="examples" in parts,
    )


def _registry_from_ast(tree: ast.Module) -> Optional[FrozenSet[str]]:
    """Function names referenced by the ``OPTIMIZERS`` dict literal."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "OPTIMIZERS"
                and isinstance(value, ast.Dict)
            ):
                names = {
                    entry.id
                    for entry in value.values
                    if isinstance(entry, ast.Name)
                }
                names.update(
                    entry.attr
                    for entry in value.values
                    if isinstance(entry, ast.Attribute)
                )
                return frozenset(names)
    return None


def _live_registry() -> FrozenSet[str]:
    """The installed registry, used when the linted tree has none."""
    from repro.runtime.runner import OPTIMIZERS

    return frozenset(
        getattr(run, "__name__", str(run)) for run in OPTIMIZERS.values()
    )


@dataclass
class Project:
    """Cross-file lint context, shared by every file of one run."""

    _registries: Dict[Path, Optional[FrozenSet[str]]] = field(
        default_factory=dict
    )

    def registered_optimizers(
        self, file: SourceFile
    ) -> Optional[FrozenSet[str]]:
        """The optimizer function names registered for ``file``'s tree.

        Parsed from ``runtime/runner.py`` next to the file's ``repro``
        package root when present (so fixture trees are self-contained);
        falls back to the installed registry.  Returns None only when
        even the fallback is unavailable — rules must then skip rather
        than guess.
        """
        root = file.package_root
        if root is None:
            return None
        if root not in self._registries:
            self._registries[root] = self._load_registry(root)
        return self._registries[root]

    def _load_registry(self, root: Path) -> Optional[FrozenSet[str]]:
        runner = root / "runtime" / "runner.py"
        if runner.is_file():
            try:
                tree = ast.parse(runner.read_text(encoding="utf-8"))
            except SyntaxError:
                return None
            return _registry_from_ast(tree)
        try:
            return _live_registry()
        except Exception:  # pragma: no cover - broken installation only
            return None


def module_matches(module: str, prefixes: Sequence[str]) -> bool:
    """True when ``module`` equals or nests under any of ``prefixes``."""
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )
