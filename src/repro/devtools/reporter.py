"""Text and JSON renderers for lint reports."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.devtools.engine import LintReport
from repro.devtools.rules import RULES

#: Schema tag of the JSON report (bump on incompatible change).
JSON_SCHEMA_VERSION = "repro.lint/1"


def render_text(report: LintReport) -> str:
    """One ``path:line:col: CODE message`` line per finding + summary."""
    lines = [diagnostic.render() for diagnostic in report.diagnostics]
    if report.ok:
        lines.append(
            f"{report.files_checked} files checked: no invariant violations"
        )
    else:
        counts = ", ".join(
            f"{code} x{count}" for code, count in report.counts().items()
        )
        lines.append(
            f"{report.files_checked} files checked: "
            f"{len(report.diagnostics)} violation"
            f"{'s' if len(report.diagnostics) != 1 else ''} ({counts})"
        )
    return "\n".join(lines)


def report_payload(report: LintReport) -> Dict[str, Any]:
    """The JSON report as a plain dict (see :data:`JSON_SCHEMA_VERSION`).

    Layout::

        {"version": "repro.lint/1",
         "ok": bool,
         "files_checked": int,
         "counts": {code: int},
         "diagnostics": [{"path", "line", "col", "code", "rule",
                          "message"}, ...]}
    """
    return {
        "version": JSON_SCHEMA_VERSION,
        "ok": report.ok,
        "files_checked": report.files_checked,
        "counts": report.counts(),
        "diagnostics": [
            diagnostic.to_json() for diagnostic in report.diagnostics
        ],
    }


def render_json(report: LintReport) -> str:
    """The JSON report, pretty-printed with stable key order."""
    return json.dumps(report_payload(report), indent=2, sort_keys=False)


def render_rule_list() -> str:
    """The ``--list-rules`` table: code, slug, one-line description."""
    lines: List[str] = []
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"{code}  {rule.name}")
        lines.append(f"       {rule.description}")
    return "\n".join(lines)
