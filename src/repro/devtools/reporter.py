"""Text and JSON renderers for lint reports."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.devtools.engine import LintReport
from repro.devtools.rules import RULES

#: Schema tag of the JSON report (bump on incompatible change).
JSON_SCHEMA_VERSION = "repro.lint/1"


def render_text(report: LintReport) -> str:
    """One ``path:line:col: CODE message`` line per finding + summary."""
    lines = [diagnostic.render() for diagnostic in report.diagnostics]
    if report.ok:
        lines.append(
            f"{report.files_checked} files checked: no invariant violations"
        )
    else:
        counts = ", ".join(
            f"{code} x{count}" for code, count in report.counts().items()
        )
        lines.append(
            f"{report.files_checked} files checked: "
            f"{len(report.diagnostics)} violation"
            f"{'s' if len(report.diagnostics) != 1 else ''} ({counts})"
        )
    return "\n".join(lines)


def report_payload(report: LintReport) -> Dict[str, Any]:
    """The JSON report as a plain dict (see :data:`JSON_SCHEMA_VERSION`).

    Layout::

        {"version": "repro.lint/1",
         "ok": bool,
         "files_checked": int,
         "counts": {code: int},
         "diagnostics": [{"path", "line", "col", "code", "rule",
                          "message"}, ...]}
    """
    return {
        "version": JSON_SCHEMA_VERSION,
        "ok": report.ok,
        "files_checked": report.files_checked,
        "counts": report.counts(),
        "diagnostics": [
            diagnostic.to_json() for diagnostic in report.diagnostics
        ],
    }


def render_json(report: LintReport) -> str:
    """The JSON report, pretty-printed with stable key order."""
    return json.dumps(report_payload(report), indent=2, sort_keys=False)


def validate_lint(payload: Dict[str, Any]) -> None:
    """Check a ``repro.lint/1`` payload (``ValueError`` on failure).

    CI consumes the uploaded report artifact; this is the gate that
    rejects a corrupt or incompatibly-versioned one.
    """
    if not isinstance(payload, dict):
        raise ValueError("lint payload must be an object")
    if payload.get("version") != JSON_SCHEMA_VERSION:
        raise ValueError(
            f"lint payload version must be {JSON_SCHEMA_VERSION!r}, "
            f"got {payload.get('version')!r}"
        )
    for field, kind in (
        ("ok", bool),
        ("files_checked", int),
        ("counts", dict),
        ("diagnostics", list),
    ):
        if not isinstance(payload.get(field), kind):
            raise ValueError(
                f"lint payload field {field!r} must be {kind.__name__}"
            )
    for item in payload["diagnostics"]:
        if not isinstance(item, dict):
            raise ValueError("lint diagnostics must be objects")
        for field, kind in (
            ("path", str),
            ("line", int),
            ("col", int),
            ("code", str),
            ("rule", str),
            ("message", str),
        ):
            if not isinstance(item.get(field), kind):
                raise ValueError(
                    f"lint diagnostic field {field!r} must be "
                    f"{kind.__name__}"
                )
    if payload["ok"] != (not payload["diagnostics"]):
        raise ValueError("lint payload 'ok' is inconsistent with 'diagnostics'")


def render_rule_list() -> str:
    """The ``--list-rules`` table: code, slug, one-line description."""
    lines: List[str] = []
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"{code}  {rule.name}")
        lines.append(f"       {rule.description}")
    return "\n".join(lines)
