"""``# repro: noqa`` suppression comments.

A diagnostic is suppressed when its line carries a project noqa
comment:

* ``# repro: noqa`` — suppress every rule on that line;
* ``# repro: noqa[RPR001]`` / ``# repro: noqa[RPR001,RPR005]`` —
  suppress only the listed codes.

Plain flake8-style ``# noqa`` is deliberately *not* honoured: the
project pass and the general-purpose linters must be silenceable
independently, so a blanket ``# noqa`` cannot hide an invariant
violation.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterator, Sequence, Tuple

from repro.devtools.diagnostics import Diagnostic

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9,\s]*)\])?"
)

#: Sentinel meaning "every code is suppressed on this line".
ALL_CODES: FrozenSet[str] = frozenset({"*"})


def suppression_map(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the set of codes suppressed there.

    The value is :data:`ALL_CODES` for a bare ``# repro: noqa`` and a
    frozenset of upper-cased codes for the bracketed form.  An empty
    bracket list (``noqa[]``) suppresses nothing.
    """
    suppressed: Dict[int, FrozenSet[str]] = {}
    for number, text in enumerate(lines, start=1):
        if "noqa" not in text:  # cheap pre-filter
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressed[number] = ALL_CODES
        else:
            listed = frozenset(
                part.strip().upper()
                for part in codes.split(",")
                if part.strip()
            )
            if listed:
                suppressed[number] = listed
    return suppressed


def listed_suppressions(
    lines: Sequence[str],
) -> Iterator[Tuple[int, int, str]]:
    """``(line, col, CODE)`` for every bracketed suppression id.

    Rule ``RPR012`` validates these against the known RPR + ANA codes:
    a typo'd id (``noqa[RPR02]``) used to be silently ignored, leaving
    the author convinced a finding was suppressed when it was not.
    """
    for number, text in enumerate(lines, start=1):
        if "noqa" not in text:  # cheap pre-filter
            continue
        match = _NOQA_RE.search(text)
        if match is None or match.group("codes") is None:
            continue
        for part in match.group("codes").split(","):
            code = part.strip().upper()
            if code:
                yield number, match.start(), code


def is_suppressed(
    diagnostic: Diagnostic, suppressed: Dict[int, FrozenSet[str]]
) -> bool:
    """True when the diagnostic's line carries a matching suppression."""
    codes = suppressed.get(diagnostic.line)
    if codes is None:
        return False
    return codes is ALL_CODES or diagnostic.code in codes
