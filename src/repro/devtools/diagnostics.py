"""The diagnostic record every lint rule emits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

#: Code reserved for files the linter cannot parse at all.
PARSE_ERROR_CODE = "RPR000"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``path:line:col: CODE message``.

    Ordering is lexicographic on ``(path, line, col, code)`` so reports
    are deterministic regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str

    def render(self) -> str:
        """The one-line human-readable form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, Union[str, int]]:
        """The JSON-reporter form (all keys always present)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
        }
