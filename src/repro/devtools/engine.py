"""File collection and rule driving for ``repro lint``."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.devtools.diagnostics import PARSE_ERROR_CODE, Diagnostic
from repro.devtools.noqa import is_suppressed, suppression_map
from repro.devtools.project import Project, classify
from repro.devtools.rules import RULES, Rule

PathLike = Union[str, Path]

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", "results", ".git", ".hypothesis"}


def collect_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Directories are walked recursively for ``*.py``; hidden directories,
    caches and ``*.egg-info`` trees are skipped.  Missing paths raise
    ``FileNotFoundError`` — a typo'd path must fail the build, not lint
    zero files successfully.
    """
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                parts = found.parts
                if any(
                    part in _SKIP_DIRS
                    or part.startswith(".")
                    or part.endswith(".egg-info")
                    for part in parts
                ):
                    continue
                seen.setdefault(found, None)
        elif path.is_file():
            seen.setdefault(path, None)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(seen)


@dataclass(frozen=True)
class LintReport:
    """Everything one lint run produced."""

    files_checked: int
    diagnostics: Tuple[Diagnostic, ...]

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def counts(self) -> Dict[str, int]:
        """Diagnostic count per code, sorted by code."""
        totals: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            totals[diagnostic.code] = totals.get(diagnostic.code, 0) + 1
        return dict(sorted(totals.items()))


def _select_rules(select: Optional[Iterable[str]]) -> List[Rule]:
    if select is None:
        return [RULES[code] for code in sorted(RULES)]
    chosen: List[Rule] = []
    for code in select:
        normalized = code.strip().upper()
        if normalized not in RULES:
            raise ValueError(
                f"unknown rule code {code!r}; known: {sorted(RULES)}"
            )
        chosen.append(RULES[normalized])
    return sorted(chosen, key=lambda rule: rule.code)


def lint_paths(
    paths: Sequence[PathLike],
    select: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the selected rules.

    ``select`` restricts the run to the given codes (default: all).
    Unreadable or unparsable files yield an ``RPR000`` diagnostic —
    parse errors are findings, not crashes — but ``RPR000`` cannot be
    suppressed or deselected.
    """
    rules = _select_rules(select)
    project = Project()
    diagnostics: List[Diagnostic] = []
    files = collect_files(paths)
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=int(line),
                    col=0,
                    code=PARSE_ERROR_CODE,
                    rule="parse-error",
                    message=f"cannot lint file: {exc}",
                )
            )
            continue
        file = classify(path, source, tree)
        suppressed = suppression_map(file.lines)
        for rule in rules:
            for diagnostic in rule.run(file, project):
                if not is_suppressed(diagnostic, suppressed):
                    diagnostics.append(diagnostic)
    return LintReport(
        files_checked=len(files),
        diagnostics=tuple(sorted(diagnostics)),
    )
