"""The invariant rules (``RPR001``...) and their registry.

Each rule is a generator over one parsed file (plus the shared
:class:`~repro.devtools.project.Project` context) yielding
``(line, col, message)`` findings; the registry wraps those into
:class:`~repro.devtools.diagnostics.Diagnostic` records.  Rules are
deliberately narrow: each one machine-checks a discipline the gap
theorems (or the PR 1/PR 2 infrastructure) depend on, documented in
``docs/devtools.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.project import Project, SourceFile, module_matches

Finding = Tuple[int, int, str]
CheckFn = Callable[[SourceFile, Project], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: a code, a slug, and its check function."""

    code: str
    name: str
    description: str
    check: CheckFn

    def run(self, file: SourceFile, project: Project) -> List[Diagnostic]:
        return [
            Diagnostic(
                path=str(file.path),
                line=line,
                col=col,
                code=self.code,
                rule=self.name,
                message=message,
            )
            for line, col, message in self.check(file, project)
        ]


#: Code -> rule, in registration (= code) order.
RULES: Dict[str, Rule] = {}


def rule_codes() -> List[str]:
    """All registered codes, sorted."""
    return sorted(RULES)


def register(code: str, name: str, description: str) -> Callable[[CheckFn], CheckFn]:
    def decorate(check: CheckFn) -> CheckFn:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(
            code=code, name=name, description=description, check=check
        )
        return check

    return decorate


def _loc(node: ast.AST) -> Tuple[int, int]:
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0)


# ---------------------------------------------------------------------
# RPR001 — exact cost arithmetic
# ---------------------------------------------------------------------

#: Modules implementing the paper's cost recursions.  Costs there are
#: compared across gaps of size alpha**Theta(n); one float round-trip
#: collapses the Theorem 9/15 separations, so these modules must stay
#: on int / Fraction / LogNumber arithmetic.
COST_MODEL_MODULES = ("joinopt.cost", "hashjoin.cost_model", "starqo.cost")


@register(
    "RPR001",
    "raw-float-in-cost-model",
    "cost-model modules must use exact arithmetic "
    "(int/Fraction/LogNumber), not raw floats",
)
def _check_raw_float(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    if file.module not in COST_MODEL_MODULES:
        return
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            line, col = _loc(node)
            yield line, col, (
                f"float literal {node.value!r} in cost-model module; "
                "use int, Fraction or LogNumber so gap comparisons stay exact"
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            line, col = _loc(node)
            yield line, col, (
                "float(...) conversion in cost-model module; "
                "cost values must not round-trip through floats"
            )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "math":
                    line, col = _loc(node)
                    yield line, col, (
                        "math import in cost-model module; float-domain "
                        "helpers belong in repro.utils.lognum"
                    )
        elif isinstance(node, ast.ImportFrom) and node.module == "math":
            line, col = _loc(node)
            yield line, col, (
                "math import in cost-model module; float-domain "
                "helpers belong in repro.utils.lognum"
            )


# ---------------------------------------------------------------------
# RPR002 — seeded randomness only
# ---------------------------------------------------------------------

#: The one module allowed to touch ``random`` directly; everything
#: else takes a seed or ``random.Random`` through
#: :func:`repro.utils.rng.make_rng`, keeping experiments replayable.
RNG_HOME = "utils.rng"


@register(
    "RPR002",
    "unmanaged-randomness",
    "direct random/numpy.random use outside repro.utils.rng breaks "
    "experiment reproducibility",
)
def _check_randomness(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    if file.module == RNG_HOME:
        return
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith(
                    ("random.", "numpy.random")
                ):
                    line, col = _loc(node)
                    yield line, col, (
                        f"direct import of {alias.name!r}; route all "
                        "randomness through repro.utils.rng (seeded)"
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "random" or module.startswith("numpy.random"):
                line, col = _loc(node)
                yield line, col, (
                    f"direct import from {module!r}; route all "
                    "randomness through repro.utils.rng (seeded)"
                )
            elif module == "numpy" and any(
                alias.name == "random" for alias in node.names
            ):
                line, col = _loc(node)
                yield line, col, (
                    "direct import of numpy.random; route all "
                    "randomness through repro.utils.rng (seeded)"
                )


# ---------------------------------------------------------------------
# RPR003 — no internal use of deprecated result aliases
# ---------------------------------------------------------------------

DEPRECATED_ALIASES = ("OptimizerResult", "QOHPlan")

#: Where the aliases are defined (and may be named).
ALIAS_HOME = "core.results"


@register(
    "RPR003",
    "deprecated-result-alias",
    "internal code must use repro.core.results.PlanResult, not the "
    "deprecated OptimizerResult/QOHPlan aliases",
)
def _check_deprecated_alias(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    if file.module == ALIAS_HOME:
        return
    for node in ast.walk(file.tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in DEPRECATED_ALIASES:
                    line, col = _loc(node)
                    yield line, col, (
                        f"import of deprecated alias {alias.name!r}; "
                        "use repro.core.results.PlanResult"
                    )
        elif isinstance(node, ast.Name) and node.id in DEPRECATED_ALIASES:
            line, col = _loc(node)
            yield line, col, (
                f"use of deprecated alias {node.id!r}; "
                "use repro.core.results.PlanResult"
            )
        elif (
            isinstance(node, ast.Attribute)
            and node.attr in DEPRECATED_ALIASES
        ):
            line, col = _loc(node)
            yield line, col, (
                f"attribute access to deprecated alias {node.attr!r}; "
                "use repro.core.results.PlanResult"
            )


# ---------------------------------------------------------------------
# RPR004 — optimizers registered and span-instrumented
# ---------------------------------------------------------------------

#: Packages whose ``@traced("optimize.*")`` functions are optimizer
#: entry points and must be drivable by the sweep runner.
OPTIMIZER_PACKAGES = ("joinopt.optimizers", "hashjoin", "starqo")


def _traced_span_name(decorator: ast.expr) -> Optional[str]:
    """The span-name argument when ``decorator`` is ``@traced(...)``."""
    if not isinstance(decorator, ast.Call):
        return None
    func = decorator.func
    name = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else None
    )
    if name != "traced" or not decorator.args:
        return None
    first = decorator.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


@register(
    "RPR004",
    "unregistered-optimizer",
    "every optimizer entry point must be registered in "
    "repro.runtime.runner.OPTIMIZERS and carry a @traced span",
)
def _check_optimizer_registry(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    if not module_matches(file.module, OPTIMIZER_PACKAGES):
        return
    registered = project.registered_optimizers(file)
    if registered is None:  # no registry to check against: skip, not guess
        return
    for node in file.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        spans = [
            span
            for span in map(_traced_span_name, node.decorator_list)
            if span is not None
        ]
        optimizer_span = any(span.startswith("optimize") for span in spans)
        if optimizer_span and node.name not in registered:
            line, col = _loc(node)
            yield line, col, (
                f"optimizer {node.name!r} is span-instrumented but not "
                "registered in repro.runtime.runner.OPTIMIZERS; sweeps "
                "and the CLI cannot drive it"
            )
        elif node.name in registered and not optimizer_span:
            line, col = _loc(node)
            yield line, col, (
                f"registered optimizer {node.name!r} lacks a "
                '@traced("optimize.*") span; its work would be invisible '
                "to the observability layer"
            )


# ---------------------------------------------------------------------
# RPR005 — no swallowed exceptions
# ---------------------------------------------------------------------

_BROAD_EXCEPTIONS = ("Exception", "BaseException")


def _is_broad(handler_type: Optional[ast.expr]) -> bool:
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD_EXCEPTIONS
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(element) for element in handler_type.elts)
    return False


def _is_noop_body(body: Sequence[ast.stmt]) -> bool:
    for statement in body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or bare ``...``
        return False
    return True


@register(
    "RPR005",
    "swallowed-exception",
    "bare except clauses and broad do-nothing handlers hide worker "
    "failures the sweep outcomes must report",
)
def _check_swallowed_exceptions(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            line, col = _loc(node)
            yield line, col, (
                "bare 'except:' catches SystemExit/KeyboardInterrupt too; "
                "name the exception types"
            )
        elif _is_broad(node.type) and _is_noop_body(node.body):
            line, col = _loc(node)
            yield line, col, (
                "broad exception handler discards the failure; record it "
                "(the sweep runner must surface worker errors) or narrow "
                "the exception type"
            )


# ---------------------------------------------------------------------
# RPR006 — no mutable default arguments
# ---------------------------------------------------------------------

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CONSTRUCTORS = ("list", "dict", "set", "bytearray")


def _is_mutable_default(default: ast.expr) -> bool:
    if isinstance(default, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(default, ast.Call)
        and isinstance(default.func, ast.Name)
        and default.func.id in _MUTABLE_CONSTRUCTORS
    )


@register(
    "RPR006",
    "mutable-default-argument",
    "mutable default arguments alias state across calls",
)
def _check_mutable_defaults(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    for node in ast.walk(file.tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        defaults = list(node.args.defaults) + [
            default
            for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                line, col = _loc(default)
                yield line, col, (
                    "mutable default argument is shared across calls; "
                    "default to None and build inside the function"
                )


# ---------------------------------------------------------------------
# RPR007 — the CLI routes through the facade
# ---------------------------------------------------------------------

CLI_MODULES = ("cli", "__main__")

#: What the CLI may import from the project: the public facade, the
#: serialization layer, the devtools pass itself, utilities, and the
#: observability report renderers.  Everything else (optimizer
#: implementations, reductions, the runner) must be reached through
#: ``repro.api`` so the facade stays the single compatibility surface.
CLI_ALLOWED_PREFIXES = (
    "repro.api",
    "repro.cli",  # ``__main__`` dispatches to the CLI module itself
    "repro.io",
    "repro.devtools",
    "repro.utils",
    "repro.observability",
    "repro.service",  # serve/request subcommands drive the daemon
)
_CLI_ALLOWED_TOP_NAMES = tuple(
    prefix.split(".", 1)[1] for prefix in CLI_ALLOWED_PREFIXES
)


@register(
    "RPR007",
    "cli-bypasses-facade",
    "CLI subcommands must route through repro.api (plus io/utils/"
    "observability/devtools), never core internals",
)
def _check_cli_routing(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    if file.module not in CLI_MODULES:
        return
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or not alias.name.startswith(
                    "repro."
                ):
                    continue
                if not module_matches(alias.name, CLI_ALLOWED_PREFIXES):
                    line, col = _loc(node)
                    yield line, col, (
                        f"CLI imports internal module {alias.name!r}; "
                        "expose what it needs on repro.api instead"
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "repro":
                for alias in node.names:
                    if alias.name not in _CLI_ALLOWED_TOP_NAMES:
                        line, col = _loc(node)
                        yield line, col, (
                            f"CLI imports repro.{alias.name}; "
                            "expose what it needs on repro.api instead"
                        )
            elif module.startswith("repro.") and not module_matches(
                module, CLI_ALLOWED_PREFIXES
            ):
                line, col = _loc(node)
                yield line, col, (
                    f"CLI imports internal module {module!r}; "
                    "expose what it needs on repro.api instead"
                )


# ---------------------------------------------------------------------
# RPR008 — benchmarks leave global state alone
# ---------------------------------------------------------------------

#: Process-wide installers; benchmarks must use the scoped ``use_*``
#: context managers instead so EXP tables cannot leak state into each
#: other within one pytest process.
_GLOBAL_INSTALLERS = (
    "install_cache",
    "install_tracer",
    "install_metrics",
    "install_event_log",
)


@register(
    "RPR008",
    "benchmark-global-mutation",
    "benchmarks must not mutate global state (module attributes, "
    "os.environ, process-wide installers); EXP tables must be "
    "order-independent",
)
def _check_benchmark_globals(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    if not file.is_benchmark:
        return
    imported: Set[str] = set()
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imported.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                imported.add(alias.asname or alias.name)
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Global):
            line, col = _loc(node)
            yield line, col, (
                "global statement in a benchmark; pass state explicitly"
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in imported
                ):
                    line, col = _loc(target)
                    yield line, col, (
                        f"benchmark mutates imported name "
                        f"{target.value.id!r} ({target.value.id}."
                        f"{target.attr} = ...); benchmarks must be "
                        "side-effect free"
                    )
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "environ"
                ):
                    line, col = _loc(target)
                    yield line, col, (
                        "benchmark writes os.environ; environment "
                        "mutation leaks across EXP tables"
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in _GLOBAL_INSTALLERS:
                line, col = _loc(node)
                yield line, col, (
                    f"benchmark calls process-wide {name}(); use the "
                    "scoped use_cache/use_tracer/use_metrics/"
                    "use_event_log context managers"
                )


# ---------------------------------------------------------------------
# RPR009 — perf kernels stay exact and cache-routed
# ---------------------------------------------------------------------

#: The compiled/incremental evaluation layer.  Its contract is
#: bit-identity with the reference cost path, so the same exact-
#: arithmetic discipline as the cost models applies (floats would make
#: "identical" meaningless)...
PERF_EXACT_MODULES = ("perf.kernels", "perf.incremental", "perf.qoh")

#: ...and the evaluator modules must consult the active CostCache so
#: sweeps report exact cost_evaluations/cache_hits whichever path
#: computed an entry.
PERF_CACHE_ROUTED_MODULES = ("perf.incremental", "perf.qoh")

CACHE_HOME = "repro.runtime.costcache"


@register(
    "RPR009",
    "perf-kernel-discipline",
    "perf evaluation kernels must stay on exact arithmetic and route "
    "evaluations through the active cost cache",
)
def _check_perf_kernels(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    if file.module in PERF_EXACT_MODULES:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Constant) and isinstance(
                node.value, float
            ):
                line, col = _loc(node)
                yield line, col, (
                    f"float literal {node.value!r} in a perf kernel "
                    "module; kernels must reproduce the reference costs "
                    "bit for bit (int/Fraction, or replaying the "
                    "instance's own values)"
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                line, col = _loc(node)
                yield line, col, (
                    "float(...) conversion in a perf kernel module; "
                    "kernel results must not round-trip through floats"
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "math":
                        line, col = _loc(node)
                        yield line, col, (
                            "math import in a perf kernel module; "
                            "float-domain helpers belong in "
                            "repro.utils.lognum"
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "math":
                line, col = _loc(node)
                yield line, col, (
                    "math import in a perf kernel module; float-domain "
                    "helpers belong in repro.utils.lognum"
                )
    if file.module in PERF_CACHE_ROUTED_MODULES:
        routed = any(
            isinstance(node, ast.ImportFrom)
            and node.module == CACHE_HOME
            or (
                isinstance(node, ast.Import)
                and any(alias.name == CACHE_HOME for alias in node.names)
            )
            for node in ast.walk(file.tree)
        )
        if not routed:
            yield 1, 0, (
                f"evaluator module {file.module!r} never imports "
                f"{CACHE_HOME}; kernel evaluations must flow through "
                "the active CostCache so sweep metrics stay exact"
            )


# ---------------------------------------------------------------------
# RPR010 — fault injection is confined to the chaos layer
# ---------------------------------------------------------------------

#: The one module allowed to construct FaultPlan.  Tests construct
#: plans freely (the linter does not run over tests/), but production
#: code wiring a chaos schedule into a sweep would silently corrupt
#: experiment results — every such wiring point must live behind the
#: resilience module's API.
FAULT_PLAN_HOME = "runtime.resilience"


@register(
    "RPR010",
    "fault-plan-confined",
    "only repro.runtime.resilience may construct FaultPlan; production "
    "sweeps must never run with a chaos schedule installed",
)
def _check_fault_plan_confined(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    if file.module == FAULT_PLAN_HOME:
        return
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "FaultPlan":
            line, col = _loc(node)
            yield line, col, (
                "FaultPlan constructed outside repro.runtime.resilience; "
                "fault injection is a chaos-testing tool and must never "
                "be wired into production sweeps (pass plans built by "
                "test code through the resilience API instead)"
            )


# ---------------------------------------------------------------------
# RPR011 — the service invokes optimization only through repro.api
# ---------------------------------------------------------------------

#: The daemon package.  Its replies must be bit-identical to direct
#: ``repro.api`` calls, which only holds if every computation flows
#: through the same facade entry points — so service modules may not
#: import optimizers, reductions or the runner directly.
SERVICE_PACKAGE = ("service",)

#: What the service may import from the project: the facade (request
#: objects and ``execute_request``), itself, serialization, utilities,
#: and the observability layer for per-request span trees.
SERVICE_ALLOWED_PREFIXES = (
    "repro.api",
    "repro.service",
    "repro.io",
    "repro.utils",
    "repro.observability",
)
_SERVICE_ALLOWED_TOP_NAMES = tuple(
    prefix.split(".", 1)[1] for prefix in SERVICE_ALLOWED_PREFIXES
)


@register(
    "RPR011",
    "service-bypasses-api",
    "repro.service modules must invoke optimization through repro.api "
    "request objects, never optimizer/runner internals",
)
def _check_service_routing(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    if not module_matches(file.module, SERVICE_PACKAGE):
        return
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or not alias.name.startswith(
                    "repro."
                ):
                    continue
                if not module_matches(
                    alias.name, SERVICE_ALLOWED_PREFIXES
                ):
                    line, col = _loc(node)
                    yield line, col, (
                        f"service imports internal module "
                        f"{alias.name!r}; route the computation through "
                        "repro.api request objects instead"
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "repro":
                for alias in node.names:
                    if alias.name not in _SERVICE_ALLOWED_TOP_NAMES:
                        line, col = _loc(node)
                        yield line, col, (
                            f"service imports repro.{alias.name}; route "
                            "the computation through repro.api request "
                            "objects instead"
                        )
            elif module.startswith("repro.") and not module_matches(
                module, SERVICE_ALLOWED_PREFIXES
            ):
                line, col = _loc(node)
                yield line, col, (
                    f"service imports internal module {module!r}; route "
                    "the computation through repro.api request objects "
                    "instead"
                )


# ---------------------------------------------------------------------
# RPR012 — suppression comments must name real rules
# ---------------------------------------------------------------------


@register(
    "RPR012",
    "unknown-suppression-code",
    "# repro: noqa[...] must list known RPR/ANA rule codes",
)
def _check_unknown_suppression(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    """A typo'd suppression id is worse than none: the author walks
    away convinced a finding is silenced while the real code keeps
    firing (or, for a not-yet-triggered rule, *would* fire unseen).
    Validate every bracketed id against the union of the lint (RPR)
    and analyzer (ANA) catalogues."""
    from repro.devtools.analysis.codes import ANALYSIS_CODES
    from repro.devtools.diagnostics import PARSE_ERROR_CODE
    from repro.devtools.noqa import listed_suppressions

    known = set(RULES) | set(ANALYSIS_CODES) | {PARSE_ERROR_CODE}
    for line, col, code in listed_suppressions(file.lines):
        if code not in known:
            yield line, col, (
                f"unknown rule code {code!r} in a '# repro: noqa[...]' "
                "suppression; known codes are the RPR rules "
                "(repro lint --list-rules) and the ANA analyzer codes "
                "(repro analyze --list-passes)"
            )


# ---------------------------------------------------------------------
# RPR013 — instance registries are executor machinery
# ---------------------------------------------------------------------

#: The packages allowed to construct InstanceRegistry: the sweep
#: executor (pool initializers, serial fallbacks) and the service
#: daemon's keep-alive LRU.  Anywhere else, a private registry would
#: fork the content-addressed store the executor reasons about —
#: ship-bytes accounting, eviction bounds and journal-fingerprint
#: agreement all assume one registry per worker/daemon, owned by the
#: runtime.  Callers hold :class:`InstanceRef` keys, not registries.
REGISTRY_HOMES = ("runtime", "service")


@register(
    "RPR013",
    "registry-outside-runtime",
    "only repro.runtime and repro.service may construct "
    "InstanceRegistry; other code must pass InstanceRef keys through "
    "the executor API",
)
def _check_registry_confined(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    if module_matches(file.module, REGISTRY_HOMES):
        return
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        # Catch classmethod constructors too: InstanceRegistry.from_payloads(...)
        constructs = name == "InstanceRegistry" or (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "InstanceRegistry"
        )
        if constructs:
            line, col = _loc(node)
            yield line, col, (
                "InstanceRegistry constructed outside repro.runtime / "
                "repro.service; the executor owns instance registries "
                "(ship InstanceRef keys through run_sweep / the service "
                "daemon instead of building a private store)"
            )


# ---------------------------------------------------------------------
# RPR014 — telemetry goes through the observability API
# ---------------------------------------------------------------------

#: The instrumented layers.  Operational counters there must be
#: emitted through :mod:`repro.observability.metrics` (and events
#: through the event log), not accumulated in ad-hoc module globals —
#: a private ``_N_THINGS += 1`` is invisible to ``repro top``, the
#: exporter, and the service's counter-identity check.
TELEMETRY_MODULES = ("runtime", "service", "perf")

#: Pre-registry counters kept for API compatibility: each is exposed
#: through a documented accessor and mirrored into the metrics
#: registry at its increment site.  New counters must not join this
#: list — emit through the metrics API instead.
_COUNTER_GRANDFATHERS = (("perf.kernels", "_COMPILES"),)


@register(
    "RPR014",
    "ad-hoc-telemetry-counter",
    "runtime/service/perf code must emit operational counters through "
    "the MetricsRegistry / event-log API, not module-level globals",
)
def _check_adhoc_counters(
    file: SourceFile, project: Project
) -> Iterator[Finding]:
    if not module_matches(file.module, TELEMETRY_MODULES):
        return
    # Names bound at module level to an int literal: counter candidates.
    module_ints: Set[str] = set()
    for stmt in file.tree.body:
        targets: Sequence[ast.expr] = ()
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = (stmt.target,)
            value = stmt.value
        else:
            continue
        if not (
            isinstance(value, ast.Constant)
            and isinstance(value.value, int)
            and not isinstance(value.value, bool)
        ):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                module_ints.add(target.id)
    if not module_ints:
        return
    grandfathered = {
        name
        for module, name in _COUNTER_GRANDFATHERS
        if module == file.module
    }
    for node in ast.walk(file.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        declared: Set[str] = set()
        for inner in ast.walk(node):
            if isinstance(inner, ast.Global):
                declared.update(inner.names)
        if not (declared & module_ints):
            continue
        for inner in ast.walk(node):
            if not isinstance(inner, ast.AugAssign):
                continue
            target = inner.target
            if not (
                isinstance(target, ast.Name)
                and target.id in declared
                and target.id in module_ints
            ):
                continue
            if target.id in grandfathered:
                continue
            line, col = _loc(inner)
            yield line, col, (
                f"module-level counter {target.id!r} incremented in "
                f"{node.name}(); emit through the metrics registry "
                "(repro.observability.metrics.inc) so the counter is "
                "visible to repro top and the telemetry exporter"
            )
