"""Project-specific static analysis (the ``repro lint`` pass).

The paper's gap theorems are only as trustworthy as the code
discipline behind them: cost arithmetic must stay exact, randomness
must stay seeded, every optimizer must be registered and span-traced,
and the sweep runner must never swallow a worker failure.  This
package machine-checks those invariants with an AST-based linter —
stdlib only, no runtime dependencies — exposed as the ``repro lint``
CLI subcommand and enforced in CI alongside ``mypy --strict``.

* :mod:`repro.devtools.diagnostics` — the :class:`Diagnostic` record;
* :mod:`repro.devtools.project` — file classification and the
  cross-file facts rules need (the runtime optimizer registry);
* :mod:`repro.devtools.rules` — the rule registry (``RPR001``...);
* :mod:`repro.devtools.noqa` — ``# repro: noqa`` suppressions;
* :mod:`repro.devtools.engine` — file collection and rule driving;
* :mod:`repro.devtools.reporter` — text and JSON renderers;
* :mod:`repro.devtools.analysis` — the whole-program analyzer behind
  ``repro analyze`` (exactness taint, lock discipline, schema
  registry; ``ANA...`` codes, ``repro.analysis/1`` reports).
"""

from repro.devtools.analysis import (
    ANALYSIS_SCHEMA_VERSION,
    AnalysisReport,
    analysis_codes,
    analyze_paths,
    validate_analysis,
)
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.engine import LintReport, lint_paths
from repro.devtools.reporter import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_text,
    validate_lint,
)
from repro.devtools.rules import RULES, Rule, rule_codes

__all__ = [
    "ANALYSIS_SCHEMA_VERSION",
    "AnalysisReport",
    "Diagnostic",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "RULES",
    "Rule",
    "analysis_codes",
    "analyze_paths",
    "lint_paths",
    "render_json",
    "render_text",
    "rule_codes",
    "validate_analysis",
    "validate_lint",
]
