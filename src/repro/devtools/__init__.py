"""Project-specific static analysis (the ``repro lint`` pass).

The paper's gap theorems are only as trustworthy as the code
discipline behind them: cost arithmetic must stay exact, randomness
must stay seeded, every optimizer must be registered and span-traced,
and the sweep runner must never swallow a worker failure.  This
package machine-checks those invariants with an AST-based linter —
stdlib only, no runtime dependencies — exposed as the ``repro lint``
CLI subcommand and enforced in CI alongside ``mypy --strict``.

* :mod:`repro.devtools.diagnostics` — the :class:`Diagnostic` record;
* :mod:`repro.devtools.project` — file classification and the
  cross-file facts rules need (the runtime optimizer registry);
* :mod:`repro.devtools.rules` — the rule registry (``RPR001``...);
* :mod:`repro.devtools.noqa` — ``# repro: noqa[RPRxxx]`` suppressions;
* :mod:`repro.devtools.engine` — file collection and rule driving;
* :mod:`repro.devtools.reporter` — text and JSON renderers.
"""

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.engine import LintReport, lint_paths
from repro.devtools.reporter import JSON_SCHEMA_VERSION, render_json, render_text
from repro.devtools.rules import RULES, Rule, rule_codes

__all__ = [
    "Diagnostic",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "RULES",
    "Rule",
    "lint_paths",
    "render_json",
    "render_text",
    "rule_codes",
]
