"""The shared whole-program model the analysis passes run over.

Where the lint rules look at one file at a time, the analyzer passes
need the *program*: which dotted module a file is, what every local
name is bound to (local def, class, import, module constant), which
project function a call site resolves to, and which ``self._*``
attributes a class owns.  :class:`ProjectModel` builds all of that
once per ``repro`` package root from the already-parsed
:class:`~repro.devtools.project.SourceFile` records; the taint, lock
and schema passes share the one model.

Resolution is deliberately static and best-effort: a name the model
cannot resolve is an *external* target, and the passes treat external
calls optimistically (no taint, no sink).  That keeps the analyzer
free of false positives from dynamic dispatch at the cost of missing
taint routed through callbacks — the right trade for a gating CI
check.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.devtools.project import SourceFile

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: ``# repro: boundary[exactness]`` on a ``def`` (or its decorator /
#: signature lines) declares an audited exactness boundary: the taint
#: pass treats the function's return as clean and does not analyze its
#: body as a sink.
_BOUNDARY_RE = re.compile(
    r"#\s*repro:\s*boundary(?:\[(?P<tags>[A-Za-z0-9,\s_-]*)\])?"
)

#: Constructor names that produce lock-like objects.
_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)


@dataclass(frozen=True)
class FunctionInfo:
    """One top-level function or method of the analyzed program."""

    module: str
    qualname: str
    name: str
    class_name: Optional[str]
    node: FunctionNode
    path: Path
    boundary: bool
    params: Tuple[str, ...]

    @property
    def key(self) -> str:
        """Stable summary-table key."""
        return f"{self.module}:{self.qualname}"


@dataclass
class ClassInfo:
    """One class: its methods and the lock attributes it owns.

    ``lock_attrs`` contains every ``self`` attribute that *is* a lock
    for discipline purposes: ``threading.Lock()`` / ``RLock()``
    assignments, attributes named ``_lock`` / ``*_lock``, and —
    crucially — ``threading.Condition(self._lock)`` aliases, which
    acquire the underlying lock when entered.
    """

    module: str
    name: str
    node: ast.ClassDef
    path: Path
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    lock_attrs: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One module: its file plus the name-binding tables."""

    name: str
    file: SourceFile
    #: local name -> dotted target ("utils.rng.make_rng", "math",
    #: "fractions.Fraction"); project-internal targets are relative to
    #: the ``repro`` package.
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level ``NAME = <expr>`` assignments.
    constants: Dict[str, ast.expr] = field(default_factory=dict)


@dataclass(frozen=True)
class CallTarget:
    """What a call/name site resolves to."""

    kind: str  # "function" | "class" | "constant" | "external" | "unknown"
    dotted: str = ""
    function: Optional[FunctionInfo] = None
    cls: Optional[ClassInfo] = None
    module_name: str = ""
    attr: str = ""


_UNKNOWN = CallTarget(kind="unknown")


def _strip_package(dotted: str) -> str:
    """Make project-internal dotted names package-relative."""
    if dotted == "repro":
        return ""
    if dotted.startswith("repro."):
        return dotted[len("repro."):]
    return dotted


def attr_chain(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name bases."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        parts.reverse()
        return parts
    return None


def _has_boundary_comment(file: SourceFile, node: FunctionNode) -> bool:
    start = node.lineno
    if node.decorator_list:
        start = min(start, node.decorator_list[0].lineno)
    stop = node.body[0].lineno if node.body else node.lineno + 1
    for lineno in range(start, stop):
        if 1 <= lineno <= len(file.lines):
            if _BOUNDARY_RE.search(file.lines[lineno - 1]):
                return True
    return False


def _is_lock_ctor(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_CTORS
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_CTORS
    return False


def _self_attr_assignments(node: ast.ClassDef) -> List[Tuple[str, ast.expr]]:
    """Every ``self.X = <expr>`` in the class body, in source order."""
    found: List[Tuple[str, ast.expr]] = []
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Assign):
            continue
        for target in sub.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                found.append((target.attr, sub.value))
    return found


def _lock_attrs_of(node: ast.ClassDef) -> Set[str]:
    assignments = _self_attr_assignments(node)
    locks: Set[str] = {
        attr
        for attr, value in assignments
        if _is_lock_ctor(value) or attr == "_lock" or attr.endswith("_lock")
    }
    # Fixpoint over Condition(self.X) aliases of already-known locks.
    changed = True
    while changed:
        changed = False
        for attr, value in assignments:
            if attr in locks or not _is_lock_ctor(value):
                continue
            call = value
            assert isinstance(call, ast.Call)
            for arg in call.args:
                if (
                    isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "self"
                    and arg.attr in locks
                ):
                    locks.add(attr)
                    changed = True
    return locks


def _param_names(node: FunctionNode) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs]
    names.extend(a.arg for a in args.args)
    names.extend(a.arg for a in args.kwonlyargs)
    return tuple(names)


class ProjectModel:
    """Name-resolved view of one ``repro`` package tree."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: List[FunctionInfo] = []
        for file in files:
            if file.package_root is None:
                continue
            self.modules[file.module] = self._build_module(file)
        for module in self.modules.values():
            self.functions.extend(module.functions.values())
            for cls in module.classes.values():
                self.functions.extend(cls.methods.values())

    # -- construction -------------------------------------------------

    def _build_module(self, file: SourceFile) -> ModuleInfo:
        info = ModuleInfo(name=file.module, file=file)
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        info.imports[alias.asname] = _strip_package(alias.name)
                    else:
                        head = alias.name.split(".", 1)[0]
                        info.imports[head] = _strip_package(head)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(file, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    dotted = f"{base}.{alias.name}" if base else alias.name
                    info.imports[local] = dotted
        for node in file.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[node.name] = self._build_function(
                    file, node, class_name=None
                )
            elif isinstance(node, ast.ClassDef):
                info.classes[node.name] = self._build_class(file, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info.constants[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    info.constants[node.target.id] = node.value
        return info

    def _import_base(self, file: SourceFile, node: ast.ImportFrom) -> str:
        if not node.level:
            return _strip_package(node.module or "")
        parts = file.module.split(".") if file.module else []
        if file.path.stem != "__init__" and parts:
            parts = parts[:-1]
        if node.level > 1:
            parts = parts[: len(parts) - (node.level - 1)]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts)

    def _build_function(
        self,
        file: SourceFile,
        node: FunctionNode,
        class_name: Optional[str],
    ) -> FunctionInfo:
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        return FunctionInfo(
            module=file.module,
            qualname=qualname,
            name=node.name,
            class_name=class_name,
            node=node,
            path=file.path,
            boundary=_has_boundary_comment(file, node),
            params=_param_names(node),
        )

    def _build_class(self, file: SourceFile, node: ast.ClassDef) -> ClassInfo:
        cls = ClassInfo(
            module=file.module,
            name=node.name,
            node=node,
            path=file.path,
            lock_attrs=_lock_attrs_of(node),
        )
        for sub in node.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[sub.name] = self._build_function(
                    file, sub, class_name=node.name
                )
        return cls

    # -- resolution ---------------------------------------------------

    def resolve_dotted(
        self, dotted: str, _seen: Optional[Set[str]] = None
    ) -> CallTarget:
        """Resolve a package-relative dotted name to its definition.

        Chases one-level re-exports (``from repro.x.y import f`` inside
        ``repro/x/__init__.py``) with a visited set so import cycles
        terminate as external targets.
        """
        if not dotted:
            return _UNKNOWN
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return CallTarget(kind="external", dotted=dotted)
        seen.add(dotted)
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate not in self.modules:
                continue
            module = self.modules[candidate]
            rest = parts[cut:]
            if len(rest) == 1:
                name = rest[0]
                if name in module.functions:
                    return CallTarget(
                        kind="function", function=module.functions[name]
                    )
                if name in module.classes:
                    return CallTarget(kind="class", cls=module.classes[name])
                if name in module.constants:
                    return CallTarget(
                        kind="constant", module_name=candidate, attr=name
                    )
                if name in module.imports:
                    return self.resolve_dotted(module.imports[name], seen)
            elif len(rest) == 2 and rest[0] in module.classes:
                cls = module.classes[rest[0]]
                method = cls.methods.get(rest[1])
                if method is not None:
                    return CallTarget(kind="function", function=method)
            break
        return CallTarget(kind="external", dotted=dotted)

    def resolve_name(self, module: ModuleInfo, name: str) -> CallTarget:
        """Resolve a bare name in ``module``'s namespace."""
        if name in module.functions:
            return CallTarget(kind="function", function=module.functions[name])
        if name in module.classes:
            return CallTarget(kind="class", cls=module.classes[name])
        if name in module.constants:
            return CallTarget(
                kind="constant", module_name=module.name, attr=name
            )
        if name in module.imports:
            return self.resolve_dotted(module.imports[name])
        return CallTarget(kind="external", dotted=name)

    def resolve_call(
        self,
        module: ModuleInfo,
        func: ast.expr,
        enclosing_class: Optional[ClassInfo],
    ) -> CallTarget:
        """Resolve the callee expression of a call site."""
        if isinstance(func, ast.Name):
            return self.resolve_name(module, func.id)
        if isinstance(func, ast.Attribute):
            chain = attr_chain(func)
            if chain is None:
                return _UNKNOWN
            if chain[0] == "self":
                if enclosing_class is not None and len(chain) == 2:
                    method = enclosing_class.methods.get(chain[1])
                    if method is not None:
                        return CallTarget(kind="function", function=method)
                return _UNKNOWN
            head = chain[0]
            if head in module.imports:
                base = module.imports[head]
                tail = chain[1:]
                dotted = ".".join([base] + tail) if base else ".".join(tail)
                return self.resolve_dotted(dotted)
            return CallTarget(kind="external", dotted=".".join(chain))
        return _UNKNOWN
