"""Pass 3a: lock discipline for classes owning a ``_lock``.

The service daemon keeps every piece of shared state consistent under
one lock (``repro.service.server`` documents the discipline), but
nothing machine-checked it.  This pass *learns* the discipline per
class instead of hard-coding an attribute list: any ``self`` attribute
that is ever written under ``with self._lock`` (or under a
``threading.Condition(self._lock)`` alias, which acquires the same
lock) in a non-``__init__`` method is considered lock-guarded, and
every read or write of a guarded attribute outside a lock region is
an ``ANA201`` finding.

``__init__`` is excluded on both sides: construction happens before
the object is shared, so init-time writes neither establish guarding
nor violate it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.devtools.analysis.codes import rule_name
from repro.devtools.analysis.model import ClassInfo, ProjectModel
from repro.devtools.diagnostics import Diagnostic

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "move_to_end", "pop", "popleft", "popitem", "remove",
        "setdefault", "update",
    }
)

_EXCLUDED_METHODS = frozenset({"__init__"})


@dataclass(frozen=True)
class _Event:
    """One ``self.<attr>`` access inside a method."""

    attr: str
    write: bool
    under_lock: bool
    method: str
    line: int
    col: int


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _locks_in_items(items: Sequence[ast.withitem], cls: ClassInfo) -> bool:
    for item in items:
        expr = item.context_expr
        if _is_self_attr(expr):
            assert isinstance(expr, ast.Attribute)
            if expr.attr in cls.lock_attrs:
                return True
    return False


def _expr_events(
    expr: ast.AST, cls: ClassInfo, method: str, under: bool
) -> List[_Event]:
    events: List[_Event] = []
    for node in ast.walk(expr):
        if _is_self_attr(node):
            assert isinstance(node, ast.Attribute)
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            events.append(_Event(
                attr=node.attr,
                write=write,
                under_lock=under,
                method=method,
                line=node.lineno,
                col=node.col_offset,
            ))
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and _is_self_attr(func.value)
            ):
                receiver = func.value
                assert isinstance(receiver, ast.Attribute)
                events.append(_Event(
                    attr=receiver.attr,
                    write=True,
                    under_lock=under,
                    method=method,
                    line=node.lineno,
                    col=node.col_offset,
                ))
        elif isinstance(node, ast.Subscript):
            if isinstance(node.ctx, (ast.Store, ast.Del)) and _is_self_attr(
                node.value
            ):
                container = node.value
                assert isinstance(container, ast.Attribute)
                events.append(_Event(
                    attr=container.attr,
                    write=True,
                    under_lock=under,
                    method=method,
                    line=node.lineno,
                    col=node.col_offset,
                ))
    return events


def _stmt_events(
    stmt: ast.stmt, cls: ClassInfo, method: str, under: bool
) -> List[_Event]:
    events: List[_Event] = []
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        inner = under or _locks_in_items(stmt.items, cls)
        for item in stmt.items:
            events.extend(_expr_events(item.context_expr, cls, method, under))
            if item.optional_vars is not None:
                events.extend(
                    _expr_events(item.optional_vars, cls, method, under)
                )
        for sub in stmt.body:
            events.extend(_stmt_events(sub, cls, method, inner))
        return events
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return events
    compound_fields = {
        "body", "orelse", "finalbody", "handlers", "cases",
    }
    is_compound = isinstance(
        stmt, (ast.If, ast.For, ast.AsyncFor, ast.While, ast.Try, ast.Match)
    )
    if not is_compound:
        return _expr_events(stmt, cls, method, under)
    for name, value in ast.iter_fields(stmt):
        if name in compound_fields and isinstance(value, list):
            for child in value:
                if isinstance(child, ast.stmt):
                    events.extend(_stmt_events(child, cls, method, under))
                elif isinstance(child, ast.ExceptHandler):
                    for sub in child.body:
                        events.extend(_stmt_events(sub, cls, method, under))
                elif isinstance(child, ast.match_case):
                    for sub in child.body:
                        events.extend(_stmt_events(sub, cls, method, under))
        elif isinstance(value, ast.expr):
            events.extend(_expr_events(value, cls, method, under))
    return events


def _class_events(cls: ClassInfo) -> List[_Event]:
    events: List[_Event] = []
    for name, method in cls.methods.items():
        if name in _EXCLUDED_METHODS:
            continue
        for stmt in method.node.body:
            events.extend(_stmt_events(stmt, cls, name, under=False))
    return events


def run_locks(model: ProjectModel) -> List[Diagnostic]:
    """Run the lock-discipline pass over one project model."""
    diagnostics: List[Diagnostic] = []
    for module in model.modules.values():
        for cls in module.classes.values():
            if not cls.lock_attrs:
                continue
            events = _class_events(cls)
            guarded_locks: Dict[str, Set[str]] = {}
            for event in events:
                if (
                    event.write
                    and event.under_lock
                    and event.attr not in cls.lock_attrs
                ):
                    guarded_locks.setdefault(event.attr, set())
            if not guarded_locks:
                continue
            lock = (
                "_lock" if "_lock" in cls.lock_attrs
                else sorted(cls.lock_attrs)[0]
            )
            seen: Set[Tuple[str, int, int]] = set()
            for event in events:
                if event.attr not in guarded_locks or event.under_lock:
                    continue
                key = (event.attr, event.line, event.col)
                if key in seen:
                    continue
                seen.add(key)
                action = "written" if event.write else "read"
                diagnostics.append(Diagnostic(
                    path=str(cls.path),
                    line=event.line,
                    col=event.col,
                    code="ANA201",
                    rule=rule_name("ANA201"),
                    message=(
                        f"'self.{event.attr}' of class '{cls.name}' is "
                        f"written under 'with self.{lock}' elsewhere but "
                        f"{action} here (in '{event.method}') without "
                        "holding the lock"
                    ),
                ))
    return diagnostics
