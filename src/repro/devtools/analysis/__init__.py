"""The whole-program analyzer (the ``repro analyze`` pass).

Where :mod:`repro.devtools.rules` checks files one at a time, this
package builds a name-resolved model of the whole ``repro`` package
and runs three passes over it:

* :mod:`repro.devtools.analysis.model` — module/call-graph builder
  (imports, functions, classes, lock-attribute ownership);
* :mod:`repro.devtools.analysis.taint` — interprocedural exactness
  taint into the declared exact sinks (``ANA101``/``ANA102``);
* :mod:`repro.devtools.analysis.locks` — lock discipline for classes
  owning a ``_lock`` (``ANA201``);
* :mod:`repro.devtools.analysis.schemas` — ``repro.<name>/<v>``
  schema-registry consistency (``ANA301``-``ANA303``);
* :mod:`repro.devtools.analysis.baseline` — the committed baseline of
  accepted findings (stale entries are ``ANA901``);
* :mod:`repro.devtools.analysis.engine` / ``reporter`` — driving and
  the text + ``repro.analysis/1`` JSON reports.

Findings share the lint ``Diagnostic`` record and the per-line
``# repro: noqa`` suppression mechanism (with ``ANA...`` codes).
"""

from repro.devtools.analysis.baseline import (
    BASELINE_SCHEMA,
    BaselineEntry,
    load_baseline,
    write_baseline,
)
from repro.devtools.analysis.codes import ANALYSIS_CODES, analysis_codes
from repro.devtools.analysis.engine import (
    AnalysisReport,
    analyze_paths,
    raw_findings,
)
from repro.devtools.analysis.reporter import (
    ANALYSIS_SCHEMA_VERSION,
    analysis_payload,
    render_analysis_json,
    render_analysis_text,
    render_pass_list,
    validate_analysis,
)

__all__ = [
    "ANALYSIS_CODES",
    "ANALYSIS_SCHEMA_VERSION",
    "AnalysisReport",
    "BASELINE_SCHEMA",
    "BaselineEntry",
    "analysis_codes",
    "analysis_payload",
    "analyze_paths",
    "load_baseline",
    "raw_findings",
    "render_analysis_json",
    "render_analysis_text",
    "render_pass_list",
    "validate_analysis",
    "write_baseline",
]
