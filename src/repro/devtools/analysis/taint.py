"""Pass 2: interprocedural exactness taint.

The gap certificates only mean anything while every cost is computed
in exact arithmetic, so a ``float`` that leaks *through a call chain*
into a cost model, a perf kernel or a codec encode path is a
correctness bug even when no float literal appears in those modules
(the per-file lint rules RPR001/RPR009 already ban the literals).

Taint sources are float literals, ``float(...)`` conversions,
``math.*`` / ``time.*`` (and friends) calls or attributes, and true
division ``/`` whose operands are not known-``Fraction``.  Taint
propagates through assignments, container literals, comprehensions,
returns and project-internal calls via per-function summaries driven
to a monotone fixpoint over the call graph, so a float travels any
number of hops.  A function marked ``# repro: boundary[exactness]``
(or living in :data:`BOUNDARY_MODULES`, where float-domain math is
the point) is a declared boundary: its return is trusted clean and
its body is not analyzed as a sink.

Findings:

* ``ANA101`` — a float-tainted value is produced or returned inside a
  declared exact sink function;
* ``ANA102`` — a float-tainted argument is passed into a declared
  exact sink function, from anywhere in the program.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.devtools.analysis.codes import rule_name
from repro.devtools.analysis.model import (
    CallTarget,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    attr_chain,
)
from repro.devtools.diagnostics import Diagnostic

#: Modules whose every function is an exact sink (the paper's cost
#: recursions and the bit-identical perf kernels).
EXACT_SINK_MODULES = (
    "joinopt.cost",
    "hashjoin.cost_model",
    "starqo.cost",
    "perf.kernels",
    "perf.incremental",
    "perf.qoh",
)

#: Modules whose encode-side functions are exact sinks: the codecs
#: serialize costs as exact ``"num/den"`` strings, so a float reaching
#: an encoder has already corrupted the payload.
_ENCODE_MODULES = ("io", "core.requests")

#: Modules that are declared boundaries wholesale: ``utils.lognum``
#: is the project's audited log-domain representation (float-domain
#: helpers belong there by design, see the RPR001 rule docs) and
#: ``utils.rng`` is the audited seeded-randomness provider (the RNG
#: objects it hands out are not cost values).
BOUNDARY_MODULES = ("utils.lognum", "utils.rng")

#: External modules whose calls/attributes produce floats.  ``random``
#: is absent deliberately: RPR002 already confines it to
#: ``utils.rng``, and ``random.Random(seed)`` returns an RNG object,
#: not a float.
_FLOAT_MODULES = frozenset({"math", "cmath", "time", "statistics"})

#: Builtins whose result is float regardless of arguments.
_FLOAT_BUILTINS = frozenset({"float", "complex"})

#: Builtins that forward their arguments' taint.
_PROPAGATING_BUILTINS = frozenset(
    {
        "abs", "dict", "divmod", "enumerate", "filter", "frozenset",
        "iter", "list", "map", "max", "min", "next", "pow", "reversed",
        "round", "set", "sorted", "sum", "tuple", "zip",
    }
)

#: Names that construct exact rational values.
_FRACTION_CTORS = frozenset({"Fraction", "fractions.Fraction"})


@dataclass(frozen=True)
class TaintValue:
    """Abstract value: float-tainted? depends on params? known-Fraction?"""

    floaty: bool = False
    params: FrozenSet[int] = frozenset()
    fraction: bool = False


CLEAN = TaintValue()


def _join(a: TaintValue, b: TaintValue) -> TaintValue:
    return TaintValue(
        floaty=a.floaty or b.floaty,
        params=a.params | b.params,
        fraction=a.fraction or b.fraction,
    )


def _join_all(values: Sequence[TaintValue]) -> TaintValue:
    out = CLEAN
    for value in values:
        out = _join(out, value)
    return out


def is_exact_sink(fn: FunctionInfo) -> bool:
    """True when ``fn`` is a declared exact sink."""
    if fn.module in EXACT_SINK_MODULES:
        return True
    if fn.module in _ENCODE_MODULES:
        return (
            fn.name in ("dumps", "save", "to_dict")
            or "encode" in fn.name
            or fn.name.endswith("_to_dict")
        )
    return False


def _annotation_is_fraction(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "Fraction"
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "Fraction"
    if isinstance(annotation, ast.Constant):
        return annotation.value == "Fraction"
    return False


class TaintAnalysis:
    """Whole-program taint state: summaries + module-constant taints."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self.summaries: Dict[str, TaintValue] = {
            fn.key: CLEAN for fn in model.functions
        }
        self._consts: Dict[str, TaintValue] = {}

    def is_boundary(self, fn: FunctionInfo) -> bool:
        return fn.boundary or fn.module in BOUNDARY_MODULES

    def run_fixpoint(self) -> None:
        for _round in range(len(self.model.functions) + 2):
            changed = False
            for fn in self.model.functions:
                if self.is_boundary(fn):
                    continue
                new = _join(
                    self.summaries[fn.key], _FunctionAnalyzer(self, fn).run()
                )
                if new != self.summaries[fn.key]:
                    self.summaries[fn.key] = new
                    changed = True
            if not changed:
                break

    def const_taint(self, module_name: str, name: str) -> TaintValue:
        key = f"{module_name}:{name}"
        if key not in self._consts:
            self._consts[key] = CLEAN  # break reference cycles
            module = self.model.modules.get(module_name)
            if module is not None and name in module.constants:
                evaluator = _Evaluator(self, module, None, {})
                self._consts[key] = evaluator.eval(module.constants[name])
        return self._consts[key]


class _Evaluator:
    """Evaluates expression taint in one function's environment."""

    def __init__(
        self,
        analysis: TaintAnalysis,
        module: ModuleInfo,
        cls: Optional[ClassInfo],
        env: Dict[str, TaintValue],
    ) -> None:
        self.analysis = analysis
        self.module = module
        self.cls = cls
        self.env = env

    def eval(self, node: ast.expr) -> TaintValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, float):
                return TaintValue(floaty=True)
            return CLEAN
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return self._resolved_taint(
                self.analysis.model.resolve_name(self.module, node.id)
            )
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.BoolOp):
            return _join_all([self.eval(v) for v in node.values])
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return CLEAN
            return self.eval(node.operand)
        if isinstance(node, ast.Compare):
            return CLEAN
        if isinstance(node, ast.IfExp):
            return _join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return _join_all([self.eval(e) for e in node.elts])
        if isinstance(node, ast.Dict):
            return _join_all(
                [self.eval(v) for v in node.values]
                + [self.eval(k) for k in node.keys if k is not None]
            )
        if isinstance(node, ast.Subscript):
            return self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = _join(
                    self.env.get(node.target.id, CLEAN), value
                )
            return value
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._bind_comprehensions(node.generators)
            return self.eval(node.elt)
        if isinstance(node, ast.DictComp):
            self._bind_comprehensions(node.generators)
            return _join(self.eval(node.key), self.eval(node.value))
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, ast.Yield):
            return self.eval(node.value) if node.value is not None else CLEAN
        if isinstance(node, ast.YieldFrom):
            return self.eval(node.value)
        return CLEAN

    def _bind_comprehensions(
        self, generators: Sequence[ast.comprehension]
    ) -> None:
        for comp in generators:
            iter_taint = self.eval(comp.iter)
            self._assign_target(comp.target, iter_taint)

    def _assign_target(self, target: ast.expr, value: TaintValue) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = _join(self.env.get(target.id, CLEAN), value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, value)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, value)
        # Attribute / Subscript stores are not tracked.

    def _eval_attribute(self, node: ast.Attribute) -> TaintValue:
        chain = attr_chain(node)
        if chain is None or chain[0] == "self":
            return CLEAN
        head = chain[0]
        if head in self.env:
            return self.env[head]
        if head in self.module.imports:
            base = self.module.imports[head]
            tail = chain[1:]
            dotted = ".".join([base] + tail) if base else ".".join(tail)
            return self._resolved_taint(
                self.analysis.model.resolve_dotted(dotted)
            )
        return CLEAN

    def _resolved_taint(self, target: CallTarget) -> TaintValue:
        """Taint of a resolved *value* reference (not a call)."""
        if target.kind == "constant":
            return self.analysis.const_taint(target.module_name, target.attr)
        if target.kind == "external":
            head = target.dotted.split(".", 1)[0]
            if head in _FLOAT_MODULES and "." in target.dotted:
                return TaintValue(floaty=True)  # e.g. math.pi
        return CLEAN

    def _eval_binop(self, node: ast.BinOp) -> TaintValue:
        left = self.eval(node.left)
        right = self.eval(node.right)
        joined = _join(left, right)
        if isinstance(node.op, ast.Div):
            if left.fraction or right.fraction:
                return joined
            if self._non_numeric(node.left) or self._non_numeric(node.right):
                return joined  # pathlib's ``/`` etc., not a float source
            return TaintValue(
                floaty=True, params=joined.params, fraction=False
            )
        return joined

    @staticmethod
    def _non_numeric(node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and isinstance(
            node.value, (str, bytes)
        )

    def eval_call(self, node: ast.Call) -> TaintValue:
        argvals = [self.eval(arg) for arg in node.args]
        kwvals = {
            kw.arg: self.eval(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        target = self.analysis.model.resolve_call(
            self.module, node.func, self.cls
        )
        if target.kind == "function":
            assert target.function is not None
            return self._eval_project_call(
                node, target.function, argvals, kwvals
            )
        if target.kind == "external":
            dotted = target.dotted
            head = dotted.split(".", 1)[0]
            if head in _FLOAT_MODULES:
                return TaintValue(floaty=True)
            if dotted in _FLOAT_BUILTINS:
                return TaintValue(floaty=True)
            if dotted in _FRACTION_CTORS:
                return TaintValue(fraction=True)
            if dotted in _PROPAGATING_BUILTINS:
                return _join_all(argvals + list(kwvals.values()))
        # Classes, methods on arbitrary objects and unresolved callables
        # are trusted clean (optimistic).
        return CLEAN

    def _eval_project_call(
        self,
        node: ast.Call,
        fn: FunctionInfo,
        argvals: Sequence[TaintValue],
        kwvals: Dict[str, TaintValue],
    ) -> TaintValue:
        if self.analysis.is_boundary(fn):
            return CLEAN
        summary = self.analysis.summaries[fn.key]
        floaty = summary.floaty
        params: Set[int] = set()
        offset = (
            1
            if fn.class_name is not None and isinstance(node.func, ast.Attribute)
            else 0
        )
        for index in summary.params:
            value: Optional[TaintValue] = None
            position = index - offset
            if 0 <= position < len(argvals):
                value = argvals[position]
            elif index < len(fn.params) and fn.params[index] in kwvals:
                value = kwvals[fn.params[index]]
            if value is not None:
                floaty = floaty or value.floaty
                params |= value.params
        return TaintValue(
            floaty=floaty, params=frozenset(params), fraction=summary.fraction
        )


class _FunctionAnalyzer:
    """Intraprocedural flow for one function (weak updates, two passes)."""

    def __init__(self, analysis: TaintAnalysis, fn: FunctionInfo) -> None:
        self.analysis = analysis
        self.fn = fn
        module = analysis.model.modules[fn.module]
        cls = module.classes.get(fn.class_name) if fn.class_name else None
        env: Dict[str, TaintValue] = {}
        args = fn.node.args
        annotated = list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs
        )
        for index, arg in enumerate(annotated):
            env[arg.arg] = TaintValue(
                params=frozenset({index}),
                fraction=_annotation_is_fraction(arg.annotation),
            )
        self.evaluator = _Evaluator(analysis, module, cls, env)
        self.returns: List[TaintValue] = []

    def run(self) -> TaintValue:
        for _pass in range(2):
            self.returns = []
            for stmt in self.fn.node.body:
                self._flow(stmt)
        summary = _join_all(self.returns)
        if _annotation_is_fraction(self.fn.node.returns):
            summary = _join(summary, TaintValue(fraction=True))
        return summary

    def _flow(self, stmt: ast.stmt) -> None:
        ev = self.evaluator
        if isinstance(stmt, ast.Assign):
            value = ev.eval(stmt.value)
            for target in stmt.targets:
                ev._assign_target(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                ev._assign_target(stmt.target, ev.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            ev._assign_target(stmt.target, ev.eval(stmt.value))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns.append(ev.eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            ev.eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            ev._assign_target(stmt.target, ev.eval(stmt.iter))
            self._flow_all(stmt.body)
            self._flow_all(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._flow_all(stmt.body)
            self._flow_all(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._flow_all(stmt.body)
            self._flow_all(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = ev.eval(item.context_expr)
                if item.optional_vars is not None:
                    ev._assign_target(item.optional_vars, value)
            self._flow_all(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._flow_all(stmt.body)
            for handler in stmt.handlers:
                self._flow_all(handler.body)
            self._flow_all(stmt.orelse)
            self._flow_all(stmt.finalbody)
        elif isinstance(stmt, ast.Match):
            for case in stmt.cases:
                self._flow_all(case.body)
        # Nested defs/classes and simple statements carry no flow.

    def _flow_all(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._flow(stmt)


def _walk_without_nested_defs(node: FunctionNode) -> List[ast.AST]:
    """All nodes of ``node``'s body, not descending into nested defs."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(node.body)
    while stack:
        cur = stack.pop()
        if isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        out.append(cur)
        stack.extend(ast.iter_child_nodes(cur))
    return out


def run_taint(model: ProjectModel) -> List[Diagnostic]:
    """Run the taint pass over one project model."""
    analysis = TaintAnalysis(model)
    analysis.run_fixpoint()
    diagnostics: List[Diagnostic] = []
    for fn in model.functions:
        if analysis.is_boundary(fn):
            continue
        runner = _FunctionAnalyzer(analysis, fn)
        runner.run()
        ev = runner.evaluator
        nodes = _walk_without_nested_defs(fn.node)
        diagnostics.extend(_sink_argument_findings(analysis, fn, ev, nodes))
        if is_exact_sink(fn):
            diagnostics.extend(_sink_body_findings(fn, ev, nodes))
    return diagnostics


def _diag(
    fn: FunctionInfo, node: ast.AST, code: str, message: str
) -> Diagnostic:
    return Diagnostic(
        path=str(fn.path),
        line=getattr(node, "lineno", fn.node.lineno),
        col=getattr(node, "col_offset", 0),
        code=code,
        rule=rule_name(code),
        message=message,
    )


def _sink_argument_findings(
    analysis: TaintAnalysis,
    fn: FunctionInfo,
    ev: _Evaluator,
    nodes: Sequence[ast.AST],
) -> List[Diagnostic]:
    found: List[Diagnostic] = []
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        target = analysis.model.resolve_call(ev.module, node.func, ev.cls)
        if target.kind != "function":
            continue
        callee = target.function
        assert callee is not None
        if not is_exact_sink(callee) or analysis.is_boundary(callee):
            continue
        offset = (
            1
            if callee.class_name is not None
            and isinstance(node.func, ast.Attribute)
            else 0
        )
        for position, arg in enumerate(node.args):
            if ev.eval(arg).floaty:
                index = position + offset
                param = (
                    callee.params[index]
                    if index < len(callee.params)
                    else f"#{position}"
                )
                found.append(_diag(
                    fn, arg, "ANA102",
                    f"float-tainted argument for parameter '{param}' of "
                    f"exact sink '{callee.module}.{callee.qualname}'; "
                    "convert to int/Fraction/LogNumber first or route "
                    "through a '# repro: boundary[exactness]' function",
                ))
        for keyword in node.keywords:
            if keyword.arg is not None and ev.eval(keyword.value).floaty:
                found.append(_diag(
                    fn, keyword.value, "ANA102",
                    f"float-tainted argument for parameter "
                    f"'{keyword.arg}' of exact sink "
                    f"'{callee.module}.{callee.qualname}'; convert to "
                    "int/Fraction/LogNumber first or route through a "
                    "'# repro: boundary[exactness]' function",
                ))
    return found


def _sink_body_findings(
    fn: FunctionInfo, ev: _Evaluator, nodes: Sequence[ast.AST]
) -> List[Diagnostic]:
    sink = f"exact sink '{fn.module}.{fn.qualname}'"
    candidates: Dict[int, Tuple[ast.AST, str]] = {}
    for node in nodes:
        if isinstance(node, ast.Call) and ev.eval(node).floaty:
            candidates[id(node)] = (node, (
                f"call result is float-tainted inside {sink}; the callee "
                "must stay exact or be declared a "
                "'# repro: boundary[exactness]'"
            ))
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            left, right = ev.eval(node.left), ev.eval(node.right)
            if not (left.fraction or right.fraction) and not (
                ev._non_numeric(node.left) or ev._non_numeric(node.right)
            ):
                candidates[id(node)] = (node, (
                    f"true division on non-Fraction operands inside {sink} "
                    "produces a float; use Fraction or integer arithmetic"
                ))
        elif isinstance(node, ast.Constant) and isinstance(node.value, float):
            candidates[id(node)] = (node, (
                f"float literal {node.value!r} inside {sink}"
            ))
    # Keep only the innermost tainted nodes: an outer call tainted by
    # an inner source would otherwise double-report.
    minimal: List[Diagnostic] = []
    for node, message in candidates.values():
        if any(
            id(child) in candidates
            for child in ast.walk(node)
            if child is not node
        ):
            continue
        minimal.append(_diag(fn, node, "ANA101", message))
    covered = {(d.line, d.col) for d in minimal}
    for node in nodes:
        if isinstance(node, ast.Return) and node.value is not None:
            if ev.eval(node.value).floaty and not any(
                id(sub) in candidates for sub in ast.walk(node)
            ):
                loc = (node.lineno, node.col_offset)
                if loc not in covered:
                    minimal.append(_diag(
                        fn, node, "ANA101",
                        f"returned value is float-tainted inside {sink} "
                        "(taint assigned earlier in this function)",
                    ))
    return minimal
