"""File collection, model building and pass driving for ``repro analyze``."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.devtools.analysis.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from repro.devtools.analysis.codes import MODEL_ERROR_CODE, rule_name
from repro.devtools.analysis.locks import run_locks
from repro.devtools.analysis.model import ProjectModel
from repro.devtools.analysis.schemas import run_schemas
from repro.devtools.analysis.taint import run_taint
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.engine import PathLike, collect_files
from repro.devtools.noqa import is_suppressed, suppression_map
from repro.devtools.project import SourceFile, classify


@dataclass(frozen=True)
class AnalysisReport:
    """Everything one ``repro analyze`` run produced."""

    files_checked: int
    diagnostics: Tuple[Diagnostic, ...]
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def counts(self) -> Dict[str, int]:
        """Diagnostic count per code, sorted by code."""
        totals: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            totals[diagnostic.code] = totals.get(diagnostic.code, 0) + 1
        return dict(sorted(totals.items()))


def _parse_files(
    paths: Sequence[PathLike],
) -> Tuple[List[SourceFile], List[Diagnostic]]:
    files: List[SourceFile] = []
    errors: List[Diagnostic] = []
    for path in collect_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            errors.append(Diagnostic(
                path=str(path),
                line=int(line),
                col=0,
                code=MODEL_ERROR_CODE,
                rule=rule_name(MODEL_ERROR_CODE),
                message=f"cannot analyze file: {exc}",
            ))
            continue
        files.append(classify(path, source, tree))
    return files, errors


def _run_passes(files: Sequence[SourceFile]) -> List[Diagnostic]:
    by_root: Dict[Path, List[SourceFile]] = {}
    for file in files:
        if file.package_root is not None:
            by_root.setdefault(file.package_root, []).append(file)
    diagnostics: List[Diagnostic] = []
    for root in sorted(by_root):
        model = ProjectModel(by_root[root])
        diagnostics.extend(run_taint(model))
        diagnostics.extend(run_locks(model))
        diagnostics.extend(run_schemas(model))
    return diagnostics


def _apply_suppressions(
    diagnostics: Sequence[Diagnostic], files: Sequence[SourceFile]
) -> List[Diagnostic]:
    maps: Dict[str, Dict[int, FrozenSet[str]]] = {
        str(file.path): suppression_map(file.lines) for file in files
    }
    kept: List[Diagnostic] = []
    for diagnostic in diagnostics:
        suppressed = maps.get(diagnostic.path)
        if suppressed is not None and is_suppressed(diagnostic, suppressed):
            continue
        kept.append(diagnostic)
    return kept


def analyze_paths(
    paths: Sequence[PathLike],
    baseline: Optional[PathLike] = None,
) -> AnalysisReport:
    """Analyze every Python file under ``paths`` with all three passes.

    Files outside a ``repro`` package (benchmarks, examples, stray
    scripts) are parsed but carry no program semantics, so only
    package files enter the model.  ``baseline`` names a committed
    baseline file whose entries are subtracted from the findings
    (stale entries come back as ``ANA901``).  Unparsable files yield
    ``ANA000``, which can be neither suppressed nor baselined.
    """
    entries: Tuple[BaselineEntry, ...] = ()
    if baseline is not None:
        entries = load_baseline(baseline)
    files, errors = _parse_files(paths)
    findings = _apply_suppressions(_run_passes(files), files)
    baselined = 0
    if baseline is not None:
        reported, baselined = apply_baseline(findings, entries, baseline)
        findings = list(reported)
    return AnalysisReport(
        files_checked=len(files) + len(errors),
        diagnostics=tuple(sorted(findings + errors)),
        baselined=baselined,
    )


def raw_findings(paths: Sequence[PathLike]) -> Tuple[Diagnostic, ...]:
    """Suppression-filtered findings with no baseline applied.

    This is what ``--update-baseline`` snapshots: parse errors are
    excluded (an unparsable file must be fixed, not baselined).
    """
    files, _errors = _parse_files(paths)
    return tuple(sorted(_apply_suppressions(_run_passes(files), files)))
