"""Pass 3b: schema-registry consistency for ``repro.<name>/<v>`` tags.

Every persisted or wire payload in the project carries a version tag
(``"repro.sweep/1"``, ``"repro.rpc/1"``, ...).  The convention only
works while each tag has all three roles somewhere in the tree:

* a **validator** — a reference inside a ``validate*`` / ``load*`` /
  ``read*`` / ``check*`` / ``decode*`` / ``from_*`` function, i.e.
  code able to reject a payload carrying the wrong tag;
* an **emitter** — a reference as a dict value or tuple/list element,
  i.e. code stamping the tag into a payload;
* a **consumer** — a reference inside a comparison, i.e. code that
  actually checks an incoming payload against the tag.

A tag missing a role is an orphan: emitted but never validated means
nothing rejects corrupt payloads; validated but never emitted means
dead registry code.  References through module constants (``SCHEMA =
"repro.sweep/1"``) and cross-module imports of those constants are
followed; docstrings are ignored.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.devtools.analysis.codes import rule_name
from repro.devtools.analysis.model import (
    ModuleInfo,
    ProjectModel,
    attr_chain,
)
from repro.devtools.diagnostics import Diagnostic

#: A full-string schema tag: ``repro.<name>/<version>``.
SCHEMA_RE = re.compile(r"\Arepro\.[a-z][a-z0-9_-]*/[0-9]+\Z")

_VALIDATORISH = re.compile(r"\A(validate|check|load|read|decode|from_)")

#: Role -> (code, what's missing) for the findings.
_ROLE_FINDINGS: Tuple[Tuple[str, str, str], ...] = (
    (
        "validator",
        "ANA301",
        "no registered validator (no reference inside a "
        "validate*/check*/load*/read*/decode*/from_* function)",
    ),
    (
        "emitter",
        "ANA302",
        "never emitted (no payload dict value or tuple/list element "
        "carries it)",
    ),
    (
        "consumer",
        "ANA303",
        "never consumed (no code compares an incoming payload "
        "against it)",
    ),
)


@dataclass
class _SchemaFacts:
    roles: Set[str] = field(default_factory=set)
    site: Optional[Tuple[Path, int, int]] = None
    declaration: Optional[Tuple[Path, int, int]] = None


def _docstring_ids(tree: ast.Module) -> Set[int]:
    """ids of every Constant node that is a docstring."""
    out: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
        ):
            body = node.body
            if body and isinstance(body[0], ast.Expr):
                value = body[0].value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    out.add(id(value))
    return out


def _parent_map(tree: ast.Module) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _function_spans(tree: ast.Module) -> List[Tuple[int, int, str]]:
    """(first line, last line, name) of every def, innermost resolvable."""
    spans: List[Tuple[int, int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans.append((node.lineno, node.end_lineno or node.lineno, node.name))
    return spans


def _enclosing_function(
    spans: List[Tuple[int, int, str]], line: int
) -> Optional[str]:
    best: Optional[Tuple[int, int, str]] = None
    for span in spans:
        if span[0] <= line <= span[1]:
            if best is None or span[0] > best[0]:
                best = span
    return best[2] if best is not None else None


def _schema_of_reference(
    model: ProjectModel, module: ModuleInfo, node: ast.expr
) -> Optional[str]:
    """The schema tag a Name/Attribute reference resolves to, if any."""
    name: Optional[str] = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        chain = attr_chain(node)
        if chain is None or chain[0] == "self":
            return None
        head = chain[0]
        if head not in module.imports:
            return None
        base = module.imports[head]
        tail = chain[1:]
        dotted = ".".join([base] + tail) if base else ".".join(tail)
        target = model.resolve_dotted(dotted)
        if target.kind != "constant":
            return None
        return _constant_schema(model, target.module_name, target.attr)
    if name is None:
        return None
    if name in module.constants:
        return _constant_schema(model, module.name, name)
    if name in module.imports:
        target = model.resolve_dotted(module.imports[name])
        if target.kind == "constant":
            return _constant_schema(model, target.module_name, target.attr)
    return None


def _constant_schema(
    model: ProjectModel, module_name: str, const: str
) -> Optional[str]:
    module = model.modules.get(module_name)
    if module is None:
        return None
    value = module.constants.get(const)
    if (
        isinstance(value, ast.Constant)
        and isinstance(value.value, str)
        and SCHEMA_RE.match(value.value)
    ):
        return value.value
    return None


def _occurrence_roles(
    node: ast.expr,
    parents: Dict[int, ast.AST],
    enclosing: Optional[str],
) -> Tuple[Set[str], bool]:
    """(roles, is-module-level-declaration) for one reference site."""
    roles: Set[str] = set()
    if enclosing is not None and _VALIDATORISH.match(enclosing):
        roles.add("validator")
    declaration = False
    cur: ast.AST = node
    while True:
        parent = parents.get(id(cur))
        if parent is None:
            break
        if isinstance(parent, ast.Dict) and any(
            value is cur for value in parent.values
        ):
            roles.add("emitter")
        elif isinstance(parent, (ast.Tuple, ast.List)) and any(
            element is cur for element in parent.elts
        ):
            roles.add("emitter")
        elif isinstance(parent, ast.Compare):
            roles.add("consumer")
        elif isinstance(parent, (ast.Assign, ast.AnnAssign)):
            if enclosing is None:
                declaration = True
        if isinstance(parent, ast.stmt):
            break
        cur = parent
    return roles, declaration


def run_schemas(model: ProjectModel) -> List[Diagnostic]:
    """Run the schema-registry pass over one project model."""
    facts: Dict[str, _SchemaFacts] = {}
    for module in model.modules.values():
        tree = module.file.tree
        docstrings = _docstring_ids(tree)
        parents = _parent_map(tree)
        spans = _function_spans(tree)
        for node in ast.walk(tree):
            schema: Optional[str] = None
            if isinstance(node, ast.Constant):
                if id(node) in docstrings:
                    continue
                if isinstance(node.value, str) and SCHEMA_RE.match(node.value):
                    schema = node.value
            elif isinstance(node, (ast.Name, ast.Attribute)):
                if isinstance(node, ast.Attribute) and not isinstance(
                    node.ctx, ast.Load
                ):
                    continue
                schema = _schema_of_reference(model, module, node)
            if schema is None:
                continue
            enclosing = _enclosing_function(spans, node.lineno)
            roles, declaration = _occurrence_roles(node, parents, enclosing)
            entry = facts.setdefault(schema, _SchemaFacts())
            entry.roles |= roles
            site = (module.file.path, node.lineno, node.col_offset)
            if declaration and entry.declaration is None:
                entry.declaration = site
            if entry.site is None:
                entry.site = site
    diagnostics: List[Diagnostic] = []
    for schema in sorted(facts):
        entry = facts[schema]
        site = entry.declaration or entry.site
        assert site is not None
        path, line, col = site
        for role, code, missing in _ROLE_FINDINGS:
            if role not in entry.roles:
                diagnostics.append(Diagnostic(
                    path=str(path),
                    line=line,
                    col=col,
                    code=code,
                    rule=rule_name(code),
                    message=f"schema '{schema}' has {missing}",
                ))
    return diagnostics
