"""Text and JSON renderers for analysis reports (``repro.analysis/1``)."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.devtools.analysis.codes import ANALYSIS_CODES
from repro.devtools.analysis.engine import AnalysisReport

#: Schema tag of the JSON report (bump on incompatible change).
ANALYSIS_SCHEMA_VERSION = "repro.analysis/1"


def render_analysis_text(report: AnalysisReport) -> str:
    """One ``path:line:col: CODE message`` line per finding + summary."""
    lines = [diagnostic.render() for diagnostic in report.diagnostics]
    baselined = (
        f" ({report.baselined} baselined)" if report.baselined else ""
    )
    if report.ok:
        lines.append(
            f"{report.files_checked} files analyzed: "
            f"no findings{baselined}"
        )
    else:
        counts = ", ".join(
            f"{code} x{count}" for code, count in report.counts().items()
        )
        lines.append(
            f"{report.files_checked} files analyzed: "
            f"{len(report.diagnostics)} finding"
            f"{'s' if len(report.diagnostics) != 1 else ''} "
            f"({counts}){baselined}"
        )
    return "\n".join(lines)


def analysis_payload(report: AnalysisReport) -> Dict[str, Any]:
    """The JSON report as a plain dict (``repro.analysis/1``)."""
    return {
        "version": ANALYSIS_SCHEMA_VERSION,
        "ok": report.ok,
        "files_checked": report.files_checked,
        "baselined": report.baselined,
        "counts": report.counts(),
        "diagnostics": [
            diagnostic.to_json() for diagnostic in report.diagnostics
        ],
    }


def render_analysis_json(report: AnalysisReport) -> str:
    """The JSON report, pretty-printed with stable key order."""
    return json.dumps(analysis_payload(report), indent=2, sort_keys=False)


def validate_analysis(payload: Dict[str, Any]) -> None:
    """Check a ``repro.analysis/1`` payload (``ValueError`` on failure)."""
    if not isinstance(payload, dict):
        raise ValueError("analysis payload must be an object")
    if payload.get("version") != ANALYSIS_SCHEMA_VERSION:
        raise ValueError(
            f"analysis payload version must be "
            f"{ANALYSIS_SCHEMA_VERSION!r}, got {payload.get('version')!r}"
        )
    for field, kind in (
        ("ok", bool),
        ("files_checked", int),
        ("baselined", int),
        ("counts", dict),
        ("diagnostics", list),
    ):
        if not isinstance(payload.get(field), kind):
            raise ValueError(
                f"analysis payload field {field!r} must be "
                f"{kind.__name__}"
            )
    for code, count in payload["counts"].items():
        if not isinstance(code, str) or not isinstance(count, int):
            raise ValueError("analysis counts must map code -> int")
    for item in payload["diagnostics"]:
        if not isinstance(item, dict):
            raise ValueError("analysis diagnostics must be objects")
        for field, kind in (
            ("path", str),
            ("line", int),
            ("col", int),
            ("code", str),
            ("rule", str),
            ("message", str),
        ):
            if not isinstance(item.get(field), kind):
                raise ValueError(
                    f"analysis diagnostic field {field!r} must be "
                    f"{kind.__name__}"
                )
    if payload["ok"] != (not payload["diagnostics"]):
        raise ValueError(
            "analysis payload 'ok' is inconsistent with 'diagnostics'"
        )


def render_pass_list() -> str:
    """The ``--list-passes`` table: code, slug, one-line description."""
    lines: List[str] = []
    for code in sorted(ANALYSIS_CODES):
        name, description = ANALYSIS_CODES[code]
        lines.append(f"{code}  {name}")
        lines.append(f"       {description}")
    return "\n".join(lines)
