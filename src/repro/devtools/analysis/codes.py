"""The analyzer finding codes (``ANA...``) and their catalogue.

Kept dependency-free so :mod:`repro.devtools.rules` can import the
table (rule ``RPR012`` validates ``# repro: noqa[...]`` ids against
the union of RPR and ANA codes) without creating an import cycle.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Code reserved for files the analyzer cannot parse / model.
MODEL_ERROR_CODE = "ANA000"

#: Code emitted for baseline entries that no longer match any finding.
STALE_BASELINE_CODE = "ANA901"

#: Code -> (slug, one-line description), in code order.  ``ANA000``
#: and ``ANA901`` are engine-level codes: they appear in reports but
#: can be neither suppressed nor baselined.
ANALYSIS_CODES: Dict[str, Tuple[str, str]] = {
    MODEL_ERROR_CODE: (
        "model-error",
        "file could not be parsed into the whole-program model",
    ),
    "ANA101": (
        "tainted-value-in-exact-sink",
        "a float-tainted value is produced or returned inside a "
        "declared exact sink (cost models, perf kernels, codec encode "
        "paths)",
    ),
    "ANA102": (
        "tainted-argument-to-exact-sink",
        "a float-tainted value is passed as an argument into a "
        "declared exact sink function",
    ),
    "ANA201": (
        "unguarded-attribute-access",
        "an attribute written under 'with self._lock' is accessed "
        "without holding the lock",
    ),
    "ANA301": (
        "schema-missing-validator",
        "a 'repro.<name>/<v>' schema string has no registered "
        "validator (validate*/load*/read*/from_* function)",
    ),
    "ANA302": (
        "schema-never-emitted",
        "a 'repro.<name>/<v>' schema string is never emitted into a "
        "payload (dict value or tuple/list element)",
    ),
    "ANA303": (
        "schema-never-consumed",
        "a 'repro.<name>/<v>' schema string is never compared against "
        "an incoming payload",
    ),
    STALE_BASELINE_CODE: (
        "stale-baseline-entry",
        "a baseline entry matched no finding and must be removed",
    ),
}


def analysis_codes() -> List[str]:
    """All analyzer codes, sorted."""
    return sorted(ANALYSIS_CODES)


def rule_name(code: str) -> str:
    """The slug for ``code`` (raises ``KeyError`` for unknown codes)."""
    return ANALYSIS_CODES[code][0]
