"""The committed baseline of accepted analyzer findings.

A baseline entry matches findings by ``(code, path, message)`` —
deliberately *not* by line number, so unrelated edits above a finding
don't churn the file.  Every entry carries a human reason; entries
that no longer match any finding are reported as ``ANA901`` so the
baseline can only shrink deliberately, never rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.devtools.analysis.codes import STALE_BASELINE_CODE, rule_name
from repro.devtools.diagnostics import Diagnostic

PathLike = Union[str, Path]

#: Schema tag of the baseline file.
BASELINE_SCHEMA = "repro.analysis-baseline/1"

_PLACEHOLDER_REASON = "TODO: justify this accepted finding"


@dataclass(frozen=True, order=True)
class BaselineEntry:
    """One accepted finding."""

    code: str
    path: str
    message: str
    reason: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.code, _normalize(self.path), self.message)


def _normalize(path: str) -> str:
    return path.replace("\\", "/")


def load_baseline(path: PathLike) -> Tuple[BaselineEntry, ...]:
    """Read a baseline file (``ValueError`` on schema mismatch)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"baseline {path}: payload must be an object")
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path}: schema must be {BASELINE_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    raw = payload.get("findings")
    if not isinstance(raw, list):
        raise ValueError(f"baseline {path}: 'findings' must be a list")
    entries: List[BaselineEntry] = []
    for item in raw:
        if not isinstance(item, dict):
            raise ValueError(f"baseline {path}: finding must be an object")
        for field in ("code", "path", "message", "reason"):
            if not isinstance(item.get(field), str):
                raise ValueError(
                    f"baseline {path}: finding field {field!r} must be "
                    "a string"
                )
        entries.append(BaselineEntry(
            code=item["code"],
            path=item["path"],
            message=item["message"],
            reason=item["reason"],
        ))
    return tuple(entries)


def write_baseline(
    path: PathLike,
    diagnostics: Sequence[Diagnostic],
    previous: Sequence[BaselineEntry] = (),
) -> Tuple[BaselineEntry, ...]:
    """Write ``diagnostics`` as the new baseline.

    Reasons of still-matching previous entries are preserved; new
    entries get a placeholder reason the author must replace.
    """
    reasons: Dict[Tuple[str, str, str], str] = {
        entry.key: entry.reason for entry in previous
    }
    entries = sorted({
        BaselineEntry(
            code=diagnostic.code,
            path=_normalize(diagnostic.path),
            message=diagnostic.message,
            reason="",
        )
        for diagnostic in diagnostics
    })
    entries = [
        BaselineEntry(
            code=entry.code,
            path=entry.path,
            message=entry.message,
            reason=reasons.get(entry.key, _PLACEHOLDER_REASON),
        )
        for entry in entries
    ]
    payload: Dict[str, Any] = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {
                "code": entry.code,
                "path": entry.path,
                "message": entry.message,
                "reason": entry.reason,
            }
            for entry in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return tuple(entries)


def apply_baseline(
    diagnostics: Sequence[Diagnostic],
    entries: Sequence[BaselineEntry],
    baseline_path: PathLike,
) -> Tuple[Tuple[Diagnostic, ...], int]:
    """Split findings into (reported, baselined-count).

    Stale entries (matching nothing) are appended to the reported
    findings as ``ANA901`` diagnostics anchored at the baseline file.
    """
    keys = {entry.key for entry in entries}
    matched: set[Tuple[str, str, str]] = set()
    reported: List[Diagnostic] = []
    baselined = 0
    for diagnostic in diagnostics:
        key = (
            diagnostic.code,
            _normalize(diagnostic.path),
            diagnostic.message,
        )
        if key in keys:
            matched.add(key)
            baselined += 1
        else:
            reported.append(diagnostic)
    for entry in sorted(entries):
        if entry.key not in matched:
            reported.append(Diagnostic(
                path=str(baseline_path),
                line=1,
                col=0,
                code=STALE_BASELINE_CODE,
                rule=rule_name(STALE_BASELINE_CODE),
                message=(
                    f"baseline entry ({entry.code} {entry.path!r} "
                    f"{entry.message!r}) matched no finding; remove it "
                    "or rerun with --update-baseline"
                ),
            ))
    return tuple(reported), baselined
