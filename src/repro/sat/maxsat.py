"""MAX-SAT: exact branch-and-bound and local-search approximation.

The gap families (stand-in for Theorem 1's PCP amplification) are
*certified*: for each NO-instance we verify with the exact solver that
no assignment satisfies more than a ``(1 - theta)`` fraction of the
clauses.  The local-search variant is used by the benchmark harness on
formulas too large for exact certification.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sat.cnf import Assignment, CNFFormula
from repro.utils.rng import RngLike, make_rng


def max_satisfiable_clauses(
    formula: CNFFormula, stop_at: Optional[int] = None
) -> Tuple[int, Assignment]:
    """Exact MAX-SAT via branch and bound.

    Returns ``(best_count, best_assignment)``.  ``stop_at`` allows an
    early exit once a target count is reached (used when the caller
    only needs to know whether the formula is ``k``-satisfiable).
    """
    best_count = -1
    best_assignment: Assignment = {}
    clauses = [tuple(clause.literals) for clause in formula]
    num_vars = formula.num_vars

    def upper_bound(assignment: Assignment) -> int:
        """Clauses that are satisfied or still undecided — everything
        except the clauses already falsified by the partial assignment."""
        bound = 0
        for clause in clauses:
            decided_false = all(
                abs(lit) in assignment and assignment[abs(lit)] != (lit > 0)
                for lit in clause
            )
            if not decided_false:
                bound += 1
        return bound

    def recurse(var: int, assignment: Assignment) -> None:
        nonlocal best_count, best_assignment
        if stop_at is not None and best_count >= stop_at:
            return
        if var > num_vars:
            satisfied = sum(
                1
                for clause in clauses
                if any(
                    abs(lit) in assignment and assignment[abs(lit)] == (lit > 0)
                    for lit in clause
                )
            )
            if satisfied > best_count:
                best_count = satisfied
                best_assignment = dict(assignment)
            return
        if upper_bound(assignment) <= best_count:
            return
        for value in (True, False):
            assignment[var] = value
            recurse(var + 1, assignment)
            del assignment[var]

    recurse(1, {})
    for var in range(1, num_vars + 1):
        best_assignment.setdefault(var, False)
    return best_count, best_assignment


def is_k_satisfiable(formula: CNFFormula, k: int) -> bool:
    """True iff some assignment satisfies at least ``k`` clauses."""
    best, _ = max_satisfiable_clauses(formula, stop_at=k)
    return best >= k


def max_satisfiable_fraction(formula: CNFFormula) -> float:
    """The exact MAX-SAT value as a fraction of the clause count."""
    if formula.num_clauses == 0:
        return 1.0
    best, _ = max_satisfiable_clauses(formula)
    return best / formula.num_clauses


def local_search_maxsat(
    formula: CNFFormula,
    max_flips: int = 10_000,
    restarts: int = 5,
    rng: RngLike = None,
) -> Tuple[int, Assignment]:
    """WalkSAT-style local search for MAX-SAT.

    Greedy flips with random walk (probability 0.3) restarted from
    random assignments; returns the best ``(count, assignment)`` seen.
    Incomplete but fast; used only for large benchmark formulas.
    """
    generator = make_rng(rng)
    clauses = [tuple(clause.literals) for clause in formula]
    best_count = -1
    best_assignment: Assignment = {}

    for _ in range(max(1, restarts)):
        assignment = {
            v: generator.random() < 0.5 for v in range(1, formula.num_vars + 1)
        }
        count = formula.count_satisfied(assignment)
        if count > best_count:
            best_count, best_assignment = count, dict(assignment)
        for _ in range(max_flips):
            unsatisfied = [
                clause
                for clause in clauses
                if not any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            ]
            if not unsatisfied:
                break
            clause = generator.choice(unsatisfied)
            if generator.random() < 0.3:
                variable = abs(generator.choice(clause))
            else:
                variable = max(
                    (abs(lit) for lit in clause),
                    key=lambda v: _flip_gain(formula, assignment, v),
                )
            assignment[variable] = not assignment[variable]
            count = formula.count_satisfied(assignment)
            if count > best_count:
                best_count, best_assignment = count, dict(assignment)
    return best_count, best_assignment


def _flip_gain(formula: CNFFormula, assignment: Assignment, variable: int) -> int:
    """Net change in satisfied clauses if ``variable`` is flipped."""
    before = formula.count_satisfied(assignment)
    assignment[variable] = not assignment[variable]
    after = formula.count_satisfied(assignment)
    assignment[variable] = not assignment[variable]
    return after - before
