"""DIMACS CNF serialization.

The standard interchange format for SAT instances; supported so that
reduction inputs/outputs can be exchanged with external solvers and the
benchmark harness can persist generated families.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from repro.sat.cnf import CNFFormula
from repro.utils.validation import ValidationError


def dumps(formula: CNFFormula, comments: Iterable[str] = ()) -> str:
    """Serialize a formula to DIMACS CNF text."""
    lines = [f"c {comment}" for comment in comments]
    lines.append(f"p cnf {formula.num_vars} {formula.num_clauses}")
    for clause in formula:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def loads(text: str) -> CNFFormula:
    """Parse DIMACS CNF text into a :class:`CNFFormula`."""
    num_vars = None
    declared_clauses = None
    clauses: list[list[int]] = []
    pending: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValidationError(f"malformed problem line: {line!r}")
            num_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        if num_vars is None:
            raise ValidationError("clause data before problem line")
        for token in line.split():
            literal = int(token)
            if literal == 0:
                clauses.append(pending)
                pending = []
            else:
                pending.append(literal)
    if pending:
        # Tolerate a final clause missing its 0 terminator.
        clauses.append(pending)
    if num_vars is None:
        raise ValidationError("missing problem line")
    if declared_clauses is not None and declared_clauses != len(clauses):
        raise ValidationError(
            f"problem line declares {declared_clauses} clauses, "
            f"found {len(clauses)}"
        )
    return CNFFormula(num_vars, clauses)


def write_file(formula: CNFFormula, path: Union[str, Path]) -> None:
    """Write a formula to ``path`` in DIMACS format."""
    Path(path).write_text(dumps(formula), encoding="ascii")


def read_file(path: Union[str, Path]) -> CNFFormula:
    """Read a DIMACS file into a :class:`CNFFormula`."""
    return loads(Path(path).read_text(encoding="ascii"))
