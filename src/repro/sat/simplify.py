"""CNF preprocessing: equivalence-preserving simplification.

Standard preprocessing passes used before handing formulas to the
solver or the reductions:

* unit propagation — fix forced variables, simplify clauses;
* pure-literal elimination — fix variables occurring in one polarity;
* tautology removal;
* subsumption — drop clauses implied by a subset clause.

:func:`simplify` runs all passes to a fixpoint and returns the reduced
formula plus the forced partial assignment, satisfying::

    F is satisfiable  <=>  simplified is satisfiable, and
    any model of simplified extends (with the forced assignment) to F.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.sat.cnf import Assignment, CNFFormula


@dataclass
class SimplificationResult:
    """Outcome of :func:`simplify`.

    ``conflict`` is True when the passes derived an empty clause (the
    formula is unsatisfiable outright); ``formula`` is then empty.
    """

    formula: CNFFormula
    forced: Assignment = field(default_factory=dict)
    conflict: bool = False
    removed_tautologies: int = 0
    removed_subsumed: int = 0
    propagated_units: int = 0
    pure_literals: int = 0

    def extend_model(self, model: Assignment) -> Assignment:
        """Combine a model of the simplified formula with the forced
        assignment into a model of the original formula."""
        combined = dict(model)
        combined.update(self.forced)
        return combined


def remove_tautologies(clauses: List[FrozenSet[int]]) -> Tuple[List[FrozenSet[int]], int]:
    kept = [c for c in clauses if not any(-lit in c for lit in c)]
    return kept, len(clauses) - len(kept)


def remove_subsumed(clauses: List[FrozenSet[int]]) -> Tuple[List[FrozenSet[int]], int]:
    """Drop clauses that are supersets of another clause."""
    order = sorted(set(clauses), key=len)
    kept: List[FrozenSet[int]] = []
    removed = len(clauses)
    for clause in order:
        if not any(small <= clause for small in kept):
            kept.append(clause)
    removed -= len(kept)
    return kept, removed


def simplify(formula: CNFFormula) -> SimplificationResult:
    """Run all passes to a fixpoint.  Equivalence-preserving."""
    clauses: List[FrozenSet[int]] = [
        frozenset(clause.literals) for clause in formula
    ]
    result = SimplificationResult(formula=formula)

    clauses, dropped = remove_tautologies(clauses)
    result.removed_tautologies = dropped

    changed = True
    while changed:
        changed = False
        # Empty clause = conflict.
        if any(len(c) == 0 for c in clauses):
            result.conflict = True
            result.formula = CNFFormula(formula.num_vars, [])
            return result
        # Unit propagation.
        units = {next(iter(c)) for c in clauses if len(c) == 1}
        if units:
            if any(-lit in units for lit in units):
                result.conflict = True
                result.formula = CNFFormula(formula.num_vars, [])
                return result
            for literal in units:
                result.forced[abs(literal)] = literal > 0
            result.propagated_units += len(units)
            new_clauses: List[FrozenSet[int]] = []
            for clause in clauses:
                if clause & units:
                    continue  # satisfied
                reduced = clause - {-lit for lit in units}
                new_clauses.append(reduced)
            clauses = new_clauses
            changed = True
            continue
        # Pure literals.
        polarity: Dict[int, int] = {}
        for clause in clauses:
            for literal in clause:
                var = abs(literal)
                sign = 1 if literal > 0 else -1
                if var not in polarity:
                    polarity[var] = sign
                elif polarity[var] != sign:
                    polarity[var] = 0
        pures = {
            var * sign for var, sign in polarity.items() if sign != 0
        }
        if pures:
            for literal in pures:
                result.forced[abs(literal)] = literal > 0
            result.pure_literals += len(pures)
            clauses = [c for c in clauses if not (c & pures)]
            changed = True
            continue
        # Subsumption (only when nothing cheaper fired).
        clauses, dropped = remove_subsumed(clauses)
        if dropped:
            result.removed_subsumed += dropped
            changed = True

    result.formula = CNFFormula(
        formula.num_vars, [sorted(clause) for clause in clauses]
    )
    return result
