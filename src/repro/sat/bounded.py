"""Occurrence bounding: 3SAT -> 3SAT(k).

The paper's starting point is 3SAT(13): 3CNF with every variable in at
most 13 clauses.  The classical transformation replaces a variable
occurring in ``r > k`` clauses by ``r`` fresh copies tied together with
a cyclic implication chain; each copy then occurs in one original
clause plus two chain clauses, i.e. three clauses total.

This transformation preserves satisfiability *exactly* (it is not the
PCP gap amplification of Theorem 1 — see
:mod:`repro.sat.gapfamilies` for the gap-promise stand-in).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sat.cnf import Assignment, CNFFormula
from repro.sat.generators import chain_implication_clauses
from repro.utils.validation import require


def max_occurrences(formula: CNFFormula) -> int:
    """The maximum number of clauses any variable occurs in."""
    counts = formula.occurrence_counts()
    return max(counts.values(), default=0)


def bound_occurrences(
    formula: CNFFormula, bound: int = 13
) -> Tuple[CNFFormula, Dict[int, List[int]]]:
    """Rewrite ``formula`` so every variable occurs in <= ``bound`` clauses.

    Variables already within the bound are kept; a variable occurring
    ``r > bound`` times is split into ``r`` fresh copies chained by
    implications.  Returns the new formula and a map
    ``original variable -> list of copies`` (a singleton list when the
    variable was kept), from which assignments can be translated in
    both directions.

    Requires ``bound >= 3``: each copy ends up in its original clause
    plus two chain clauses.
    """
    require(bound >= 3, "occurrence bound must be at least 3")
    counts = formula.occurrence_counts()
    next_var = formula.num_vars + 1
    copy_map: Dict[int, List[int]] = {}
    # Allocate copies.
    for var in range(1, formula.num_vars + 1):
        if counts[var] > bound:
            copies = list(range(next_var, next_var + counts[var]))
            next_var += counts[var]
            copy_map[var] = copies
        else:
            copy_map[var] = [var]

    # Rewrite clauses, consuming one copy per occurrence.
    cursor: Dict[int, int] = {var: 0 for var in copy_map}
    new_clauses: List[List[int]] = []
    for clause in formula:
        rewritten: List[int] = []
        seen_vars = set()
        for literal in clause:
            var = abs(literal)
            if var in seen_vars:
                # Same variable twice in one clause: reuse the same copy.
                copy = copy_map[var][max(cursor[var] - 1, 0)]
            else:
                seen_vars.add(var)
                copies = copy_map[var]
                if len(copies) == 1:
                    copy = copies[0]
                else:
                    copy = copies[cursor[var]]
                    cursor[var] += 1
            rewritten.append(copy if literal > 0 else -copy)
        new_clauses.append(rewritten)

    # Chain clauses tying the copies together.
    for var, copies in copy_map.items():
        if len(copies) > 1:
            new_clauses.extend(chain_implication_clauses(copies))

    return CNFFormula(next_var - 1, new_clauses), copy_map


def lift_assignment(
    assignment: Assignment, copy_map: Dict[int, List[int]]
) -> Assignment:
    """Translate an assignment of the original formula to the bounded one."""
    lifted: Assignment = {}
    for var, copies in copy_map.items():
        value = assignment.get(var, False)
        for copy in copies:
            lifted[copy] = value
    return lifted


def project_assignment(
    assignment: Assignment, copy_map: Dict[int, List[int]]
) -> Assignment:
    """Translate an assignment of the bounded formula back (first copy wins)."""
    return {
        var: assignment.get(copies[0], False)
        for var, copies in copy_map.items()
    }
