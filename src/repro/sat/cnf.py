"""CNF formula model.

Literals follow the DIMACS convention: variables are the integers
``1 .. num_vars`` and a literal is ``+v`` (positive occurrence) or
``-v`` (negated occurrence).  A clause is an immutable, deduplicated
tuple of literals; a formula is an immutable list of clauses plus the
variable count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.utils.validation import ValidationError, require

#: A (partial) assignment maps variable -> bool.
Assignment = Dict[int, bool]


@dataclass(frozen=True)
class Clause:
    """An immutable disjunction of literals.

    Duplicate literals are removed on construction.  A clause that
    contains both ``v`` and ``-v`` is a tautology; :meth:`is_tautology`
    reports it (the generators avoid producing them, the reductions
    reject them).
    """

    literals: Tuple[int, ...]

    def __init__(self, literals: Iterable[int]) -> None:
        unique = tuple(sorted(set(literals), key=lambda lit: (abs(lit), lit < 0)))
        for lit in unique:
            require(lit != 0, "literal 0 is not allowed (DIMACS terminator)")
        object.__setattr__(self, "literals", unique)

    def __iter__(self) -> Iterator[int]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __contains__(self, literal: int) -> bool:
        return literal in self.literals

    def variables(self) -> Tuple[int, ...]:
        """The distinct variables mentioned by this clause."""
        return tuple(sorted({abs(lit) for lit in self.literals}))

    def is_tautology(self) -> bool:
        """True if the clause contains a literal and its negation."""
        seen = set(self.literals)
        return any(-lit in seen for lit in self.literals)

    def is_satisfied_by(self, assignment: Assignment) -> bool:
        """True if some literal is true under the (total) assignment."""
        return any(
            assignment.get(abs(lit), None) == (lit > 0) for lit in self.literals
        )

    def __repr__(self) -> str:
        return f"Clause({list(self.literals)})"


class CNFFormula:
    """An immutable CNF formula over variables ``1 .. num_vars``."""

    __slots__ = ("_num_vars", "_clauses")

    def __init__(
        self, num_vars: int, clauses: Iterable[Sequence[int] | Clause]
    ) -> None:
        require(num_vars >= 0, "num_vars must be non-negative")
        normalized = []
        for clause in clauses:
            if not isinstance(clause, Clause):
                clause = Clause(clause)
            for lit in clause:
                require(
                    1 <= abs(lit) <= num_vars,
                    f"literal {lit} out of range for {num_vars} variables",
                )
            normalized.append(clause)
        self._num_vars = num_vars
        self._clauses = tuple(normalized)

    # -- accessors ---------------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        return self._clauses

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CNFFormula):
            return NotImplemented
        return (
            self._num_vars == other._num_vars and self._clauses == other._clauses
        )

    def __hash__(self) -> int:
        return hash((self._num_vars, self._clauses))

    def __repr__(self) -> str:
        return f"CNFFormula(num_vars={self._num_vars}, num_clauses={len(self)})"

    # -- structure ---------------------------------------------------
    def is_3cnf(self) -> bool:
        """True if every clause has at most three literals."""
        return all(len(clause) <= 3 for clause in self._clauses)

    def is_exactly_3cnf(self) -> bool:
        """True if every clause has exactly three distinct literals."""
        return all(len(clause) == 3 for clause in self._clauses)

    def occurrence_counts(self) -> Dict[int, int]:
        """Number of clauses each variable occurs in (any polarity)."""
        counts: Dict[int, int] = {v: 0 for v in range(1, self._num_vars + 1)}
        for clause in self._clauses:
            for var in clause.variables():
                counts[var] += 1
        return counts

    def occurrences_bounded_by(self, bound: int) -> bool:
        """True if every variable occurs in at most ``bound`` clauses.

        The paper's 3SAT(13) requires ``bound = 13``.
        """
        return all(count <= bound for count in self.occurrence_counts().values())

    # -- evaluation --------------------------------------------------
    def count_satisfied(self, assignment: Assignment) -> int:
        """Number of clauses satisfied by the assignment."""
        return sum(
            1 for clause in self._clauses if clause.is_satisfied_by(assignment)
        )

    def satisfied_fraction(self, assignment: Assignment) -> float:
        """Fraction of clauses satisfied (1.0 for the empty formula)."""
        if not self._clauses:
            return 1.0
        return self.count_satisfied(assignment) / len(self._clauses)

    def is_satisfied_by(self, assignment: Assignment) -> bool:
        """True if every clause is satisfied."""
        return self.count_satisfied(assignment) == len(self._clauses)

    # -- combination -------------------------------------------------
    def conjoin(self, other: "CNFFormula") -> "CNFFormula":
        """Conjunction over a shared variable universe.

        The result has ``max(num_vars)`` variables and the clause lists
        concatenated; use :meth:`shift_variables` first to make the
        variable sets disjoint.
        """
        num_vars = max(self._num_vars, other._num_vars)
        return CNFFormula(num_vars, self._clauses + other._clauses)

    def shift_variables(self, offset: int) -> "CNFFormula":
        """Rename each variable ``v`` to ``v + offset``."""
        require(offset >= 0, "offset must be non-negative")
        shifted = [
            [lit + offset if lit > 0 else lit - offset for lit in clause]
            for clause in self._clauses
        ]
        return CNFFormula(self._num_vars + offset, shifted)


def all_assignments(num_vars: int) -> Iterator[Assignment]:
    """Yield every total assignment over ``1 .. num_vars`` (2**n of them)."""
    for mask in range(1 << num_vars):
        yield {v: bool(mask >> (v - 1) & 1) for v in range(1, num_vars + 1)}
