"""Random and structured 3SAT generators.

Used by the benchmark harness to produce workloads:

* :func:`random_3sat` — uniform random exactly-3 clauses;
* :func:`random_planted_3sat` — satisfiable by a planted assignment;
* :func:`pigeonhole_formula` — classically unsatisfiable instances;
* :func:`unsatisfiable_core` — a minimal 3CNF contradiction used by
  the gap families to cap the satisfiable fraction.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

from repro.sat.cnf import Assignment, CNFFormula
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require


def random_3sat(num_vars: int, num_clauses: int, rng: RngLike = None) -> CNFFormula:
    """Uniform random 3SAT: each clause picks 3 distinct variables and
    independent random polarities; tautologies are impossible because
    variables within a clause are distinct."""
    require(num_vars >= 3, "random_3sat needs at least 3 variables")
    generator = make_rng(rng)
    clauses: List[List[int]] = []
    for _ in range(num_clauses):
        variables = generator.sample(range(1, num_vars + 1), 3)
        clause = [
            var if generator.random() < 0.5 else -var for var in variables
        ]
        clauses.append(clause)
    return CNFFormula(num_vars, clauses)


def random_planted_3sat(
    num_vars: int,
    num_clauses: int,
    rng: RngLike = None,
) -> tuple[CNFFormula, Assignment]:
    """Random 3SAT guaranteed satisfiable by a hidden planted assignment.

    Each clause is resampled until the planted assignment satisfies it,
    giving the standard planted distribution.  Returns the formula and
    the planted assignment (useful as a certificate).
    """
    require(num_vars >= 3, "random_planted_3sat needs at least 3 variables")
    generator = make_rng(rng)
    planted = {v: generator.random() < 0.5 for v in range(1, num_vars + 1)}
    clauses: List[List[int]] = []
    while len(clauses) < num_clauses:
        variables = generator.sample(range(1, num_vars + 1), 3)
        clause = [
            var if generator.random() < 0.5 else -var for var in variables
        ]
        if any(planted[abs(lit)] == (lit > 0) for lit in clause):
            clauses.append(clause)
    return CNFFormula(num_vars, clauses), planted


def pigeonhole_formula(holes: int) -> CNFFormula:
    """PHP(holes+1, holes): unsatisfiable, not 3CNF in general.

    Variable ``x_{p,h}`` (pigeon p in hole h) is encoded as
    ``p * holes + h + 1`` for ``p in range(holes + 1)``.
    """
    require(holes >= 1, "need at least one hole")
    pigeons = holes + 1

    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    clauses: List[List[int]] = []
    for pigeon in range(pigeons):
        clauses.append([var(pigeon, hole) for hole in range(holes)])
    for hole in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            clauses.append([-var(p1, hole), -var(p2, hole)])
    return CNFFormula(pigeons * holes, clauses)


def unsatisfiable_core(first_var: int = 1) -> CNFFormula:
    """The canonical 8-clause unsatisfiable 3CNF over three variables.

    All eight polarity patterns over ``(x, y, z)`` — every assignment
    falsifies exactly one clause, so MAX-SAT = 7/8.  Each variable
    occurs in exactly 8 clauses, within the 3SAT(13) bound.

    ``first_var`` names the first of the three consecutive variables.
    """
    x, y, z = first_var, first_var + 1, first_var + 2
    clauses = [
        [sx * x, sy * y, sz * z]
        for sx in (1, -1)
        for sy in (1, -1)
        for sz in (1, -1)
    ]
    return CNFFormula(first_var + 2, clauses)


def chain_implication_clauses(variables: Sequence[int]) -> List[List[int]]:
    """Cyclic equality chain ``v1 -> v2 -> ... -> vk -> v1`` as 2-clauses.

    Used by the occurrence-bounding transformation to force all copies
    of a variable to take the same value.
    """
    k = len(variables)
    require(k >= 1, "chain needs at least one variable")
    if k == 1:
        return []
    return [
        [-variables[i], variables[(i + 1) % k]] for i in range(k)
    ]
