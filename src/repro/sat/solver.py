"""DPLL satisfiability solver.

A classical DPLL with unit propagation, pure-literal elimination and a
most-frequent-variable branching rule.  The reduction pipeline only
solves small formulas (the hardness families are built, not solved),
so an iterative DPLL with explicit trail is more than sufficient and
keeps the substrate dependency-free.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.sat.cnf import Assignment, CNFFormula


class DPLLSolver:
    """Complete SAT solver over :class:`~repro.sat.cnf.CNFFormula`.

    Usage::

        result = DPLLSolver(formula).solve()
        if result is not None:      # satisfying assignment found
            assert formula.is_satisfied_by(result)
    """

    def __init__(
        self, formula: CNFFormula, max_decisions: Optional[int] = None
    ) -> None:
        self._formula = formula
        self._max_decisions = max_decisions
        self.decisions = 0
        self.propagations = 0

    def solve(self) -> Optional[Assignment]:
        """Return a satisfying assignment, or None if unsatisfiable.

        Raises ``RuntimeError`` if ``max_decisions`` is exhausted (used
        by the benchmark harness to bound exploratory runs).
        """
        clauses = [list(clause.literals) for clause in self._formula]
        if any(not clause for clause in clauses):
            return None
        assignment: Assignment = {}
        result = self._search(clauses, assignment)
        if result is None:
            return None
        # Complete the assignment for variables never constrained.
        for var in range(1, self._formula.num_vars + 1):
            result.setdefault(var, False)
        return result

    # -- internals ---------------------------------------------------
    def _search(
        self, clauses: List[List[int]], assignment: Assignment
    ) -> Optional[Assignment]:
        clauses = self._propagate(clauses, assignment)
        if clauses is None:
            return None
        if not clauses:
            return dict(assignment)
        if self._max_decisions is not None and self.decisions >= self._max_decisions:
            raise RuntimeError("DPLL decision budget exhausted")
        variable = self._pick_branch_variable(clauses)
        self.decisions += 1
        for value in (True, False):
            trial = dict(assignment)
            trial[variable] = value
            result = self._search(self._assume(clauses, variable, value), trial)
            if result is not None:
                return result
        return None

    def _propagate(
        self, clauses: List[List[int]], assignment: Assignment
    ) -> Optional[List[List[int]]]:
        """Unit propagation + pure-literal elimination to fixpoint.

        Returns the residual clause list, or None on conflict.
        Mutates ``assignment`` with the implied values.
        """
        changed = True
        while changed:
            changed = False
            # Unit clauses.
            for clause in clauses:
                if len(clause) == 1:
                    literal = clause[0]
                    assignment[abs(literal)] = literal > 0
                    self.propagations += 1
                    clauses = self._assume(clauses, abs(literal), literal > 0)
                    if clauses is None:
                        return None
                    changed = True
                    break
            if changed:
                continue
            if any(not clause for clause in clauses):
                return None
            # Pure literals.
            polarity: Dict[int, int] = {}
            for clause in clauses:
                for literal in clause:
                    var = abs(literal)
                    sign = 1 if literal > 0 else -1
                    if var not in polarity:
                        polarity[var] = sign
                    elif polarity[var] != sign:
                        polarity[var] = 0
            for var, sign in polarity.items():
                if sign != 0:
                    assignment[var] = sign > 0
                    self.propagations += 1
                    clauses = self._assume(clauses, var, sign > 0)
                    changed = True
                    break
        return clauses

    @staticmethod
    def _assume(
        clauses: List[List[int]], variable: int, value: bool
    ) -> List[List[int]]:
        """Simplify the clause list under ``variable := value``."""
        true_literal = variable if value else -variable
        result: List[List[int]] = []
        for clause in clauses:
            if true_literal in clause:
                continue
            if -true_literal in clause:
                result.append([lit for lit in clause if lit != -true_literal])
            else:
                result.append(clause)
        return result

    @staticmethod
    def _pick_branch_variable(clauses: List[List[int]]) -> int:
        """Branch on the most frequently occurring variable."""
        counts: Counter[int] = Counter()
        for clause in clauses:
            for literal in clause:
                counts[abs(literal)] += 1
        return counts.most_common(1)[0][0]


def solve(formula: CNFFormula) -> Optional[Assignment]:
    """Convenience wrapper: satisfying assignment or None."""
    return DPLLSolver(formula).solve()


def is_satisfiable(formula: CNFFormula) -> bool:
    """True iff the formula is satisfiable (complete search)."""
    return solve(formula) is not None
