"""SAT substrate: CNF formulas, solvers and gap-instance families.

The paper's reductions start from 3SAT(13) — 3CNF formulas in which
each variable occurs in at most 13 clauses, promised to be either
satisfiable or at most (1-theta)-satisfiable (Theorem 1, via the PCP
theorem).  This package supplies everything the reductions consume:

* :mod:`repro.sat.cnf` — the formula model (DIMACS-style literals);
* :mod:`repro.sat.dimacs` — DIMACS CNF read/write;
* :mod:`repro.sat.solver` — a DPLL satisfiability solver;
* :mod:`repro.sat.maxsat` — exact branch-and-bound and local-search
  MAX-SAT;
* :mod:`repro.sat.generators` — random and planted 3SAT generators;
* :mod:`repro.sat.bounded` — the occurrence-bounding transformation
  3SAT -> 3SAT(13);
* :mod:`repro.sat.gapfamilies` — certified gap families standing in
  for the (non-implementable) PCP amplification of Theorem 1.
"""

from repro.sat.cnf import Assignment, Clause, CNFFormula
from repro.sat.solver import DPLLSolver, is_satisfiable, solve
from repro.sat.maxsat import local_search_maxsat, max_satisfiable_clauses
from repro.sat.generators import (
    random_3sat,
    random_planted_3sat,
    pigeonhole_formula,
)
from repro.sat.bounded import bound_occurrences, max_occurrences
from repro.sat.gapfamilies import GapFormula, gap_family
from repro.sat.simplify import SimplificationResult, simplify
from repro.sat.tseitin import tseitin_encode

__all__ = [
    "Assignment",
    "Clause",
    "CNFFormula",
    "DPLLSolver",
    "is_satisfiable",
    "solve",
    "local_search_maxsat",
    "max_satisfiable_clauses",
    "random_3sat",
    "random_planted_3sat",
    "pigeonhole_formula",
    "bound_occurrences",
    "max_occurrences",
    "GapFormula",
    "gap_family",
    "SimplificationResult",
    "simplify",
    "tseitin_encode",
]
