"""Tseitin encoding: boolean circuits -> equisatisfiable 3CNF.

Rounds out the SAT substrate: arbitrary AND/OR/NOT formulas become
3CNF suitable for the reduction pipeline, one fresh variable per gate,
clauses of width <= 3 by construction.

Circuits are built with the tiny combinator API::

    x1, x2, x3 = var(1), var(2), var(3)
    circuit = and_(or_(x1, neg(x2)), neg(and_(x2, x3)))
    formula, root = tseitin_encode(circuit, num_inputs=3)

The encoding is *equisatisfiable*: ``formula`` (which asserts the root
gate) is satisfiable iff the circuit is, and any model restricts to a
satisfying input assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.sat.cnf import Assignment, CNFFormula
from repro.utils.validation import require


@dataclass(frozen=True)
class Var:
    """An input variable (1-indexed, DIMACS style)."""

    index: int

    def __post_init__(self) -> None:
        require(self.index >= 1, "variables are 1-indexed")


@dataclass(frozen=True)
class Not:
    child: "Node"


@dataclass(frozen=True)
class And:
    left: "Node"
    right: "Node"


@dataclass(frozen=True)
class Or:
    left: "Node"
    right: "Node"


Node = Union[Var, Not, And, Or]


def var(index: int) -> Var:
    return Var(index)


def neg(node: Node) -> Not:
    return Not(node)


def and_(left: Node, right: Node) -> And:
    return And(left, right)


def or_(left: Node, right: Node) -> Or:
    return Or(left, right)


def evaluate(node: Node, assignment: Assignment) -> bool:
    """Evaluate a circuit under an input assignment."""
    if isinstance(node, Var):
        return assignment.get(node.index, False)
    if isinstance(node, Not):
        return not evaluate(node.child, assignment)
    if isinstance(node, And):
        return evaluate(node.left, assignment) and evaluate(node.right, assignment)
    if isinstance(node, Or):
        return evaluate(node.left, assignment) or evaluate(node.right, assignment)
    raise TypeError(f"unknown node type {type(node)!r}")


def circuit_inputs(node: Node) -> set[int]:
    """The set of input variable indices used by a circuit."""
    if isinstance(node, Var):
        return {node.index}
    if isinstance(node, Not):
        return circuit_inputs(node.child)
    if isinstance(node, (And, Or)):
        return circuit_inputs(node.left) | circuit_inputs(node.right)
    raise TypeError(f"unknown node type {type(node)!r}")


def tseitin_encode(
    node: Node, num_inputs: int | None = None
) -> Tuple[CNFFormula, int]:
    """Encode a circuit into 3CNF asserting the root.

    Returns ``(formula, root_literal)``; the formula includes the unit
    clause ``[root_literal]``.  ``num_inputs`` fixes the input-variable
    count (defaults to the largest index used).
    """
    used = circuit_inputs(node)
    require(used, "circuit must mention at least one variable")
    if num_inputs is None:
        num_inputs = max(used)
    require(
        max(used) <= num_inputs,
        "num_inputs smaller than a used variable index",
    )

    clauses: List[List[int]] = []
    next_var = num_inputs + 1

    def encode(current: Node) -> int:
        nonlocal next_var
        if isinstance(current, Var):
            return current.index
        if isinstance(current, Not):
            child = encode(current.child)
            return -child
        left = encode(current.left)
        right = encode(current.right)
        gate = next_var
        next_var += 1
        if isinstance(current, And):
            # gate <-> (left AND right)
            clauses.append([-gate, left])
            clauses.append([-gate, right])
            clauses.append([gate, -left, -right])
        else:  # Or
            # gate <-> (left OR right)
            clauses.append([gate, -left])
            clauses.append([gate, -right])
            clauses.append([-gate, left, right])
        return gate

    root = encode(node)
    clauses.append([root])
    return CNFFormula(next_var - 1, clauses), root
