"""Certified gap families of 3SAT(13) formulas.

Theorem 1 of the paper invokes the PCP theorem: a reduction mapping YES
instances to *satisfiable* 3SAT(13) formulas and NO instances to
formulas in which at most a ``1 - theta`` fraction of clauses is
satisfiable.  A PCP verifier is not an implementable artifact, so this
module supplies the object the downstream reductions actually consume:
formulas with a *certified* satisfiability gap.

* YES side — planted satisfiable 3SAT padded/filtered to respect the
  occurrence bound; the planted assignment is the certificate.
* NO side — disjoint copies of the canonical 8-clause unsatisfiable
  core (MAX-SAT = 7/8 per copy, verified exactly), optionally mixed
  with satisfiable filler whose fraction controls theta.  With ``k``
  cores over ``8k + f`` clauses the satisfiable fraction is exactly
  ``(8k + f - k) / (8k + f)``, i.e. ``theta = k / (8k + f)``.

Every :class:`GapFormula` records its promise and (for small sizes) is
re-verified by the exact MAX-SAT solver in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.sat.cnf import Assignment, CNFFormula
from repro.sat.generators import random_planted_3sat, unsatisfiable_core
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class GapFormula:
    """A 3SAT(13) formula with a certified satisfiability promise.

    Attributes:
        formula: the 3CNF formula (occurrences bounded by 13).
        satisfiable: which side of the promise this instance is on.
        theta: for NO instances, at most ``1 - theta`` of the clauses
            are simultaneously satisfiable; 0 for YES instances.
        witness: a satisfying assignment for YES instances.
    """

    formula: CNFFormula
    satisfiable: bool
    theta: Fraction
    witness: Optional[Assignment] = None

    def __post_init__(self) -> None:
        if self.satisfiable:
            require(self.witness is not None, "YES instance needs a witness")
            require(
                self.formula.is_satisfied_by(self.witness),
                "witness does not satisfy the formula",
            )
        else:
            require(self.theta > 0, "NO instance needs theta > 0")
        require(
            self.formula.occurrences_bounded_by(13),
            "gap formulas must be 3SAT(13)",
        )

    @property
    def max_sat_fraction_bound(self) -> Fraction:
        """Upper bound on the satisfiable fraction (1 for YES instances)."""
        return Fraction(1) - self.theta if not self.satisfiable else Fraction(1)


def yes_instance(
    num_vars: int, num_clauses: int, rng: RngLike = None
) -> GapFormula:
    """A satisfiable 3SAT(13) instance with a planted witness.

    Clauses are resampled until the occurrence bound holds, so the
    clause/variable ratio must stay below 13/3.
    """
    require(
        num_clauses * 3 <= num_vars * 13,
        "clause count exceeds the 3SAT(13) occurrence capacity",
    )
    generator = make_rng(rng)
    for _ in range(200):
        formula, planted = random_planted_3sat(num_vars, num_clauses, generator)
        if formula.occurrences_bounded_by(13):
            return GapFormula(
                formula=formula,
                satisfiable=True,
                theta=Fraction(0),
                witness=planted,
            )
    raise RuntimeError(
        "could not sample a 3SAT(13) formula; lower the clause density"
    )


def no_instance(
    num_cores: int,
    filler_clauses: int = 0,
    rng: RngLike = None,
) -> GapFormula:
    """An unsatisfiable 3SAT(13) instance built from disjoint cores.

    ``num_cores`` disjoint 8-clause unsatisfiable cores guarantee that
    at least ``num_cores`` clauses are falsified by every assignment.
    ``filler_clauses`` satisfiable planted clauses (on fresh variables)
    dilute theta to ``num_cores / (8 * num_cores + filler_clauses)``.
    """
    require(num_cores >= 1, "need at least one unsatisfiable core")
    combined = CNFFormula(0, [])
    for index in range(num_cores):
        core = unsatisfiable_core(first_var=3 * index + 1)
        combined = combined.conjoin(core)
    if filler_clauses:
        filler_vars = max(3, (filler_clauses * 3 + 12) // 13)
        filler, _ = random_planted_3sat(filler_vars, filler_clauses, rng)
        # Resample until the filler respects the occurrence bound.
        generator = make_rng(rng)
        for _ in range(200):
            if filler.occurrences_bounded_by(13):
                break
            filler, _ = random_planted_3sat(filler_vars, filler_clauses, generator)
        combined = combined.conjoin(filler.shift_variables(combined.num_vars))
    total = combined.num_clauses
    theta = Fraction(num_cores, total)
    return GapFormula(
        formula=combined, satisfiable=False, theta=theta, witness=None
    )


def gap_family(
    num_vars: int,
    satisfiable: bool,
    theta: Fraction = Fraction(1, 8),
    rng: RngLike = None,
) -> GapFormula:
    """Sample a gap instance of roughly ``num_vars`` variables.

    YES instances use a moderate clause density (2 clauses per
    variable); NO instances stack enough cores to reach the requested
    theta exactly when ``theta = k / (8k + f)`` is attainable, else the
    closest not-smaller theta.
    """
    require(num_vars >= 3, "need at least three variables")
    if satisfiable:
        return yes_instance(num_vars, 2 * num_vars, rng)
    num_cores = max(1, num_vars // 3)
    if theta >= Fraction(1, 8):
        filler = 0
    else:
        # theta = k / (8k + f)  =>  f = k / theta - 8k
        filler = max(0, int(num_cores / theta) - 8 * num_cores)
    return no_instance(num_cores, filler_clauses=filler, rng=rng)
