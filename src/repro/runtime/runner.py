"""Parallel instrumented sweep runner for optimizer x instance grids.

The gap-family experiments (Theorems 9/15/16/17) are verified by
sweeping many reduction instances through many optimizers.  This module
turns such a grid into a list of :class:`SweepTask` and executes it

* over a ``multiprocessing`` pool when one is available.  Dispatch is
  *chunked* (``chunksize`` knob, deterministic :func:`auto_chunksize`
  heuristic) and instances travel through the content-addressed
  :class:`~repro.runtime.registry.InstanceRegistry`: each *distinct*
  instance payload is shipped to each worker exactly once in the pool
  initializer, tasks carry lightweight
  :class:`~repro.runtime.registry.InstanceRef` markers, and workers
  keep decoded instances (and therefore the per-instance compiled
  kernels of :mod:`repro.perf.kernels`) live across tasks.  Chunks
  complete in arbitrary order; :func:`_reassemble` restores exact
  submission order by sorting on the per-outcome task index, which is
  the deterministic-task-order guarantee tests pin.  ``chunksize=0``
  selects the legacy per-task dispatch (full instance pickled with
  every task, no registry) — kept as the benchmark comparator;
* serially — with identical outcome semantics — when ``workers <= 1``,
  the platform cannot fork, or pool creation fails for any reason,

with per-task wall-clock timeouts (SIGALRM-based, so a stuck optimizer
returns a *marked* partial outcome instead of hanging the sweep) and a
:class:`~repro.runtime.costcache.CostCache` installed around every
task.  In serial mode one cache is shared by the whole sweep, so
cross-task reuse (e.g. three exact optimizers walking the same subset
lattice) is captured; in parallel mode each worker process holds its
own cache and per-task counter deltas are aggregated at the end.

Worker-persistent state never changes results: instances are decoded
once per worker but every decode of one payload is structurally equal,
optimizers are pure functions of instance content, and the cost cache
keys on the content fingerprint — so chunked, legacy-parallel and
serial runs produce bit-identical outcomes (value, type, ``repr``),
which the differential tests in ``tests/test_runtime_registry.py``
enforce across ``chunksize``/``workers`` schedules.

Every outcome carries wall time, plans explored, and the cache-counter
movement attributable to that task — the raw material for
:mod:`repro.runtime.metrics`; the sweep-level :class:`ExecutorStats`
(``ship_bytes``, ``registry_hits``, ``kernels_compiled``, ``chunks``)
reports what the executor itself did to move the work.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.hashjoin.annealing import qoh_simulated_annealing
from repro.hashjoin.optimizer import qoh_greedy, qoh_optimal
from repro.hashjoin.search import qoh_beam_search
from repro.joinopt.optimizers import (
    branch_and_bound,
    dp_optimal,
    exhaustive_optimal,
    genetic_algorithm,
    greedy_min_cost,
    greedy_min_size,
    ikkbz,
    iterative_improvement,
    random_sampling,
    simulated_annealing,
)
from repro.observability.events import active_event_log
from repro.observability.events import emit as _emit_event
from repro.observability.metrics import active_metrics
from repro.observability.tracer import Tracer, use_tracer
from repro.runtime.costcache import (
    CacheStats,
    CostCache,
    install_cache,
    use_cache,
)
from repro.runtime.registry import InstanceRef, InstanceRegistry
from repro.starqo.dp import sqocp_dp
from repro.starqo.optimizer import sqocp_optimal
from repro.utils.validation import require

if TYPE_CHECKING:  # runtime import would be circular: resilience uses _execute
    from repro.runtime.resilience import FaultPlan

#: Name -> callable registry shared with the CLI.  Values must be
#: module-level functions so task specs pickle across processes.
OPTIMIZERS: Dict[str, Callable] = {
    "exhaustive": exhaustive_optimal,
    "bnb": branch_and_bound,
    "dp": dp_optimal,
    "ikkbz": ikkbz,
    "greedy-cost": greedy_min_cost,
    "greedy-size": greedy_min_size,
    "iterative": iterative_improvement,
    "annealing": simulated_annealing,
    "sampling": random_sampling,
    "genetic": genetic_algorithm,
    "qoh-exhaustive": qoh_optimal,
    "qoh-greedy": qoh_greedy,
    "qoh-beam": qoh_beam_search,
    "qoh-annealing": qoh_simulated_annealing,
    "sqocp-exhaustive": sqocp_optimal,
    "sqocp-dp": sqocp_dp,
}


@dataclass(frozen=True)
class SweepTask:
    """One cell of the grid: run ``optimizer`` on ``instance``.

    ``optimizer`` is a registry name or any picklable callable taking
    the instance as its first argument plus ``kwargs``.
    """

    optimizer: Union[str, Callable]
    instance: object
    label: str = ""
    kwargs: Tuple[Tuple[str, object], ...] = ()
    timeout: Optional[float] = None

    def with_kwargs(self, **kwargs: object) -> "SweepTask":
        return replace(self, kwargs=tuple(sorted(kwargs.items())))

    @property
    def optimizer_name(self) -> str:
        if isinstance(self.optimizer, str):
            return self.optimizer
        return getattr(self.optimizer, "__name__", repr(self.optimizer))


@dataclass(frozen=True)
class TaskOutcome:
    """What happened when one task ran."""

    index: int
    optimizer: str
    label: str
    result: object = None
    wall_time: float = 0.0
    timed_out: bool = False
    error: Optional[str] = None
    #: Failure taxonomy: ``None`` on success, else one of
    #: :data:`repro.runtime.metrics.FAILURE_KINDS` — ``"timeout"``,
    #: ``"error"``, ``"worker-died"`` or ``"cancelled"``.
    failure: Optional[str] = None
    #: Attempts consumed to produce this outcome (``> 1`` after
    #: retries; ``0`` for tasks cancelled before ever running).
    attempts: int = 1
    cache: CacheStats = field(default_factory=CacheStats)
    #: Per-task span records (plain dicts, ids local to this task),
    #: present when the sweep ran with tracing enabled.
    trace: Optional[Tuple[dict, ...]] = None

    @property
    def ok(self) -> bool:
        return self.error is None and not self.timed_out

    @property
    def explored(self) -> int:
        return getattr(self.result, "explored", 0) if self.result else 0


@dataclass(frozen=True)
class ExecutorStats:
    """What the executor did to move the work (not what tasks computed).

    ``ship_bytes`` — pickled instance bytes shipped to workers: with
    the registry path each distinct payload travels once per worker;
    in legacy per-task mode every task carries its own copy.
    ``registry_hits`` — worker-side live-tier hits (a decoded instance
    was reused across tasks).  ``kernels_compiled`` — actual
    :mod:`repro.perf.kernels` constructions, summed over workers (or
    over the serial loop).  ``chunks`` — chunk payloads dispatched;
    ``0`` in serial and legacy per-task modes.

    All fields are additive and deliberately *excluded* from journal
    records and bit-identity contracts: they describe scheduling, not
    results.
    """

    ship_bytes: int = 0
    registry_hits: int = 0
    kernels_compiled: int = 0
    chunks: int = 0

    def merged(self, other: "ExecutorStats") -> "ExecutorStats":
        return ExecutorStats(
            ship_bytes=self.ship_bytes + other.ship_bytes,
            registry_hits=self.registry_hits + other.registry_hits,
            kernels_compiled=self.kernels_compiled + other.kernels_compiled,
            chunks=self.chunks + other.chunks,
        )

    def to_dict(self) -> Dict[str, int]:
        return {
            "ship_bytes": self.ship_bytes,
            "registry_hits": self.registry_hits,
            "kernels_compiled": self.kernels_compiled,
            "chunks": self.chunks,
        }


@dataclass(frozen=True)
class SweepResult:
    """All outcomes of one sweep, in task order."""

    outcomes: Tuple[TaskOutcome, ...]
    mode: str  # "parallel" or "serial"
    workers: int
    cache_enabled: bool
    wall_time: float
    #: Resilience counters — all zero for plain :func:`run_sweep` runs.
    #: ``retries`` = extra attempts consumed beyond each task's first,
    #: ``recovered_workers`` = worker pools respawned after a death,
    #: ``resumed`` = outcomes restored from a journal by
    #: :func:`repro.runtime.resilience.resume_sweep`.
    retries: int = 0
    recovered_workers: int = 0
    resumed: int = 0
    #: Executor-level movement counters (see :class:`ExecutorStats`).
    executor: ExecutorStats = field(default_factory=ExecutorStats)

    def __iter__(self) -> Iterator[TaskOutcome]:
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def cache_totals(self) -> CacheStats:
        """Cache-counter movement summed over every task."""
        total = CacheStats()
        for outcome in self.outcomes:
            total = total.merged(outcome.cache)
        return total

    def failure_counts(self) -> Dict[str, int]:
        """Failed tasks bucketed by taxonomy label."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.failure is not None:
                counts[outcome.failure] = counts.get(outcome.failure, 0) + 1
        return counts

    def trace_records(self) -> List[dict]:
        """Per-task traces merged into one ``repro.trace/1`` span tree.

        A synthetic ``sweep`` root (id 0, duration = the sweep's wall
        time) adopts each task's subtree, in task-index order with ids
        offset — so the merge is deterministic regardless of which
        worker finished first.  Subtrees from pool workers keep their
        worker-local ``start_s`` clocks; ``duration_s``, which is what
        the reports aggregate, is always comparable.
        """
        counters: Dict[str, int] = {}
        for name, value in (
            ("retries", self.retries),
            ("recovered_workers", self.recovered_workers),
            ("resumed_tasks", self.resumed),
            ("ship_bytes", self.executor.ship_bytes),
            ("registry_hits", self.executor.registry_hits),
            ("kernels_compiled", self.executor.kernels_compiled),
            ("chunks", self.executor.chunks),
        ):
            if value:
                counters[name] = value
        records: List[dict] = [{
            "id": 0,
            "parent": None,
            "name": "sweep",
            "start_s": 0.0,
            "duration_s": self.wall_time,
            "counters": counters,
            "attrs": {
                "mode": self.mode,
                "workers": self.workers,
                "cache_enabled": self.cache_enabled,
                "tasks": len(self.outcomes),
            },
        }]
        next_id = 1
        for outcome in self.outcomes:
            if not outcome.trace:
                continue
            offset = next_id
            top = 0
            for record in outcome.trace:
                merged = dict(record)
                merged["id"] = record["id"] + offset
                merged["parent"] = (
                    0 if record["parent"] is None
                    else record["parent"] + offset
                )
                if record["parent"] is None:
                    # Each task tracer measures start_s from its own
                    # (possibly worker-local) clock; tag the grafted
                    # subtree so reports can surface that its offsets
                    # are not comparable with its siblings'.
                    attrs = dict(merged.get("attrs", {}))
                    attrs["origin"] = f"task-{outcome.index}"
                    merged["attrs"] = attrs
                top = max(top, merged["id"])
                records.append(merged)
            next_id = top + 1
        return records

    @property
    def evaluations(self) -> int:
        """Cost evaluations actually performed (cache misses)."""
        return self.cache_totals().misses

    @property
    def explored_total(self) -> int:
        return sum(outcome.explored for outcome in self.outcomes)


class SweepTimeout(Exception):
    """Raised inside a task when its wall-clock budget expires."""


class WorkerDied(Exception):
    """A worker process died (or, in serial mode, pretended to).

    The chaos layer raises this in serial mode so the worker-death
    recovery path is exercisable without killing the test process; in
    a pool worker an injected kill exits the process for real and the
    parent sees ``BrokenProcessPool`` instead.
    """


def _raise_timeout(
    signum: int, frame: object
) -> None:  # pragma: no cover - signal plumbing
    raise SweepTimeout()


def _call_with_timeout(
    run: Callable[[], object], timeout: Optional[float]
) -> object:
    """Run ``run()`` under a real-time alarm when the platform has one.

    Nesting-safe: the previous handler *and* any previously armed
    itimer are restored in a ``finally`` — even when ``run()`` raises —
    so an inner timed call re-arms the enclosing call's remaining
    budget (minus the time the inner call consumed) instead of silently
    cancelling the outer alarm.
    """
    if not timeout or timeout <= 0 or not hasattr(signal, "setitimer"):
        return run()
    try:
        previous = signal.signal(signal.SIGALRM, _raise_timeout)
    except ValueError:  # not in the main thread: no alarm available
        return run()
    start = time.monotonic()
    prior_remaining, _ = signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return run()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if prior_remaining > 0.0:
            elapsed = time.monotonic() - start
            # An outer budget that expired while we ran fires (almost)
            # immediately under the restored handler.
            signal.setitimer(
                signal.ITIMER_REAL, max(prior_remaining - elapsed, 1e-6)
            )


def _resolve(task: SweepTask) -> Callable:
    if isinstance(task.optimizer, str):
        require(
            task.optimizer in OPTIMIZERS,
            f"unknown optimizer {task.optimizer!r}; "
            f"known: {sorted(OPTIMIZERS)}",
        )
        return OPTIMIZERS[task.optimizer]
    return task.optimizer


def _execute(index: int, task: SweepTask, cache: Optional[CostCache],
             default_timeout: Optional[float],
             trace: bool = False,
             attempt: int = 0,
             fault_plan: Optional["FaultPlan"] = None) -> TaskOutcome:
    """Run one task against ``cache`` (may be None) and time it.

    With ``trace`` a per-task :class:`Tracer` is installed for the
    task's dynamic extent — in serial and parallel mode alike, so the
    merged sweep trace is identical in shape either way.  The tracer
    survives timeouts and optimizer errors: ``finish()`` force-closes
    whatever spans the exception left open.

    ``attempt`` and ``fault_plan`` belong to the resilience layer: when
    a :class:`~repro.runtime.resilience.FaultPlan` schedules a fault at
    ``(index, attempt)``, it fires inside the same try block the real
    failures use, so injected and organic failures are classified by
    one code path.
    """
    run = _resolve(task)
    kwargs = dict(task.kwargs)
    timeout = task.timeout if task.timeout is not None else default_timeout
    if active_event_log() is not None:
        _emit_event(
            "task.start",
            index=index,
            optimizer=task.optimizer_name,
            label=task.label,
            attempt=attempt,
        )
    tracer = Tracer("task") if trace else None
    if tracer is not None:
        tracer.root["attrs"] = {
            "index": index,
            "optimizer": task.optimizer_name,
            "label": task.label,
        }
        if attempt:
            tracer.root["attrs"]["attempt"] = attempt
    fault: Optional[str] = None
    if fault_plan is not None:
        fault = fault_plan.fault_for(index, attempt)
    before = cache.stats() if cache is not None else CacheStats()
    start = time.perf_counter()
    result = None
    timed_out = False
    error: Optional[str] = None
    failure: Optional[str] = None
    try:
        if fault is not None:
            from repro.runtime.resilience import apply_fault

            apply_fault(fault, index=index, attempt=attempt)
        with use_cache(cache):
            if tracer is not None:
                with use_tracer(tracer):
                    result = _call_with_timeout(
                        lambda: run(task.instance, **kwargs), timeout
                    )
            else:
                result = _call_with_timeout(
                    lambda: run(task.instance, **kwargs), timeout
                )
    except SweepTimeout:
        timed_out = True
        failure = "timeout"
        error = (
            f"timeout injected at task {index}, attempt {attempt}"
            if fault == "timeout" else f"timeout after {timeout}s"
        )
    except WorkerDied as exc:
        failure = "worker-died"
        error = f"WorkerDied: {exc}"
    except Exception as exc:  # noqa: BLE001 - outcomes report, not raise
        failure = "error"
        error = f"{type(exc).__name__}: {exc}"
    wall = time.perf_counter() - start
    after = cache.stats() if cache is not None else CacheStats()
    delta = after.delta(before)
    trace_records: Optional[Tuple[dict, ...]] = None
    if tracer is not None:
        records = tracer.finish()
        if delta.peak_size > 0:
            # Peak size of the subproblem store as of this task's end —
            # how deep the shared lattice had grown.
            tracer.root["counters"]["subproblem_peak"] = delta.peak_size
        trace_records = tuple(records)
    return TaskOutcome(
        index=index,
        optimizer=task.optimizer_name,
        label=task.label,
        result=result,
        wall_time=wall,
        timed_out=timed_out,
        error=error,
        failure=failure,
        attempts=attempt + 1,
        cache=delta,
        trace=trace_records,
    )


# -- parallel plumbing -------------------------------------------------
#: Per-worker-process cache, installed by the pool initializer.
_WORKER_CACHE: Optional[CostCache] = None
#: Per-worker-process instance registry, built from the payload map
#: shipped by the pool initializer.  None in legacy per-task mode,
#: where tasks still carry full instances.
_WORKER_REGISTRY: Optional[InstanceRegistry] = None

#: One dispatched chunk: ``(index, task)`` pairs plus the sweep-wide
#: timeout/trace settings.  In registry mode each task's ``instance``
#: slot holds an :class:`InstanceRef`.
_ChunkPayload = Tuple[
    Tuple[Tuple[int, SweepTask], ...], Optional[float], bool
]
#: What a chunk sends back: its outcomes plus the worker-side deltas
#: of registry live-tier hits and kernel compilations.
_ChunkResult = Tuple[Tuple[TaskOutcome, ...], int, int]


def _worker_init(
    cache_enabled: bool,
    cache_maxsize: Optional[int],
    payloads: Optional[Dict[str, bytes]] = None,
    registry_max_live: Optional[int] = None,
) -> None:
    global _WORKER_CACHE, _WORKER_REGISTRY
    _WORKER_CACHE = (
        CostCache(maxsize=cache_maxsize) if cache_enabled
        else CostCache(maxsize=0)
    )
    _WORKER_REGISTRY = (
        InstanceRegistry.from_payloads(payloads, max_live=registry_max_live)
        if payloads is not None else None
    )
    if payloads is not None:
        # Worker-persistent kernels: while the registry keeps a decoded
        # instance live, keep its compiled kernel alive too.  Bounded
        # by the live tier so pinning cannot outgrow the registry.
        from repro.perf.kernels import pin_kernels

        pin_kernels(
            registry_max_live if registry_max_live is not None
            else len(payloads)
        )
    install_cache(None)  # tasks install it per-call via _execute


def _materialize(
    task: SweepTask, registry: Optional[InstanceRegistry]
) -> SweepTask:
    """Swap a shipped :class:`InstanceRef` back for its live instance."""
    if not isinstance(task.instance, InstanceRef):
        return task
    require(
        registry is not None,
        "task references the instance registry but this worker has none",
    )
    assert registry is not None  # for the type checker; require() raised
    return replace(task, instance=registry.get(task.instance.key))


def _worker_run_chunk(payload: _ChunkPayload) -> _ChunkResult:
    """Run one chunk of tasks inside a pool worker.

    The registry hands every task of a repeated instance the *same*
    decoded object, so the per-instance kernel memo in
    :mod:`repro.perf.kernels` survives across tasks; the returned
    deltas report how much reuse actually happened in this chunk.
    """
    from repro.perf.kernels import compiles_total

    items, default_timeout, trace = payload
    registry = _WORKER_REGISTRY
    hits_before = registry.stats().hits if registry is not None else 0
    compiled_before = compiles_total()
    outcomes = tuple(
        _execute(
            index, _materialize(task, registry), _WORKER_CACHE,
            default_timeout, trace=trace,
        )
        for index, task in items
    )
    hits_delta = (
        registry.stats().hits - hits_before if registry is not None else 0
    )
    return outcomes, hits_delta, compiles_total() - compiled_before


def _make_pool(
    workers: int,
    cache_enabled: bool,
    cache_maxsize: Optional[int],
    payloads: Optional[Dict[str, bytes]] = None,
    registry_max_live: Optional[int] = None,
) -> object:
    """Create the worker pool (split out so tests can force failure)."""
    import multiprocessing

    return multiprocessing.get_context().Pool(
        processes=workers,
        initializer=_worker_init,
        initargs=(cache_enabled, cache_maxsize, payloads, registry_max_live),
    )


def default_workers() -> int:
    count = os.cpu_count() or 1
    return max(1, min(count - 1, 8))


def auto_chunksize(num_tasks: int, workers: int) -> int:
    """Deterministic chunk-size heuristic for ``chunksize=None``.

    Aims for about four chunks per worker — enough slack for the pool
    to balance stragglers — while capping chunks at 32 tasks so one
    slow chunk cannot serialize a large sweep.  A pure function of its
    arguments: the same grid always dispatches the same chunks.
    """
    require(num_tasks >= 0, "num_tasks must be >= 0")
    require(workers >= 1, "workers must be >= 1")
    if num_tasks == 0:
        return 1
    return max(1, min(32, -(-num_tasks // (workers * 4))))


def _chunked(
    items: Sequence[Tuple[int, SweepTask]], size: int
) -> List[Tuple[Tuple[int, SweepTask], ...]]:
    require(size >= 1, "chunk size must be >= 1")
    return [
        tuple(items[start:start + size])
        for start in range(0, len(items), size)
    ]


def _reassemble(
    outcomes: Iterable[TaskOutcome], expected: int
) -> List[TaskOutcome]:
    """Restore submission order after unordered chunk completion.

    ``imap_unordered`` yields chunk results in *completion* order —
    whichever worker finishes first.  Every outcome carries the task
    index it was dispatched with, so sorting on that index restores
    the exact submission order.  This sort is the deterministic
    task-order guarantee the module docstring makes; it is pinned by
    ``tests/test_runtime_registry.py``.
    """
    ordered = sorted(outcomes, key=lambda outcome: outcome.index)
    require(
        len(ordered) == expected
        and all(o.index == i for i, o in enumerate(ordered)),
        "executor returned an inconsistent outcome set",
    )
    return ordered


def _run_pool(
    tasks: Sequence[SweepTask],
    workers: int,
    cache: bool,
    cache_maxsize: Optional[int],
    timeout: Optional[float],
    trace: bool,
    chunksize: Optional[int],
    registry_maxsize: Optional[int],
) -> Tuple[Optional[List[TaskOutcome]], ExecutorStats]:
    """The parallel path; ``(None, ...)`` means "fall back to serial".

    ``chunksize > 0`` (or ``None`` → :func:`auto_chunksize`) dispatches
    registry-backed chunks; ``chunksize == 0`` reproduces the legacy
    per-task dispatch — full instance pickled with every task, fresh
    decode and kernel compile per task — kept as the executor-bench
    comparator.
    """
    resolved = (
        auto_chunksize(len(tasks), workers) if chunksize is None
        else chunksize
    )
    registry = InstanceRegistry()
    if resolved > 0:
        indexed = [
            (
                index,
                replace(
                    task,
                    instance=InstanceRef(registry.register(task.instance)),
                ),
            )
            for index, task in enumerate(tasks)
        ]
        chunks = _chunked(indexed, resolved)
        ship_bytes = registry.payload_bytes() * workers
        pool_payloads: Optional[Dict[str, bytes]] = registry.payloads()
    else:
        # Legacy accounting: the registry is only used parent-side to
        # price what per-task shipping costs (one pickled copy of the
        # instance per task).
        keys = [registry.register(task.instance) for task in tasks]
        payload_map = registry.payloads()
        ship_bytes = sum(len(payload_map[key]) for key in keys)
        chunks = _chunked(list(enumerate(tasks)), 1)
        pool_payloads = None
    try:
        pool = _make_pool(
            workers, cache, cache_maxsize, pool_payloads, registry_maxsize
        )
    except Exception:  # no semaphores / sandboxed: degrade quietly
        return None, ExecutorStats()
    try:
        with pool:
            raw: List[_ChunkResult] = list(
                pool.imap_unordered(
                    _worker_run_chunk,
                    [(chunk, timeout, trace) for chunk in chunks],
                )
            )
    except Exception:
        return None, ExecutorStats()  # fall back to serial
    collected: List[TaskOutcome] = []
    registry_hits = 0
    kernels_compiled = 0
    for chunk_outcomes, hits_delta, compiled_delta in raw:
        collected.extend(chunk_outcomes)
        registry_hits += hits_delta
        kernels_compiled += compiled_delta
    outcomes = _reassemble(collected, len(tasks))
    return outcomes, ExecutorStats(
        ship_bytes=ship_bytes,
        registry_hits=registry_hits,
        kernels_compiled=kernels_compiled,
        chunks=len(chunks) if resolved > 0 else 0,
    )


def publish_sweep_telemetry(result: SweepResult) -> SweepResult:
    """Publish a finished sweep's movement into the live telemetry.

    One call per sweep, parent-side.  Counters the parent's in-process
    instrumentation already emitted live (serial cost evaluations,
    daemon-side registry hits, serial kernel compiles) are *not*
    re-published; only worker-side movement — which happened in other
    processes, invisible to this process's registry — is folded in.
    With no registry and no event log installed this is two global
    reads.  Returns ``result`` unchanged, for call-site chaining.
    """
    registry = active_metrics()
    if registry is not None:
        ok = sum(1 for outcome in result.outcomes if outcome.ok)
        registry.inc("runtime.tasks_completed", ok)
        registry.inc("runtime.tasks_failed", len(result.outcomes) - ok)
        registry.inc("runtime.task_retries", result.retries)
        registry.inc("runtime.worker_recoveries", result.recovered_workers)
        registry.inc("runtime.sweep_chunks", result.executor.chunks)
        registry.inc("runtime.ship_bytes", result.executor.ship_bytes)
        if result.mode == "parallel":
            totals = result.cache_totals()
            registry.inc("runtime.cost_evaluations", totals.misses)
            registry.inc("runtime.cache_hits", totals.hits)
            registry.inc(
                "runtime.registry_hits", result.executor.registry_hits
            )
            registry.inc(
                "perf.kernel_compiles", result.executor.kernels_compiled
            )
    if active_event_log() is not None:
        for outcome in result.outcomes:
            _emit_event(
                "task.finish",
                index=outcome.index,
                optimizer=outcome.optimizer,
                label=outcome.label,
                ok=outcome.ok,
                failure=outcome.failure,
                attempts=outcome.attempts,
                wall_ms=outcome.wall_time * 1000.0,
            )
    return result


def run_sweep(
    tasks: Sequence[SweepTask],
    workers: Optional[int] = None,
    cache: bool = True,
    cache_maxsize: Optional[int] = None,
    timeout: Optional[float] = None,
    trace: bool = False,
    chunksize: Optional[int] = None,
    registry_maxsize: Optional[int] = None,
) -> SweepResult:
    """Run every task and return outcomes in task order.

    Args:
        tasks: the grid, already flattened (order defines output order).
        workers: pool size; ``None`` picks a machine default, ``<= 1``
            runs serially.  Pool creation failure falls back to serial.
        cache: memoize cost evaluations.  When False a pass-through
            cache still *counts* evaluations, so cached and uncached
            sweeps are comparable on the same instrumentation.
        cache_maxsize: bound the cache (LRU) at this many entries;
            ``None`` is unbounded.
        timeout: default per-task wall-clock budget in seconds
            (``SweepTask.timeout`` overrides per task).
        trace: record a per-task span tree on every outcome; merge the
            lot with :meth:`SweepResult.trace_records`.
        chunksize: tasks per dispatched chunk.  ``None`` applies the
            deterministic :func:`auto_chunksize` heuristic; ``0``
            selects the legacy per-task dispatch (no registry, full
            instance shipped with every task).  Never affects results,
            only throughput — pinned by schedule-independence tests.
        registry_maxsize: bound on each worker's *live* decoded
            instances (the payload tier keeps everything, so eviction
            only costs a re-decode).  ``None`` is unbounded.
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers()
    require(
        chunksize is None or chunksize >= 0,
        "chunksize must be None (auto) or >= 0",
    )
    start = time.perf_counter()

    outcomes: Optional[List[TaskOutcome]] = None
    executor = ExecutorStats()
    mode = "serial"
    if workers > 1 and len(tasks) > 1:
        outcomes, executor = _run_pool(
            tasks, workers, cache, cache_maxsize, timeout, trace,
            chunksize, registry_maxsize,
        )
        if outcomes is not None:
            mode = "parallel"

    if outcomes is None:
        from repro.perf.kernels import compiles_total, pinned_kernels

        compiled_before = compiles_total()
        shared = (
            CostCache(maxsize=cache_maxsize) if cache else CostCache(maxsize=0)
        )
        # In-process tasks already share live instances; pin their
        # kernels for the duration of the sweep so compilation is
        # per-instance, matching what a registry worker would see.
        distinct = len({id(task.instance) for task in tasks})
        with pinned_kernels(distinct):
            outcomes = [
                _execute(index, task, shared, timeout, trace=trace)
                for index, task in enumerate(tasks)
            ]
        executor = ExecutorStats(
            kernels_compiled=compiles_total() - compiled_before
        )

    return publish_sweep_telemetry(SweepResult(
        outcomes=tuple(outcomes),
        mode=mode,
        workers=workers if mode == "parallel" else 1,
        cache_enabled=cache,
        wall_time=time.perf_counter() - start,
        executor=executor,
    ))


def grid_tasks(
    optimizers: Sequence[Union[str, Callable]],
    instances: Sequence[Tuple[str, object]],
    kwargs_for: Optional[Callable[[str, str], Dict]] = None,
    timeout: Optional[float] = None,
) -> List[SweepTask]:
    """Flatten an optimizer x instance grid into tasks.

    ``instances`` is a sequence of ``(label, instance)`` pairs;
    ``kwargs_for(optimizer_name, label)`` supplies per-cell kwargs.
    Task order is instance-major, so serial caching sees all optimizers
    of one instance back to back.
    """
    tasks: List[SweepTask] = []
    for label, instance in instances:
        for optimizer in optimizers:
            name = (
                optimizer if isinstance(optimizer, str)
                else getattr(optimizer, "__name__", repr(optimizer))
            )
            kwargs = kwargs_for(name, label) if kwargs_for else {}
            tasks.append(
                SweepTask(
                    optimizer=optimizer,
                    instance=instance,
                    label=label,
                    kwargs=tuple(sorted(kwargs.items())),
                    timeout=timeout,
                )
            )
    return tasks
