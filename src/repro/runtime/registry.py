"""Content-addressed instance registry (``repro.runtime.registry``).

Sweeping a gap-family grid runs the *same* handful of reduction
instances through many optimizers.  Before this module existed every
parallel task carried its own pickled copy of its instance, every
worker re-decoded it, and the PR-4 compiled kernels — pure functions
of the instance, memoized per *live object* — were rebuilt from
scratch each time because each decode produced a fresh object.

:class:`InstanceRegistry` removes all of that duplicated work with a
two-tier, content-addressed store:

* **payload tier** — ``key -> pickled instance bytes``, one entry per
  *distinct* instance (keyed by :func:`instance_key`, the same codec
  fingerprint the journal and service fingerprints build on).  The
  sweep runner ships this map to each worker exactly once, in the pool
  initializer; tasks then carry an :class:`InstanceRef` instead of a
  payload.  The tier is persistent for the registry's lifetime, so an
  evicted instance can always be *refetched* (re-decoded) from it.
* **live tier** — a bounded LRU of decoded instances.  A hit returns
  the *same object* every time, which is exactly what makes the
  kernel caches in :mod:`repro.perf.kernels` (``WeakValueDictionary``
  keyed by ``id``) persist across tasks within a worker.

The service daemon's keep-alive instance LRU is the same live tier
with externally supplied keys: :meth:`InstanceRegistry.canonical`
deduplicates already-decoded instances without touching the payload
tier, so a long-running daemon's memory stays bounded by ``max_live``.

Determinism: the registry only changes *which object* an optimizer
receives, never its content — two decodes of one payload are
structurally equal, and every optimizer is a pure function of instance
content.  The differential tests in ``tests/test_runtime_registry.py``
pin bit-identical outcomes (value, type, ``repr``) against the serial
runner.

Construction is confined to :mod:`repro.runtime` and
:mod:`repro.service` (lint rule RPR013): everything else goes through
the runner/service APIs, which own worker lifetime and eviction
policy.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.observability.metrics import inc as _metric_inc
from repro.runtime.costcache import fingerprint as _instance_fingerprint
from repro.utils.validation import require


def instance_key(instance: object) -> str:
    """The stable per-instance content token the registry is keyed by.

    The cost-cache fingerprint when the instance exposes a graph, its
    ``repr`` otherwise — SQO-CP instances carry no graph but have a
    complete, deterministic ``repr``.  This is the same token the
    journal's ``task_fingerprint`` builds on, so registry keys and
    journal fingerprints agree about instance identity.
    """
    if hasattr(instance, "graph"):
        return _instance_fingerprint(instance)
    return repr(instance)


def _lru_store(
    live: "OrderedDict[str, object]",
    max_live: Optional[int],
    key: str,
    instance: object,
) -> int:
    """LRU-insert into a live tier; returns how many entries were
    evicted.  Operates on the dict passed in — the registry calls this
    with its lock held, so the helper itself takes no lock.
    """
    if max_live == 0:
        return 0
    live[key] = instance
    live.move_to_end(key)
    evicted = 0
    if max_live is not None:
        while len(live) > max_live:
            live.popitem(last=False)
            evicted += 1
    return evicted


@dataclass(frozen=True)
class InstanceRef:
    """Picklable stand-in for an instance already shipped to workers.

    Tasks dispatched through the registry path carry one of these in
    their ``instance`` slot; the worker swaps it back for the decoded
    instance before execution (``runner._materialize``).
    """

    key: str


@dataclass(frozen=True)
class RegistryStats:
    """A snapshot of registry counters.

    ``hits``/``misses`` count live-tier lookups; ``decodes`` counts
    payload-tier unpickles (each one is an eviction *refetch* or a
    first touch); ``evictions`` counts live instances dropped by the
    LRU bound.  ``live``/``stored``/``payload_bytes`` describe current
    occupancy, not movement.
    """

    hits: int = 0
    misses: int = 0
    decodes: int = 0
    evictions: int = 0
    live: int = 0
    stored: int = 0
    payload_bytes: int = 0

    def delta(self, earlier: "RegistryStats") -> "RegistryStats":
        """Counter movement since an ``earlier`` snapshot."""
        return RegistryStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            decodes=self.decodes - earlier.decodes,
            evictions=self.evictions - earlier.evictions,
            live=self.live,
            stored=self.stored,
            payload_bytes=self.payload_bytes,
        )


class InstanceRegistry:
    """Two-tier content-addressed store of problem instances.

    ``max_live`` bounds the live tier: ``None`` is unbounded, ``k > 0``
    an LRU of ``k`` decoded instances, ``0`` pass-through (nothing is
    kept live — every :meth:`get` decodes and :meth:`canonical`
    returns its argument unchanged, matching the service daemon's
    cache-disabled mode).

    All methods are thread-safe; the daemon calls :meth:`canonical`
    from concurrent connection handlers.
    """

    __slots__ = (
        "_max_live", "_payloads", "_live", "_lock",
        "_hits", "_misses", "_decodes", "_evictions",
    )

    def __init__(self, max_live: Optional[int] = None) -> None:
        require(
            max_live is None or max_live >= 0,
            "max_live must be None (unbounded) or >= 0",
        )
        self._max_live = max_live
        self._payloads: Dict[str, bytes] = {}
        self._live: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._decodes = 0
        self._evictions = 0

    @property
    def max_live(self) -> Optional[int]:
        return self._max_live

    def __len__(self) -> int:
        with self._lock:
            return len(self._payloads)

    # -- payload tier --------------------------------------------------

    def register(self, instance: object) -> str:
        """Store ``instance``'s pickled payload; return its content key.

        Idempotent per distinct content: repeated instances (even
        distinct objects with equal content) share one payload entry.
        The parent side of a sweep registers every task's instance,
        then ships :meth:`payloads` to each worker once.
        """
        key = instance_key(instance)
        with self._lock:
            if key not in self._payloads:
                self._payloads[key] = pickle.dumps(instance)
            self._evictions += _lru_store(
                self._live, self._max_live, key, instance
            )
        return key

    def payloads(self) -> Dict[str, bytes]:
        """A snapshot of the payload tier (what the runner ships)."""
        with self._lock:
            return dict(self._payloads)

    def payload_bytes(self) -> int:
        """Total pickled bytes held — the per-worker shipping cost."""
        with self._lock:
            return sum(len(blob) for blob in self._payloads.values())

    @classmethod
    def from_payloads(
        cls,
        payloads: Mapping[str, bytes],
        max_live: Optional[int] = None,
    ) -> "InstanceRegistry":
        """Rebuild a registry worker-side from shipped payloads."""
        registry = cls(max_live=max_live)
        registry._payloads.update(payloads)
        return registry

    # -- live tier -----------------------------------------------------

    def get(self, key: str) -> object:
        """The decoded instance for ``key``; decodes on a live miss.

        An instance evicted from the live tier is transparently
        *refetched* — re-decoded from its stored payload — so eviction
        is purely a memory/speed trade, never a correctness event.
        Raises ``KeyError`` for a key that was never registered.
        """
        with self._lock:
            if key in self._live:
                self._hits += 1
                self._live.move_to_end(key)
                _metric_inc("runtime.registry_hits")
                return self._live[key]
            self._misses += 1
            _metric_inc("runtime.registry_misses")
            blob = self._payloads.get(key)
            if blob is None:
                raise KeyError(f"instance key not registered: {key!r}")
            instance = pickle.loads(blob)
            self._decodes += 1
            _metric_inc("runtime.registry_decodes")
            evicted = _lru_store(self._live, self._max_live, key, instance)
            self._evictions += evicted
            if evicted:
                _metric_inc("runtime.registry_evictions", evicted)
            return instance

    def canonical(self, key: str, instance: object) -> object:
        """Deduplicate an already-decoded ``instance`` under ``key``.

        The service-daemon path: the caller decoded the wire payload
        itself and supplies an arbitrary stable key (the daemon uses
        canonical request JSON).  A live hit returns the previously
        retained object — so repeated requests share cost-cache token
        memoization and compiled kernels — otherwise ``instance``
        itself is retained and returned.  The payload tier is not
        touched: the daemon re-decodes from the wire on a miss anyway,
        and an unbounded pickled-payload map would leak in a
        long-running process.
        """
        if self._max_live == 0:
            return instance
        with self._lock:
            if key in self._live:
                self._hits += 1
                self._live.move_to_end(key)
                _metric_inc("runtime.registry_hits")
                return self._live[key]
            self._misses += 1
            _metric_inc("runtime.registry_misses")
            evicted = _lru_store(self._live, self._max_live, key, instance)
            self._evictions += evicted
            if evicted:
                _metric_inc("runtime.registry_evictions", evicted)
            return instance

    # -- introspection -------------------------------------------------

    def stats(self) -> RegistryStats:
        with self._lock:
            return RegistryStats(
                hits=self._hits,
                misses=self._misses,
                decodes=self._decodes,
                evictions=self._evictions,
                live=len(self._live),
                stored=len(self._payloads),
                payload_bytes=sum(
                    len(blob) for blob in self._payloads.values()
                ),
            )
