"""Fault-tolerant, resumable sweep execution with deterministic chaos.

Long gap-family sweeps (hundreds of optimizer x instance tasks, some
with astronomically slow exact baselines) die for boring reasons: a
worker segfaults, the box reboots, a task hits a transient error.
This module makes such sweeps survivable three ways:

* **Retries** — each task gets :class:`RetryPolicy.attempts` tries
  with deterministic exponential backoff (no jitter: the schedule is
  a pure function of the policy, which the chaos tests pin down).
* **Worker-death recovery** — the parallel path runs on a
  ``ProcessPoolExecutor``; when a worker dies the resulting
  ``BrokenProcessPool`` is caught, the pool is respawned, and every
  in-flight task is re-queued with a ``worker-died`` attempt charged
  against its retry budget.
* **Journaling + resume** — with a journal path every completed task
  is durably recorded (:mod:`repro.runtime.journal`);
  :func:`resume_sweep` skips journaled tasks by fingerprint and merges
  their stored outcomes into the new :class:`SweepResult`.

Determinism contract: unlike :func:`~repro.runtime.runner.run_sweep`,
every attempt here runs against a **fresh** cost cache.  That forgoes
cross-task cache reuse, but it makes each outcome a pure function of
its task — independent of schedule, worker placement, or how many
times the sweep was interrupted — which is exactly what makes a
resumed sweep bit-identical (costs, ``explored``, cache counters) to
an uninterrupted one.

The chaos layer: a :class:`FaultPlan` schedules synthetic faults
(``timeout`` / ``error`` / ``worker-kill``) at chosen ``(task index,
attempt)`` coordinates, threaded through the same ``_execute`` path
real work takes.  Constructing a ``FaultPlan`` outside this module or
test code is a lint error (rule RPR010): production sweeps must never
run with chaos installed.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.runtime import journal as journal_mod
from repro.runtime.costcache import CostCache
from repro.runtime.runner import (
    SweepResult,
    SweepTask,
    SweepTimeout,
    TaskOutcome,
    WorkerDied,
    _execute,
    default_workers,
)
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require

PathLike = Union[str, Path]

#: Fault kinds a plan may inject (the fourth taxonomy label,
#: ``cancelled``, is produced by interrupting the sweep, not by a
#: synthetic fault).
INJECTABLE_KINDS = ("timeout", "error", "worker-kill")


class FaultInjected(RuntimeError):
    """The synthetic exception an ``error`` injection raises."""


@dataclass(frozen=True)
class FaultInjection:
    """One scheduled fault: ``kind`` fires at ``(index, attempt)``."""

    index: int
    attempt: int
    kind: str


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of synthetic faults.

    The plan is immutable, picklable (it rides to pool workers inside
    task payloads) and a pure lookup table: the same plan injects the
    same faults every run.  Lint rule RPR010 confines construction to
    this module and to test code.
    """

    faults: Tuple[FaultInjection, ...] = ()

    def __post_init__(self) -> None:
        for fault in self.faults:
            require(
                fault.kind in INJECTABLE_KINDS,
                f"unknown fault kind {fault.kind!r}; "
                f"injectable: {list(INJECTABLE_KINDS)}",
            )
            require(
                fault.index >= 0 and fault.attempt >= 0,
                "fault coordinates must be non-negative",
            )

    def fault_for(self, index: int, attempt: int) -> Optional[str]:
        """The fault kind scheduled at ``(index, attempt)``, if any."""
        for fault in self.faults:
            if fault.index == index and fault.attempt == attempt:
                return fault.kind
        return None

    @classmethod
    def seeded(
        cls,
        seed: RngLike,
        num_tasks: int,
        kinds: Sequence[str] = INJECTABLE_KINDS,
        faults_per_kind: int = 1,
        max_attempt: int = 0,
    ) -> "FaultPlan":
        """A reproducible random plan: same seed, same faults.

        Schedules ``faults_per_kind`` injections of every kind in
        ``kinds`` at task indices drawn from ``range(num_tasks)`` and
        attempts drawn from ``range(max_attempt + 1)``.
        """
        require(num_tasks > 0, "seeded plan needs at least one task")
        rng = make_rng(seed)
        injections = []
        for kind in kinds:
            for _ in range(faults_per_kind):
                injections.append(
                    FaultInjection(
                        index=rng.randrange(num_tasks),
                        attempt=rng.randrange(max_attempt + 1),
                        kind=kind,
                    )
                )
        ordered = sorted(
            injections, key=lambda f: (f.index, f.attempt, f.kind)
        )
        return cls(faults=tuple(ordered))


#: True inside a resilient pool worker (set by the pool initializer):
#: decides whether an injected worker-kill dies for real or raises
#: :class:`WorkerDied` for the serial loop to classify.
_IN_POOL_WORKER = False


def apply_fault(kind: str, index: int, attempt: int) -> None:
    """Fire one injected fault from inside ``_execute``'s try block.

    ``timeout`` raises :class:`SweepTimeout` (classified exactly like a
    real alarm); ``error`` raises :class:`FaultInjected`; a
    ``worker-kill`` exits a real pool worker with ``os._exit`` — the
    parent sees ``BrokenProcessPool`` — and raises :class:`WorkerDied`
    in serial mode so the recovery path is testable in-process.
    """
    if kind == "timeout":
        raise SweepTimeout()
    if kind == "error":
        raise FaultInjected(
            f"injected error at task {index}, attempt {attempt}"
        )
    if kind == "worker-kill":
        if _IN_POOL_WORKER:  # pragma: no cover - dies before reporting
            os._exit(1)
        raise WorkerDied(
            f"injected worker death at task {index}, attempt {attempt}"
        )
    raise ValueError(f"unknown fault kind {kind!r}")


@dataclass(frozen=True)
class RetryPolicy:
    """How often to retry a failed task and how long to wait.

    ``attempts`` is the *total* number of tries per task.  The wait
    before retry ``k`` (1-based) is ``backoff * factor ** (k - 1)``,
    capped at ``max_delay`` — deliberately jitter-free so the schedule
    is deterministic and testable.
    """

    attempts: int = 1
    backoff: float = 0.0
    factor: float = 2.0
    max_delay: float = 60.0

    def __post_init__(self) -> None:
        require(self.attempts >= 1, "RetryPolicy.attempts must be >= 1")
        require(self.backoff >= 0.0, "RetryPolicy.backoff must be >= 0")
        require(self.factor >= 1.0, "RetryPolicy.factor must be >= 1")
        require(self.max_delay >= 0.0, "RetryPolicy.max_delay must be >= 0")

    def delay(self, retry: int) -> float:
        """Seconds to wait before retry number ``retry`` (1-based)."""
        require(retry >= 1, "retry numbers are 1-based")
        if self.backoff <= 0.0:
            return 0.0
        return min(self.backoff * self.factor ** (retry - 1), self.max_delay)

    def delays(self) -> Tuple[float, ...]:
        """The full backoff schedule for a task that fails every try."""
        return tuple(self.delay(k) for k in range(1, self.attempts))


@dataclass
class _RunStats:
    """Mutable counters shared by the serial/parallel loops."""

    retries: int = 0
    recovered: int = 0


def _fresh_cache(cache: bool, cache_maxsize: Optional[int]) -> CostCache:
    return (
        CostCache(maxsize=cache_maxsize) if cache else CostCache(maxsize=0)
    )


def _failed_outcome(
    index: int,
    task: SweepTask,
    attempts: int,
    failure: str,
    error: str,
) -> TaskOutcome:
    return TaskOutcome(
        index=index,
        optimizer=task.optimizer_name,
        label=task.label,
        result=None,
        wall_time=0.0,
        timed_out=failure == "timeout",
        error=error,
        failure=failure,
        attempts=attempts,
    )


# -- resilient pool plumbing -------------------------------------------
_WORKER_SETTINGS: Tuple[bool, Optional[int]] = (True, None)


def _resilient_worker_init(
    cache_enabled: bool, cache_maxsize: Optional[int]
) -> None:
    global _IN_POOL_WORKER, _WORKER_SETTINGS
    _IN_POOL_WORKER = True
    _WORKER_SETTINGS = (cache_enabled, cache_maxsize)


def _resilient_worker_run(
    payload: Tuple[int, SweepTask, Optional[float], bool, int,
                   Optional[FaultPlan]]
) -> TaskOutcome:
    index, task, default_timeout, trace, attempt, fault_plan = payload
    cache_enabled, cache_maxsize = _WORKER_SETTINGS
    # A fresh cache per attempt: outcomes must not depend on which
    # worker ran the task or what ran there before (see module doc).
    cache = _fresh_cache(cache_enabled, cache_maxsize)
    return _execute(
        index, task, cache, default_timeout,
        trace=trace, attempt=attempt, fault_plan=fault_plan,
    )


def _make_executor(
    workers: int, cache_enabled: bool, cache_maxsize: Optional[int]
) -> ProcessPoolExecutor:
    """Create the pool (split out so tests can force creation failure)."""
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=_resilient_worker_init,
        initargs=(cache_enabled, cache_maxsize),
    )


def _run_serial(
    tasks: Sequence[SweepTask],
    pending: Sequence[int],
    fingerprints: Sequence[str],
    cache: bool,
    cache_maxsize: Optional[int],
    timeout: Optional[float],
    trace: bool,
    retry: RetryPolicy,
    fault_plan: Optional[FaultPlan],
    writer: Optional[journal_mod.JournalWriter],
    sleep: Callable[[float], None],
    stats: _RunStats,
) -> Dict[int, TaskOutcome]:
    outcomes: Dict[int, TaskOutcome] = {}
    remaining: Deque[int] = deque(pending)
    current: Optional[int] = None
    try:
        while remaining:
            current = remaining.popleft()
            task = tasks[current]
            outcome: Optional[TaskOutcome] = None
            for attempt in range(retry.attempts):
                outcome = _execute(
                    current, task,
                    _fresh_cache(cache, cache_maxsize), timeout,
                    trace=trace, attempt=attempt, fault_plan=fault_plan,
                )
                if outcome.ok or attempt + 1 >= retry.attempts:
                    break
                stats.retries += 1
                delay = retry.delay(attempt + 1)
                if delay > 0.0:
                    sleep(delay)
            assert outcome is not None  # attempts >= 1
            outcomes[current] = outcome
            if writer is not None:
                writer.append(fingerprints[current], outcome)
            current = None
    except KeyboardInterrupt:
        # The interrupted task and everything behind it become
        # ``cancelled`` outcomes.  They are NOT journaled, so a resume
        # re-runs exactly these tasks.
        if current is not None:
            outcomes[current] = _failed_outcome(
                current, tasks[current], 1,
                "cancelled", "cancelled by interrupt",
            )
        for index in remaining:
            outcomes[index] = _failed_outcome(
                index, tasks[index], 0,
                "cancelled", "cancelled before execution",
            )
    return outcomes


def _run_parallel(
    tasks: Sequence[SweepTask],
    pending: Sequence[int],
    fingerprints: Sequence[str],
    workers: int,
    cache: bool,
    cache_maxsize: Optional[int],
    timeout: Optional[float],
    trace: bool,
    retry: RetryPolicy,
    fault_plan: Optional[FaultPlan],
    writer: Optional[journal_mod.JournalWriter],
    sleep: Callable[[float], None],
    stats: _RunStats,
) -> Optional[Dict[int, TaskOutcome]]:
    """Pool-backed loop; returns None when no pool can be created."""
    try:
        executor = _make_executor(workers, cache, cache_maxsize)
    except Exception:  # no semaphores / sandboxed: degrade quietly
        return None

    outcomes: Dict[int, TaskOutcome] = {}
    attempt_of: Dict[int, int] = {index: 0 for index in pending}
    queue: Deque[int] = deque(pending)
    futures: Dict["Future[TaskOutcome]", int] = {}

    def finalize(index: int, outcome: TaskOutcome) -> None:
        outcomes[index] = outcome
        if writer is not None:
            writer.append(fingerprints[index], outcome)

    def handle_failure(index: int, outcome: TaskOutcome) -> None:
        if attempt_of[index] + 1 < retry.attempts:
            stats.retries += 1
            delay = retry.delay(attempt_of[index] + 1)
            if delay > 0.0:
                sleep(delay)
            attempt_of[index] += 1
            queue.append(index)
        else:
            finalize(index, outcome)

    try:
        while queue or futures:
            try:
                while queue:
                    index = queue.popleft()
                    payload = (
                        index, tasks[index], timeout, trace,
                        attempt_of[index], fault_plan,
                    )
                    try:
                        future = executor.submit(
                            _resilient_worker_run, payload
                        )
                    except BrokenExecutor:
                        queue.appendleft(index)  # recover below, unsubmitted
                        raise
                    futures[future] = index
                done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenExecutor:
                        futures[future] = index  # recover below, in-flight
                        raise
                    except Exception as exc:  # noqa: BLE001
                        outcome = _failed_outcome(
                            index, tasks[index], attempt_of[index] + 1,
                            "error", f"{type(exc).__name__}: {exc}",
                        )
                    if outcome.ok:
                        finalize(index, outcome)
                    else:
                        handle_failure(index, outcome)
            except BrokenExecutor:
                # A worker died and took the pool with it.  Respawn,
                # charge every in-flight task a worker-died attempt,
                # and re-queue the ones with retry budget left.
                stats.recovered += 1
                inflight = sorted(futures.values())
                futures.clear()
                executor.shutdown(wait=False, cancel_futures=True)
                try:
                    executor = _make_executor(workers, cache, cache_maxsize)
                except Exception:
                    # Can't respawn: everything unfinished is lost.
                    for index in inflight + sorted(queue):
                        finalize(index, _failed_outcome(
                            index, tasks[index], attempt_of[index] + 1,
                            "worker-died",
                            "worker process died; pool respawn failed",
                        ))
                    queue.clear()
                    return outcomes
                for index in inflight:
                    handle_failure(index, _failed_outcome(
                        index, tasks[index], attempt_of[index] + 1,
                        "worker-died", "worker process died mid-task",
                    ))
    except KeyboardInterrupt:
        executor.shutdown(wait=False, cancel_futures=True)
        for index in list(futures.values()) + list(queue):
            outcomes[index] = _failed_outcome(
                index, tasks[index], attempt_of[index],
                "cancelled", "cancelled by interrupt",
            )
        return outcomes
    executor.shutdown()
    return outcomes


def run_resilient_sweep(
    tasks: Sequence[SweepTask],
    workers: Optional[int] = None,
    cache: bool = True,
    cache_maxsize: Optional[int] = None,
    timeout: Optional[float] = None,
    trace: bool = False,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    journal: Optional[PathLike] = None,
    completed: Optional[Dict[int, TaskOutcome]] = None,
    resumed: int = 0,
    sleep: Callable[[float], None] = time.sleep,
) -> SweepResult:
    """Run ``tasks`` with retries, journaling and optional chaos.

    Semantics match :func:`~repro.runtime.runner.run_sweep` (same
    outcome order, same serial fallback) except that every attempt
    runs against a fresh cost cache — see the module docstring for why
    that is the price of bit-identical resumability.

    Args:
        retry: attempts/backoff schedule; default is one attempt, no
            backoff.
        fault_plan: deterministic chaos schedule (tests only).
        journal: path to append fsynced per-task records to.
        completed: outcomes (by task index) already recovered from a
            journal — these tasks are skipped.  Use
            :func:`resume_sweep` rather than passing this directly.
        resumed: how many of ``completed`` came from a journal; lands
            in :attr:`SweepResult.resumed`.
        sleep: backoff clock, injectable so tests assert the schedule
            without waiting it out.
    """
    tasks = list(tasks)
    retry = retry or RetryPolicy()
    if workers is None:
        workers = default_workers()
    start = time.perf_counter()

    fingerprints = [
        journal_mod.task_fingerprint(index, task)
        for index, task in enumerate(tasks)
    ]
    completed = dict(completed or {})
    pending = [index for index in range(len(tasks)) if index not in completed]

    writer = (
        journal_mod.JournalWriter(
            journal,
            meta={"tasks": len(tasks), "resumed": resumed},
        )
        if journal is not None else None
    )

    outcomes: Dict[int, TaskOutcome] = dict(completed)
    stats = _RunStats()
    mode = "serial"
    try:
        fresh: Optional[Dict[int, TaskOutcome]] = None
        if workers > 1 and len(pending) > 1:
            fresh = _run_parallel(
                tasks, pending, fingerprints, workers, cache,
                cache_maxsize, timeout, trace, retry, fault_plan,
                writer, sleep, stats,
            )
            if fresh is not None:
                mode = "parallel"
        if fresh is None:
            fresh = _run_serial(
                tasks, pending, fingerprints, cache, cache_maxsize,
                timeout, trace, retry, fault_plan, writer, sleep, stats,
            )
        outcomes.update(fresh)
    finally:
        if writer is not None:
            writer.close()

    ordered = tuple(outcomes[index] for index in range(len(tasks)))
    return SweepResult(
        outcomes=ordered,
        mode=mode,
        workers=workers if mode == "parallel" else 1,
        cache_enabled=cache,
        wall_time=time.perf_counter() - start,
        retries=stats.retries,
        recovered_workers=stats.recovered,
        resumed=resumed,
    )


def resume_sweep(
    journal_path: PathLike,
    tasks: Sequence[SweepTask],
    workers: Optional[int] = None,
    cache: bool = True,
    cache_maxsize: Optional[int] = None,
    timeout: Optional[float] = None,
    trace: bool = False,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> SweepResult:
    """Resume a journaled sweep, merging stored and fresh outcomes.

    Tasks whose fingerprint has a completed record in the journal are
    restored verbatim (bit-identical result, ``explored``, cache
    counters); the rest run through :func:`run_resilient_sweep`, which
    appends their records to the same journal.  A missing or empty
    journal file resumes nothing and behaves like a fresh journaled
    sweep.
    """
    tasks = list(tasks)
    path = Path(journal_path)
    completed: Dict[int, TaskOutcome] = {}
    if path.exists() and path.stat().st_size > 0:
        _, records = journal_mod.read_journal(path)
        by_fingerprint = journal_mod.completed_by_fingerprint(records)
        for index, task in enumerate(tasks):
            record = by_fingerprint.get(
                journal_mod.task_fingerprint(index, task)
            )
            if record is not None:
                completed[index] = journal_mod.record_to_outcome(record)
    return run_resilient_sweep(
        tasks,
        workers=workers,
        cache=cache,
        cache_maxsize=cache_maxsize,
        timeout=timeout,
        trace=trace,
        retry=retry,
        fault_plan=fault_plan,
        journal=path,
        completed=completed,
        resumed=len(completed),
        sleep=sleep,
    )
