"""Fault-tolerant, resumable sweep execution with deterministic chaos.

Long gap-family sweeps (hundreds of optimizer x instance tasks, some
with astronomically slow exact baselines) die for boring reasons: a
worker segfaults, the box reboots, a task hits a transient error.
This module makes such sweeps survivable three ways:

* **Retries** — each task gets :class:`RetryPolicy.attempts` tries
  with deterministic exponential backoff (no jitter: the schedule is
  a pure function of the policy, which the chaos tests pin down).
* **Worker-death recovery** — the parallel path runs on a
  ``ProcessPoolExecutor``; when a worker dies the resulting
  ``BrokenProcessPool`` is caught, the pool is respawned, and every
  in-flight task is re-queued with a ``worker-died`` attempt charged
  against its retry budget.
* **Journaling + resume** — with a journal path every completed task
  is durably recorded (:mod:`repro.runtime.journal`);
  :func:`resume_sweep` skips journaled tasks by fingerprint and merges
  their stored outcomes into the new :class:`SweepResult`.

Determinism contract: unlike :func:`~repro.runtime.runner.run_sweep`,
every attempt here runs against a **fresh** cost cache.  That forgoes
cross-task cache reuse, but it makes each outcome a pure function of
its task — independent of schedule, worker placement, or how many
times the sweep was interrupted — which is exactly what makes a
resumed sweep bit-identical (costs, ``explored``, cache counters) to
an uninterrupted one.

The chaos layer: a :class:`FaultPlan` schedules synthetic faults
(``timeout`` / ``error`` / ``worker-kill``) at chosen ``(task index,
attempt)`` coordinates, threaded through the same ``_execute`` path
real work takes.  Constructing a ``FaultPlan`` outside this module or
test code is a lint error (rule RPR010): production sweeps must never
run with chaos installed.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.observability.events import active_event_log
from repro.observability.events import emit as _emit_event
from repro.runtime import journal as journal_mod
from repro.runtime.costcache import CostCache
from repro.runtime.registry import InstanceRef, InstanceRegistry
from repro.runtime.runner import (
    ExecutorStats,
    SweepResult,
    SweepTask,
    SweepTimeout,
    TaskOutcome,
    WorkerDied,
    _execute,
    auto_chunksize,
    default_workers,
    publish_sweep_telemetry,
)
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require

PathLike = Union[str, Path]

#: Fault kinds a plan may inject (the fourth taxonomy label,
#: ``cancelled``, is produced by interrupting the sweep, not by a
#: synthetic fault).
INJECTABLE_KINDS = ("timeout", "error", "worker-kill")


class FaultInjected(RuntimeError):
    """The synthetic exception an ``error`` injection raises."""


@dataclass(frozen=True)
class FaultInjection:
    """One scheduled fault: ``kind`` fires at ``(index, attempt)``."""

    index: int
    attempt: int
    kind: str


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of synthetic faults.

    The plan is immutable, picklable (it rides to pool workers inside
    task payloads) and a pure lookup table: the same plan injects the
    same faults every run.  Lint rule RPR010 confines construction to
    this module and to test code.
    """

    faults: Tuple[FaultInjection, ...] = ()

    def __post_init__(self) -> None:
        for fault in self.faults:
            require(
                fault.kind in INJECTABLE_KINDS,
                f"unknown fault kind {fault.kind!r}; "
                f"injectable: {list(INJECTABLE_KINDS)}",
            )
            require(
                fault.index >= 0 and fault.attempt >= 0,
                "fault coordinates must be non-negative",
            )

    def fault_for(self, index: int, attempt: int) -> Optional[str]:
        """The fault kind scheduled at ``(index, attempt)``, if any."""
        for fault in self.faults:
            if fault.index == index and fault.attempt == attempt:
                return fault.kind
        return None

    @classmethod
    def seeded(
        cls,
        seed: RngLike,
        num_tasks: int,
        kinds: Sequence[str] = INJECTABLE_KINDS,
        faults_per_kind: int = 1,
        max_attempt: int = 0,
    ) -> "FaultPlan":
        """A reproducible random plan: same seed, same faults.

        Schedules ``faults_per_kind`` injections of every kind in
        ``kinds`` at task indices drawn from ``range(num_tasks)`` and
        attempts drawn from ``range(max_attempt + 1)``.
        """
        require(num_tasks > 0, "seeded plan needs at least one task")
        rng = make_rng(seed)
        injections = []
        for kind in kinds:
            for _ in range(faults_per_kind):
                injections.append(
                    FaultInjection(
                        index=rng.randrange(num_tasks),
                        attempt=rng.randrange(max_attempt + 1),
                        kind=kind,
                    )
                )
        ordered = sorted(
            injections, key=lambda f: (f.index, f.attempt, f.kind)
        )
        return cls(faults=tuple(ordered))


#: True inside a resilient pool worker (set by the pool initializer):
#: decides whether an injected worker-kill dies for real or raises
#: :class:`WorkerDied` for the serial loop to classify.
_IN_POOL_WORKER = False


def apply_fault(kind: str, index: int, attempt: int) -> None:
    """Fire one injected fault from inside ``_execute``'s try block.

    ``timeout`` raises :class:`SweepTimeout` (classified exactly like a
    real alarm); ``error`` raises :class:`FaultInjected`; a
    ``worker-kill`` exits a real pool worker with ``os._exit`` — the
    parent sees ``BrokenProcessPool`` — and raises :class:`WorkerDied`
    in serial mode so the recovery path is testable in-process.
    """
    if kind == "timeout":
        raise SweepTimeout()
    if kind == "error":
        raise FaultInjected(
            f"injected error at task {index}, attempt {attempt}"
        )
    if kind == "worker-kill":
        if _IN_POOL_WORKER:  # pragma: no cover - dies before reporting
            os._exit(1)
        raise WorkerDied(
            f"injected worker death at task {index}, attempt {attempt}"
        )
    raise ValueError(f"unknown fault kind {kind!r}")


@dataclass(frozen=True)
class RetryPolicy:
    """How often to retry a failed task and how long to wait.

    ``attempts`` is the *total* number of tries per task.  The wait
    before retry ``k`` (1-based) is ``backoff * factor ** (k - 1)``,
    capped at ``max_delay`` — deliberately jitter-free so the schedule
    is deterministic and testable.
    """

    attempts: int = 1
    backoff: float = 0.0
    factor: float = 2.0
    max_delay: float = 60.0

    def __post_init__(self) -> None:
        require(self.attempts >= 1, "RetryPolicy.attempts must be >= 1")
        require(self.backoff >= 0.0, "RetryPolicy.backoff must be >= 0")
        require(self.factor >= 1.0, "RetryPolicy.factor must be >= 1")
        require(self.max_delay >= 0.0, "RetryPolicy.max_delay must be >= 0")

    def delay(self, retry: int) -> float:
        """Seconds to wait before retry number ``retry`` (1-based)."""
        require(retry >= 1, "retry numbers are 1-based")
        if self.backoff <= 0.0:
            return 0.0
        return min(self.backoff * self.factor ** (retry - 1), self.max_delay)

    def delays(self) -> Tuple[float, ...]:
        """The full backoff schedule for a task that fails every try."""
        return tuple(self.delay(k) for k in range(1, self.attempts))


@dataclass
class _RunStats:
    """Mutable counters shared by the serial/parallel loops."""

    retries: int = 0
    recovered: int = 0
    ship_bytes: int = 0
    registry_hits: int = 0
    kernels_compiled: int = 0
    chunks: int = 0

    def executor(self) -> ExecutorStats:
        return ExecutorStats(
            ship_bytes=self.ship_bytes,
            registry_hits=self.registry_hits,
            kernels_compiled=self.kernels_compiled,
            chunks=self.chunks,
        )


def _fresh_cache(cache: bool, cache_maxsize: Optional[int]) -> CostCache:
    return (
        CostCache(maxsize=cache_maxsize) if cache else CostCache(maxsize=0)
    )


def _failed_outcome(
    index: int,
    task: SweepTask,
    attempts: int,
    failure: str,
    error: str,
) -> TaskOutcome:
    return TaskOutcome(
        index=index,
        optimizer=task.optimizer_name,
        label=task.label,
        result=None,
        wall_time=0.0,
        timed_out=failure == "timeout",
        error=error,
        failure=failure,
        attempts=attempts,
    )


# -- resilient pool plumbing -------------------------------------------
_WORKER_SETTINGS: Tuple[bool, Optional[int]] = (True, None)
#: Worker-side registry rebuilt from the shipped payload map; None in
#: legacy per-task mode (``chunksize=0``).
_WORKER_REGISTRY: Optional[InstanceRegistry] = None

#: One dispatched chunk: ``(index, task, attempt)`` triples plus the
#: sweep-wide timeout/trace/chaos settings.  In registry mode each
#: task's ``instance`` slot holds an :class:`InstanceRef`.
_ChunkPayload = Tuple[
    Tuple[Tuple[int, SweepTask, int], ...],
    Optional[float], bool, Optional[FaultPlan],
]
_ChunkResult = Tuple[Tuple[TaskOutcome, ...], int, int]


def _resilient_worker_init(
    cache_enabled: bool,
    cache_maxsize: Optional[int],
    payloads: Optional[Dict[str, bytes]] = None,
    registry_max_live: Optional[int] = None,
) -> None:
    global _IN_POOL_WORKER, _WORKER_SETTINGS, _WORKER_REGISTRY
    _IN_POOL_WORKER = True
    _WORKER_SETTINGS = (cache_enabled, cache_maxsize)
    _WORKER_REGISTRY = (
        InstanceRegistry.from_payloads(payloads, max_live=registry_max_live)
        if payloads is not None else None
    )
    if payloads is not None:
        # Worker-persistent kernels, bounded by the registry live tier
        # (see runner._worker_init for the rationale).
        from repro.perf.kernels import pin_kernels

        pin_kernels(
            registry_max_live if registry_max_live is not None
            else len(payloads)
        )


def _materialize(task: SweepTask) -> SweepTask:
    """Swap a shipped :class:`InstanceRef` back for its live instance."""
    if not isinstance(task.instance, InstanceRef):
        return task
    registry = _WORKER_REGISTRY
    require(
        registry is not None,
        "task references the instance registry but this worker has none",
    )
    assert registry is not None  # for the type checker; require() raised
    return replace(task, instance=registry.get(task.instance.key))


def _resilient_worker_run_chunk(payload: _ChunkPayload) -> _ChunkResult:
    """Run one chunk of tasks, each attempt against a fresh cache.

    Decoded instances and compiled kernels persist across the chunk
    (and, via the worker registry, across chunks) — they are pure
    functions of instance content.  The cost *cache* stays
    per-attempt: outcomes must not depend on which worker ran the task
    or what ran there before (see module doc).
    """
    from repro.perf.kernels import compiles_total

    entries, default_timeout, trace, fault_plan = payload
    cache_enabled, cache_maxsize = _WORKER_SETTINGS
    registry = _WORKER_REGISTRY
    hits_before = registry.stats().hits if registry is not None else 0
    compiled_before = compiles_total()
    outcomes = tuple(
        _execute(
            index, _materialize(task),
            _fresh_cache(cache_enabled, cache_maxsize), default_timeout,
            trace=trace, attempt=attempt, fault_plan=fault_plan,
        )
        for index, task, attempt in entries
    )
    hits_delta = (
        registry.stats().hits - hits_before if registry is not None else 0
    )
    return outcomes, hits_delta, compiles_total() - compiled_before


def _make_executor(
    workers: int,
    cache_enabled: bool,
    cache_maxsize: Optional[int],
    payloads: Optional[Dict[str, bytes]] = None,
    registry_max_live: Optional[int] = None,
) -> ProcessPoolExecutor:
    """Create the pool (split out so tests can force creation failure)."""
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=_resilient_worker_init,
        initargs=(cache_enabled, cache_maxsize, payloads, registry_max_live),
    )


def _run_serial(
    tasks: Sequence[SweepTask],
    pending: Sequence[int],
    fingerprints: Sequence[str],
    cache: bool,
    cache_maxsize: Optional[int],
    timeout: Optional[float],
    trace: bool,
    retry: RetryPolicy,
    fault_plan: Optional[FaultPlan],
    writer: Optional[journal_mod.JournalWriter],
    sleep: Callable[[float], None],
    stats: _RunStats,
) -> Dict[int, TaskOutcome]:
    outcomes: Dict[int, TaskOutcome] = {}
    remaining: Deque[int] = deque(pending)
    current: Optional[int] = None
    try:
        while remaining:
            current = remaining.popleft()
            task = tasks[current]
            outcome: Optional[TaskOutcome] = None
            for attempt in range(retry.attempts):
                outcome = _execute(
                    current, task,
                    _fresh_cache(cache, cache_maxsize), timeout,
                    trace=trace, attempt=attempt, fault_plan=fault_plan,
                )
                if outcome.ok or attempt + 1 >= retry.attempts:
                    break
                stats.retries += 1
                if active_event_log() is not None:
                    _emit_event(
                        "task.retry",
                        index=current,
                        attempt=attempt + 1,
                        failure=outcome.failure,
                    )
                delay = retry.delay(attempt + 1)
                if delay > 0.0:
                    sleep(delay)
            assert outcome is not None  # attempts >= 1
            outcomes[current] = outcome
            if writer is not None:
                writer.append(fingerprints[current], outcome)
            current = None
    except KeyboardInterrupt:
        # The interrupted task and everything behind it become
        # ``cancelled`` outcomes.  They are NOT journaled, so a resume
        # re-runs exactly these tasks.
        if current is not None:
            outcomes[current] = _failed_outcome(
                current, tasks[current], 1,
                "cancelled", "cancelled by interrupt",
            )
        for index in remaining:
            outcomes[index] = _failed_outcome(
                index, tasks[index], 0,
                "cancelled", "cancelled before execution",
            )
    return outcomes


def _run_parallel(
    tasks: Sequence[SweepTask],
    pending: Sequence[int],
    fingerprints: Sequence[str],
    workers: int,
    cache: bool,
    cache_maxsize: Optional[int],
    timeout: Optional[float],
    trace: bool,
    retry: RetryPolicy,
    fault_plan: Optional[FaultPlan],
    writer: Optional[journal_mod.JournalWriter],
    sleep: Callable[[float], None],
    stats: _RunStats,
    chunksize: Optional[int] = None,
    registry_maxsize: Optional[int] = None,
) -> Optional[Dict[int, TaskOutcome]]:
    """Pool-backed loop; returns None when no pool can be created.

    Dispatch is chunked (``chunksize``; ``None`` applies
    :func:`~repro.runtime.runner.auto_chunksize`, ``0`` the legacy
    per-task submission), but recovery stays at *task* granularity:
    retry accounting, journal records and resume fingerprints are all
    per task, and a chunk lost to a worker death re-queues each of its
    tasks individually with one ``worker-died`` attempt charged.
    """
    resolved = (
        auto_chunksize(len(pending), workers) if chunksize is None
        else chunksize
    )
    registry = InstanceRegistry()
    payload_map: Dict[int, str] = {
        index: registry.register(tasks[index].instance) for index in pending
    }
    blobs: Dict[str, bytes] = registry.payloads()
    if resolved > 0:
        ship_tasks: Dict[int, SweepTask] = {
            index: replace(
                tasks[index], instance=InstanceRef(payload_map[index])
            )
            for index in pending
        }
        pool_payloads: Optional[Dict[str, bytes]] = blobs
        ship_per_pool = registry.payload_bytes() * workers
        per_chunk = resolved
    else:
        ship_tasks = {index: tasks[index] for index in pending}
        ship_per_pool = 0
        per_chunk = 1
        pool_payloads = None

    def spawn() -> ProcessPoolExecutor:
        pool = _make_executor(
            workers, cache, cache_maxsize, pool_payloads, registry_maxsize
        )
        stats.ship_bytes += ship_per_pool
        return pool

    try:
        executor = spawn()
    except Exception:  # no semaphores / sandboxed: degrade quietly
        return None

    outcomes: Dict[int, TaskOutcome] = {}
    attempt_of: Dict[int, int] = {index: 0 for index in pending}
    queue: Deque[int] = deque(pending)
    futures: Dict["Future[_ChunkResult]", Tuple[int, ...]] = {}

    def finalize(index: int, outcome: TaskOutcome) -> None:
        outcomes[index] = outcome
        if writer is not None:
            writer.append(fingerprints[index], outcome)

    def handle_failure(index: int, outcome: TaskOutcome) -> None:
        if attempt_of[index] + 1 < retry.attempts:
            stats.retries += 1
            if active_event_log() is not None:
                _emit_event(
                    "task.retry",
                    index=index,
                    attempt=attempt_of[index] + 1,
                    failure=outcome.failure,
                )
            delay = retry.delay(attempt_of[index] + 1)
            if delay > 0.0:
                sleep(delay)
            attempt_of[index] += 1
            queue.append(index)
        else:
            finalize(index, outcome)

    try:
        while queue or futures:
            try:
                while queue:
                    entries = []
                    while queue and len(entries) < per_chunk:
                        index = queue.popleft()
                        entries.append(
                            (index, ship_tasks[index], attempt_of[index])
                        )
                    payload: _ChunkPayload = (
                        tuple(entries), timeout, trace, fault_plan,
                    )
                    try:
                        future = executor.submit(
                            _resilient_worker_run_chunk, payload
                        )
                    except BrokenExecutor:
                        for entry in reversed(entries):
                            queue.appendleft(entry[0])  # unsubmitted
                        raise
                    futures[future] = tuple(entry[0] for entry in entries)
                    if resolved > 0:
                        stats.chunks += 1
                    else:
                        # Legacy accounting: every submission ships its
                        # task's own pickled instance copy.
                        for entry in entries:
                            stats.ship_bytes += len(
                                blobs[payload_map[entry[0]]]
                            )
                done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    indices = futures.pop(future)
                    try:
                        chunk_outcomes, hits, compiled = future.result()
                    except BrokenExecutor:
                        futures[future] = indices  # recover below, in-flight
                        raise
                    except Exception as exc:  # noqa: BLE001
                        for index in indices:
                            handle_failure(index, _failed_outcome(
                                index, tasks[index], attempt_of[index] + 1,
                                "error", f"{type(exc).__name__}: {exc}",
                            ))
                        continue
                    stats.registry_hits += hits
                    stats.kernels_compiled += compiled
                    for outcome in chunk_outcomes:
                        if outcome.ok:
                            finalize(outcome.index, outcome)
                        else:
                            handle_failure(outcome.index, outcome)
            except BrokenExecutor:
                # A worker died and took the pool with it.  Respawn,
                # charge every in-flight task a worker-died attempt,
                # and re-queue the ones with retry budget left — task
                # by task, even when they were dispatched as a chunk.
                stats.recovered += 1
                inflight = sorted(
                    index
                    for indices in futures.values()
                    for index in indices
                )
                if active_event_log() is not None:
                    _emit_event(
                        "task.worker_death",
                        inflight=inflight,
                        recovery=stats.recovered,
                    )
                futures.clear()
                executor.shutdown(wait=False, cancel_futures=True)
                try:
                    executor = spawn()
                except Exception:
                    # Can't respawn: everything unfinished is lost.
                    for index in inflight + sorted(queue):
                        finalize(index, _failed_outcome(
                            index, tasks[index], attempt_of[index] + 1,
                            "worker-died",
                            "worker process died; pool respawn failed",
                        ))
                    queue.clear()
                    return outcomes
                for index in inflight:
                    handle_failure(index, _failed_outcome(
                        index, tasks[index], attempt_of[index] + 1,
                        "worker-died", "worker process died mid-task",
                    ))
    except KeyboardInterrupt:
        executor.shutdown(wait=False, cancel_futures=True)
        inflight = [
            index for indices in futures.values() for index in indices
        ]
        for index in inflight + list(queue):
            outcomes[index] = _failed_outcome(
                index, tasks[index], attempt_of[index],
                "cancelled", "cancelled by interrupt",
            )
        return outcomes
    executor.shutdown()
    return outcomes


def run_resilient_sweep(
    tasks: Sequence[SweepTask],
    workers: Optional[int] = None,
    cache: bool = True,
    cache_maxsize: Optional[int] = None,
    timeout: Optional[float] = None,
    trace: bool = False,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    journal: Optional[PathLike] = None,
    completed: Optional[Dict[int, TaskOutcome]] = None,
    resumed: int = 0,
    sleep: Callable[[float], None] = time.sleep,
    chunksize: Optional[int] = None,
    registry_maxsize: Optional[int] = None,
) -> SweepResult:
    """Run ``tasks`` with retries, journaling and optional chaos.

    Semantics match :func:`~repro.runtime.runner.run_sweep` (same
    outcome order, same serial fallback) except that every attempt
    runs against a fresh cost cache — see the module docstring for why
    that is the price of bit-identical resumability.

    Args:
        retry: attempts/backoff schedule; default is one attempt, no
            backoff.
        fault_plan: deterministic chaos schedule (tests only).
        journal: path to append fsynced per-task records to.
        completed: outcomes (by task index) already recovered from a
            journal — these tasks are skipped.  Use
            :func:`resume_sweep` rather than passing this directly.
        resumed: how many of ``completed`` came from a journal; lands
            in :attr:`SweepResult.resumed`.
        sleep: backoff clock, injectable so tests assert the schedule
            without waiting it out.
        chunksize: tasks per dispatched chunk in the parallel path
            (``None`` auto, ``0`` legacy per-task dispatch).  Purely a
            throughput knob: journal records, resume fingerprints and
            outcomes are identical for every setting.
        registry_maxsize: bound on each worker's live decoded
            instances; ``None`` is unbounded.
    """
    tasks = list(tasks)
    retry = retry or RetryPolicy()
    if workers is None:
        workers = default_workers()
    start = time.perf_counter()

    fingerprints = [
        journal_mod.task_fingerprint(index, task)
        for index, task in enumerate(tasks)
    ]
    completed = dict(completed or {})
    pending = [index for index in range(len(tasks)) if index not in completed]

    writer = (
        journal_mod.JournalWriter(
            journal,
            meta={"tasks": len(tasks), "resumed": resumed},
        )
        if journal is not None else None
    )

    outcomes: Dict[int, TaskOutcome] = dict(completed)
    stats = _RunStats()
    mode = "serial"
    try:
        fresh: Optional[Dict[int, TaskOutcome]] = None
        if workers > 1 and len(pending) > 1:
            fresh = _run_parallel(
                tasks, pending, fingerprints, workers, cache,
                cache_maxsize, timeout, trace, retry, fault_plan,
                writer, sleep, stats,
                chunksize=chunksize, registry_maxsize=registry_maxsize,
            )
            if fresh is not None:
                mode = "parallel"
        if fresh is None:
            from repro.perf.kernels import compiles_total, pinned_kernels

            compiled_before = compiles_total()
            # Same worker-persistence the pool gets: live instances are
            # shared across tasks, so pin their kernels for the sweep.
            distinct = len({id(task.instance) for task in tasks})
            with pinned_kernels(distinct):
                fresh = _run_serial(
                    tasks, pending, fingerprints, cache, cache_maxsize,
                    timeout, trace, retry, fault_plan, writer, sleep, stats,
                )
            stats.kernels_compiled += compiles_total() - compiled_before
        outcomes.update(fresh)
    finally:
        if writer is not None:
            writer.close()

    ordered = tuple(outcomes[index] for index in range(len(tasks)))
    return publish_sweep_telemetry(SweepResult(
        outcomes=ordered,
        mode=mode,
        workers=workers if mode == "parallel" else 1,
        cache_enabled=cache,
        wall_time=time.perf_counter() - start,
        retries=stats.retries,
        recovered_workers=stats.recovered,
        resumed=resumed,
        executor=stats.executor(),
    ))


def resume_sweep(
    journal_path: PathLike,
    tasks: Sequence[SweepTask],
    workers: Optional[int] = None,
    cache: bool = True,
    cache_maxsize: Optional[int] = None,
    timeout: Optional[float] = None,
    trace: bool = False,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    sleep: Callable[[float], None] = time.sleep,
    chunksize: Optional[int] = None,
    registry_maxsize: Optional[int] = None,
) -> SweepResult:
    """Resume a journaled sweep, merging stored and fresh outcomes.

    Tasks whose fingerprint has a completed record in the journal are
    restored verbatim (bit-identical result, ``explored``, cache
    counters); the rest run through :func:`run_resilient_sweep`, which
    appends their records to the same journal.  A missing or empty
    journal file resumes nothing and behaves like a fresh journaled
    sweep.
    """
    tasks = list(tasks)
    path = Path(journal_path)
    completed: Dict[int, TaskOutcome] = {}
    if path.exists() and path.stat().st_size > 0:
        _, records = journal_mod.read_journal(path)
        by_fingerprint = journal_mod.completed_by_fingerprint(records)
        for index, task in enumerate(tasks):
            record = by_fingerprint.get(
                journal_mod.task_fingerprint(index, task)
            )
            if record is not None:
                completed[index] = journal_mod.record_to_outcome(record)
    return run_resilient_sweep(
        tasks,
        workers=workers,
        cache=cache,
        cache_maxsize=cache_maxsize,
        timeout=timeout,
        trace=trace,
        retry=retry,
        fault_plan=fault_plan,
        journal=path,
        completed=completed,
        resumed=len(completed),
        sleep=sleep,
        chunksize=chunksize,
        registry_maxsize=registry_maxsize,
    )
