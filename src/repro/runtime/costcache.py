"""Cost-evaluation cache shared by the optimizers.

Every optimizer in this repository ultimately evaluates one of two
order-free quantities over and over:

* the total cost ``C(Z)`` of a full join sequence ``Z`` (metaheuristics
  revisit the same permutations across restarts, generations and
  annealing steps);
* the prefix size ``N(X)`` of a relation *set* ``X`` (the exact
  optimizers — subset DP, branch and bound, pruned exhaustive search —
  all walk the same subset lattice, each recomputing the same big-int
  products).

:class:`CostCache` memoizes both, keyed on ``(instance fingerprint,
kind, subplan key)``, where the subplan key is the sequence tuple for
full-plan costs and the relation bitmask for subset sizes.  The QO_H
search layer reuses the same store for pipeline-decomposition plans
keyed on the sequence.

A cache is installed for a dynamic extent with :func:`use_cache` (or
process-wide with :func:`install_cache`, which the parallel sweep
runner uses in its worker initializer).  When no cache is active the
optimizers run exactly as before — the only overhead is one global
read per optimizer call.

Three capacity modes:

* ``CostCache()`` — unbounded memoization;
* ``CostCache(maxsize=k)`` — bounded LRU: the least recently touched
  entry is evicted once ``k`` entries are held (``evictions`` counts);
* ``CostCache(maxsize=0)`` — pass-through: nothing is ever stored, so
  every lookup is a miss.  This mode exists so *uncached* baselines
  count their cost evaluations through the same instrumentation
  (``misses`` equals the number of evaluations performed either way).

Determinism: a cached value is returned exactly as it was computed by
the miss path, so with exact arithmetic (``int``/``Fraction``) cached
and uncached runs are bit-identical — a property test enforces this.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.observability.metrics import inc as _metric_inc
from repro.observability.tracer import count as _trace_count

#: The process-wide cache default (:func:`install_cache`); None means
#: "memoization off".  :func:`use_cache` scopes a cache to the current
#: *thread's* dynamic extent on top of this default, so concurrent
#: service worker threads each consult their own cache.
_INSTALLED: Optional["CostCache"] = None

#: Per-thread dynamic-extent override; holds an entry only while the
#: thread is inside a :func:`use_cache` block (an explicit ``None``
#: entry masks the process-wide default for that extent).
_TLS = threading.local()

_UNSET = object()


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of cache counters (all monotone except ``size``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    peak_size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counter movement since an ``earlier`` snapshot."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            size=self.size,
            peak_size=self.peak_size,
        )

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Aggregate counters from an independent cache (worker pools)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            size=self.size + other.size,
            peak_size=self.peak_size + other.peak_size,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "peak_size": self.peak_size,
            "hit_rate": self.hit_rate,
        }


def fingerprint(instance: object) -> str:
    """A stable content hash of a problem instance.

    Covers the graph, the sizes and the per-edge statistics through the
    instance's public API, so two structurally equal instances (even
    built independently) share cache entries, while any statistic
    change produces a fresh key space.
    """
    digest = hashlib.sha1()
    digest.update(type(instance).__name__.encode())
    graph = instance.graph
    n = graph.num_vertices
    digest.update(str(n).encode())
    for u, v in sorted(graph.edges):
        digest.update(f"e{u},{v}".encode())
        digest.update(repr(instance.selectivity(u, v)).encode())
    for relation in range(n):
        digest.update(repr(instance.size(relation)).encode())
    access_cost = getattr(instance, "access_cost", None)
    if access_cost is not None:
        for u, v in sorted(graph.edges):
            digest.update(repr(access_cost(u, v)).encode())
            digest.update(repr(access_cost(v, u)).encode())
    memory = getattr(instance, "memory", None)
    if memory is not None:
        digest.update(repr(memory).encode())
    return digest.hexdigest()


class CostCache:
    """Memoization of subplan costs with hit/miss/eviction counters."""

    __slots__ = (
        "_maxsize", "_entries", "_tokens",
        "hits", "misses", "evictions", "peak_size",
    )

    def __init__(self, maxsize: Optional[int] = None) -> None:
        if maxsize is not None and maxsize < 0:
            raise ValueError("maxsize must be None (unbounded) or >= 0")
        self._maxsize = maxsize
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        # id(instance) -> (weakref, fingerprint).  The weak reference
        # keeps the hash memo per live instance without pinning the
        # instance itself (a long-lived sweep cache must not leak every
        # instance it ever costed); the callback drops the slot when the
        # instance dies, so a recycled id can never alias a stale hash.
        self._tokens: Dict[int, Tuple["weakref.ref[object]", str]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.peak_size = 0

    @property
    def maxsize(self) -> Optional[int]:
        return self._maxsize

    @property
    def is_passthrough(self) -> bool:
        return self._maxsize == 0

    def __len__(self) -> int:
        return len(self._entries)

    def token(self, instance: object) -> str:
        """The instance's fingerprint, computed once per live instance.

        Non-weakrefable instances are fingerprinted on every call —
        memoizing them by id would either pin them forever or risk
        id-reuse collisions.
        """
        key = id(instance)
        tokens = self._tokens
        entry = tokens.get(key)
        if entry is not None and entry[0]() is instance:
            return entry[1]
        value = fingerprint(instance)
        try:
            ref = weakref.ref(
                instance,
                lambda _ref, _key=key, _tokens=tokens: _tokens.pop(_key, None),
            )
        except TypeError:
            return value
        tokens[key] = (ref, value)
        return value

    def get_or_compute(
        self, instance: object, kind: str, key: object,
        compute: Callable[[], object],
    ) -> object:
        """Return the memoized value for ``(instance, kind, key)``.

        ``compute`` runs on a miss; its result is stored (unless in
        pass-through mode) and returned unchanged.
        """
        full_key = (self.token(instance), kind, key)
        entries = self._entries
        if full_key in entries:
            self.hits += 1
            _trace_count("cache_hits")
            _metric_inc("runtime.cache_hits")
            entries.move_to_end(full_key)
            return entries[full_key]
        self.misses += 1
        # A miss IS a cost evaluation — counting here (and only here)
        # keeps per-span trace counters exactly equal to the sweep
        # metrics totals, whose ``cost_evaluations`` is the miss count,
        # and equal to the live ``runtime.cost_evaluations`` metric.
        _trace_count("cost_evaluations")
        _metric_inc("runtime.cost_evaluations")
        value = compute()
        if self._maxsize == 0:
            return value
        entries[full_key] = value
        if self._maxsize is not None and len(entries) > self._maxsize:
            entries.popitem(last=False)
            self.evictions += 1
        if len(entries) > self.peak_size:
            self.peak_size = len(entries)
        return value

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._entries),
            peak_size=self.peak_size,
        )

    def clear(self) -> None:
        self._entries.clear()
        self._tokens.clear()


def active_cache() -> Optional[CostCache]:
    """The cache the optimizers should consult, or None.

    The current thread's :func:`use_cache` extent wins; outside any
    extent the process-wide :func:`install_cache` default applies.
    """
    return _TLS.__dict__.get("cache", _INSTALLED)


def install_cache(cache: Optional[CostCache]) -> Optional[CostCache]:
    """Install ``cache`` as the process-wide default; returns the
    previous default.  Threads inside a :func:`use_cache` extent keep
    their scoped cache."""
    global _INSTALLED
    previous = _INSTALLED
    _INSTALLED = cache
    return previous


@contextmanager
def use_cache(cache: Optional[CostCache]) -> Iterator[Optional[CostCache]]:
    """Install ``cache`` for the dynamic extent of the ``with`` block.

    The installation is scoped to the current thread, so concurrent
    extents in different threads (the service worker pool) each see
    their own cache; ``use_cache(None)`` masks any process-wide
    default within the block.
    """
    previous = _TLS.__dict__.get("cache", _UNSET)
    _TLS.cache = cache
    try:
        yield cache
    finally:
        if previous is _UNSET:
            del _TLS.cache
        else:
            _TLS.cache = previous
