"""Instrumentation schema for sweep runs.

Turns a :class:`~repro.runtime.runner.SweepResult` into a plain-dict
payload (schema ``repro.sweep/1``), validates it, and writes it as JSON
— by convention next to the text tables under ``benchmarks/results/``.

Payload layout::

    {
      "schema": "repro.sweep/1",
      "grid": {...},                  # caller-supplied description
      "mode": "serial" | "parallel",
      "workers": int,
      "cache_enabled": bool,
      "wall_time_s": float,           # whole-sweep wall clock
      "tasks": [
        {"index": int, "optimizer": str, "label": str,
         "ok": bool, "timed_out": bool, "error": str | null,
         "failure": str | null,        # taxonomy label, see FAILURE_KINDS
         "attempts": int,              # tries consumed (0 = cancelled early)
         "wall_time_s": float, "explored": int,
         "cache": {"hits": int, "misses": int, "evictions": int,
                   "size": int, "peak_size": int, "hit_rate": float}},
        ...
      ],
      "totals": {
        "tasks": int, "ok": int, "timed_out": int, "errors": int,
        "wall_time_s": float,         # summed task wall clock
        "plans_explored": int,
        "cost_evaluations": int,      # cache misses = work performed
        "cache_hits": int, "cache_hit_rate": float,
        "cache_evictions": int,
        "peak_subproblems": int,      # peak memoized-entry count
        "retries": int,               # attempts beyond each task's first
        "recovered_workers": int,     # pools respawned after worker death
        "resumed_tasks": int,         # outcomes restored from a journal
        "ship_bytes": int,            # pickled instance bytes shipped
        "registry_hits": int,         # worker-side live-instance reuses
        "kernels_compiled": int,      # actual kernel constructions
        "chunks": int                 # chunk payloads dispatched
      }
    }

The resilience fields (``failure``/``attempts`` per task, the three
counters in ``totals``) and the executor fields (the last four totals,
from :class:`~repro.runtime.runner.ExecutorStats`) are validated when
present but not required — payloads written before those layers
existed still validate.  Executor fields describe scheduling, not
results: they are excluded from every bit-identity contract.

``validate_metrics`` is the schema check the tests run against every
emitted payload; it raises :class:`ValidationError` with the offending
path on any violation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from repro.utils.validation import ValidationError, require

if TYPE_CHECKING:  # circular at runtime: runner imports metrics
    from repro.runtime.runner import SweepResult

SCHEMA = "repro.sweep/1"

#: The failure taxonomy shared by the runner, the journal and this
#: schema: a failed task is exactly one of these.
FAILURE_KINDS = ("timeout", "error", "worker-died", "cancelled")

PathLike = Union[str, Path]


def sweep_metrics(
    result: "SweepResult", grid: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Build the schema payload for one sweep result."""
    tasks = []
    for outcome in result.outcomes:
        tasks.append(
            {
                "index": outcome.index,
                "optimizer": outcome.optimizer,
                "label": outcome.label,
                "ok": outcome.ok,
                "timed_out": outcome.timed_out,
                "error": outcome.error,
                "failure": outcome.failure,
                "attempts": outcome.attempts,
                "wall_time_s": outcome.wall_time,
                "explored": outcome.explored,
                "cache": outcome.cache.to_dict(),
            }
        )
    totals_cache = result.cache_totals()
    payload = {
        "schema": SCHEMA,
        "grid": dict(grid or {}),
        "mode": result.mode,
        "workers": result.workers,
        "cache_enabled": result.cache_enabled,
        "wall_time_s": result.wall_time,
        "tasks": tasks,
        "totals": {
            "tasks": len(result.outcomes),
            "ok": sum(1 for o in result.outcomes if o.ok),
            "timed_out": sum(1 for o in result.outcomes if o.timed_out),
            "errors": sum(
                1 for o in result.outcomes if o.error and not o.timed_out
            ),
            "wall_time_s": sum(o.wall_time for o in result.outcomes),
            "plans_explored": result.explored_total,
            "cost_evaluations": totals_cache.misses,
            "cache_hits": totals_cache.hits,
            "cache_hit_rate": totals_cache.hit_rate,
            "cache_evictions": totals_cache.evictions,
            "peak_subproblems": totals_cache.peak_size,
            "retries": result.retries,
            "recovered_workers": result.recovered_workers,
            "resumed_tasks": result.resumed,
            "ship_bytes": result.executor.ship_bytes,
            "registry_hits": result.executor.registry_hits,
            "kernels_compiled": result.executor.kernels_compiled,
            "chunks": result.executor.chunks,
        },
    }
    validate_metrics(payload)
    return payload


_TASK_FIELDS = {
    "index": int,
    "optimizer": str,
    "label": str,
    "ok": bool,
    "timed_out": bool,
    "wall_time_s": (int, float),
    "explored": int,
}

_CACHE_FIELDS = {
    "hits": int,
    "misses": int,
    "evictions": int,
    "size": int,
    "peak_size": int,
    "hit_rate": (int, float),
}

_TOTALS_FIELDS = {
    "tasks": int,
    "ok": int,
    "timed_out": int,
    "errors": int,
    "wall_time_s": (int, float),
    "plans_explored": int,
    "cost_evaluations": int,
    "cache_hits": int,
    "cache_hit_rate": (int, float),
    "cache_evictions": int,
    "peak_subproblems": int,
}


def _check_fields(payload: Dict[str, Any], fields: Dict, where: str) -> None:
    for name, kind in fields.items():
        require(name in payload, f"{where}: missing field {name!r}")
        value = payload[name]
        # bool is an int subclass; don't let True satisfy a numeric field.
        ok = isinstance(value, kind) and not (
            kind is not bool and isinstance(value, bool)
        )
        require(
            ok, f"{where}.{name}: expected {kind}, got {type(value).__name__}"
        )


def validate_metrics(payload: Dict[str, Any]) -> None:
    """Raise :class:`ValidationError` unless ``payload`` fits the schema."""
    require(isinstance(payload, dict), "metrics payload must be a dict")
    require(
        payload.get("schema") == SCHEMA,
        f"metrics schema must be {SCHEMA!r}, got {payload.get('schema')!r}",
    )
    for name in ("grid", "mode", "workers", "cache_enabled",
                 "wall_time_s", "tasks", "totals"):
        require(name in payload, f"metrics: missing field {name!r}")
    require(isinstance(payload["grid"], dict), "metrics.grid must be a dict")
    require(
        payload["mode"] in ("serial", "parallel"),
        f"metrics.mode must be serial|parallel, got {payload['mode']!r}",
    )
    require(isinstance(payload["tasks"], list), "metrics.tasks must be a list")
    for position, task in enumerate(payload["tasks"]):
        where = f"metrics.tasks[{position}]"
        require(isinstance(task, dict), f"{where} must be a dict")
        _check_fields(task, _TASK_FIELDS, where)
        require("error" in task, f"{where}: missing field 'error'")
        require(
            task["error"] is None or isinstance(task["error"], str),
            f"{where}.error must be null or a string",
        )
        if "failure" in task:
            failure = task["failure"]
            require(
                failure is None or failure in FAILURE_KINDS,
                f"{where}.failure must be null or one of "
                f"{list(FAILURE_KINDS)}, got {failure!r}",
            )
        if "attempts" in task:
            attempts = task["attempts"]
            require(
                isinstance(attempts, int)
                and not isinstance(attempts, bool)
                and attempts >= 0,
                f"{where}.attempts must be a non-negative int",
            )
        require("cache" in task, f"{where}: missing field 'cache'")
        _check_fields(task["cache"], _CACHE_FIELDS, f"{where}.cache")
    totals = payload["totals"]
    require(isinstance(totals, dict), "metrics.totals must be a dict")
    _check_fields(totals, _TOTALS_FIELDS, "metrics.totals")
    require(
        totals["tasks"] == len(payload["tasks"]),
        "metrics.totals.tasks must equal len(metrics.tasks)",
    )
    hit_rate = totals["cache_hit_rate"]
    require(
        0.0 <= hit_rate <= 1.0,
        f"metrics.totals.cache_hit_rate must lie in [0, 1], got {hit_rate}",
    )
    for name in ("retries", "recovered_workers", "resumed_tasks",
                 "ship_bytes", "registry_hits", "kernels_compiled",
                 "chunks"):
        if name in totals:
            value = totals[name]
            require(
                isinstance(value, int)
                and not isinstance(value, bool)
                and value >= 0,
                f"metrics.totals.{name} must be a non-negative int",
            )


def write_metrics(payload: Dict[str, Any], path: PathLike) -> Path:
    """Validate and write the payload as pretty JSON; returns the path."""
    validate_metrics(payload)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def load_metrics(path: PathLike) -> Dict[str, Any]:
    """Read and validate a previously written payload."""
    payload = json.loads(Path(path).read_text())
    validate_metrics(payload)
    return payload
