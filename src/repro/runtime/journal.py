"""Crash-safe task journal for resumable sweeps (``repro.journal/1``).

A journal is an append-only JSONL file: a header line identifying the
schema, then exactly one record per *completed* task.  Each record is
flushed and fsynced before the runner moves on, so after a hard kill
(SIGKILL, OOM, power loss) the journal holds every task that finished
and at most one torn trailing line — which :func:`read_journal`
detects and drops.

Records carry the full :class:`~repro.runtime.runner.TaskOutcome`,
including the optimizer result itself (pickled, base64-armored), so a
resumed sweep reconstructs outcomes *bit-identically* — costs stay
``int``/``Fraction``, ``explored`` and cache counters are exact.

Tasks are matched across processes by :func:`task_fingerprint`, a
content hash over the task's position, optimizer, label, kwargs and
instance statistics.  Any change to the task list produces different
fingerprints, so a journal can never silently satisfy a different
sweep.  Records whose ``failure`` is ``"cancelled"`` are *not*
treated as completed: a resume re-runs exactly the tasks an interrupt
cut short.

File layout::

    {"schema": "repro.journal/1", "meta": {...}}
    {"record": "task", "fingerprint": "...", "index": 0, ...}
    {"record": "task", "fingerprint": "...", "index": 1, ...}
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from types import TracebackType
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.runtime.costcache import CacheStats
from repro.runtime.metrics import FAILURE_KINDS
from repro.runtime.registry import instance_key
from repro.runtime.runner import SweepTask, TaskOutcome
from repro.utils.validation import ValidationError, require

SCHEMA = "repro.journal/1"

PathLike = Union[str, Path]


def instance_token(instance: object) -> str:
    """The stable per-instance content token the fingerprints build on.

    Delegates to :func:`repro.runtime.registry.instance_key`: journal
    fingerprints and registry content addresses agree about instance
    identity by construction, which is what keeps chunked/registry
    dispatch from perturbing resume fingerprints.
    """
    return instance_key(instance)


def task_fingerprint(index: int, task: SweepTask) -> str:
    """A stable content hash identifying one task slot of a sweep.

    Covers the slot index, the optimizer name, the label, the kwargs,
    the timeout and the instance statistics (via
    :func:`instance_token`).
    """
    digest = hashlib.sha1()
    digest.update(
        f"{index}|{task.optimizer_name}|{task.label}|"
        f"{task.timeout}|{task.kwargs!r}|".encode()
    )
    digest.update(instance_token(task.instance).encode())
    return digest.hexdigest()


def request_fingerprint(
    kind: str,
    instance: object,
    optimizer: str = "",
    label: str = "",
    params: object = (),
    extra: str = "",
) -> str:
    """A stable content hash identifying one service-layer request.

    The same instance/optimizer identity the journal's
    :func:`task_fingerprint` uses — :func:`instance_token` over the
    instance statistics plus the optimizer name and kwargs — minus the
    sweep-slot index, so the request dedup/result cache recognizes a
    repeat regardless of when or from which connection it arrives.
    ``extra`` folds in any request options that change the reply
    (runner settings for sweep specs).
    """
    digest = hashlib.sha1()
    digest.update(
        f"{kind}|{optimizer}|{label}|{params!r}|{extra}|".encode()
    )
    digest.update(instance_token(instance).encode())
    return digest.hexdigest()


def outcome_to_record(fingerprint: str, outcome: TaskOutcome) -> Dict[str, Any]:
    """Serialize one completed outcome as a journal record."""
    result_b64 = None
    if outcome.result is not None:
        result_b64 = base64.b64encode(pickle.dumps(outcome.result)).decode(
            "ascii"
        )
    return {
        "record": "task",
        "fingerprint": fingerprint,
        "index": outcome.index,
        "optimizer": outcome.optimizer,
        "label": outcome.label,
        "ok": outcome.ok,
        "timed_out": outcome.timed_out,
        "error": outcome.error,
        "failure": outcome.failure,
        "attempts": outcome.attempts,
        "wall_time_s": outcome.wall_time,
        "explored": outcome.explored,
        "cache": outcome.cache.to_dict(),
        "result_b64": result_b64,
        "trace": (
            [dict(span) for span in outcome.trace]
            if outcome.trace is not None else None
        ),
    }


def record_to_outcome(record: Dict[str, Any]) -> TaskOutcome:
    """Reconstruct the exact :class:`TaskOutcome` a record was made from."""
    validate_record(record)
    cache = record["cache"]
    result = None
    if record["result_b64"] is not None:
        result = pickle.loads(base64.b64decode(record["result_b64"]))
    trace: Optional[Tuple[dict, ...]] = None
    if record["trace"] is not None:
        trace = tuple(dict(span) for span in record["trace"])
    return TaskOutcome(
        index=record["index"],
        optimizer=record["optimizer"],
        label=record["label"],
        result=result,
        wall_time=record["wall_time_s"],
        timed_out=record["timed_out"],
        error=record["error"],
        failure=record["failure"],
        attempts=record["attempts"],
        cache=CacheStats(
            hits=cache["hits"],
            misses=cache["misses"],
            evictions=cache["evictions"],
            size=cache["size"],
            peak_size=cache["peak_size"],
        ),
        trace=trace,
    )


_RECORD_FIELDS: Dict[str, Union[type, Tuple[type, ...]]] = {
    "fingerprint": str,
    "index": int,
    "optimizer": str,
    "label": str,
    "ok": bool,
    "timed_out": bool,
    "attempts": int,
    "wall_time_s": (int, float),
    "explored": int,
}

_CACHE_FIELDS: Dict[str, Union[type, Tuple[type, ...]]] = {
    "hits": int,
    "misses": int,
    "evictions": int,
    "size": int,
    "peak_size": int,
    "hit_rate": (int, float),
}


def validate_record(record: Dict[str, Any]) -> None:
    """Raise :class:`ValidationError` unless ``record`` fits the schema."""
    require(isinstance(record, dict), "journal record must be a dict")
    require(
        record.get("record") == "task",
        f"journal record type must be 'task', got {record.get('record')!r}",
    )
    for name, kind in _RECORD_FIELDS.items():
        require(name in record, f"journal record: missing field {name!r}")
        value = record[name]
        ok = isinstance(value, kind) and not (
            kind is not bool and isinstance(value, bool)
        )
        require(
            ok,
            f"journal record.{name}: expected {kind}, "
            f"got {type(value).__name__}",
        )
    require("error" in record, "journal record: missing field 'error'")
    require(
        record["error"] is None or isinstance(record["error"], str),
        "journal record.error must be null or a string",
    )
    require("failure" in record, "journal record: missing field 'failure'")
    failure = record["failure"]
    require(
        failure is None or failure in FAILURE_KINDS,
        f"journal record.failure must be null or one of "
        f"{list(FAILURE_KINDS)}, got {failure!r}",
    )
    require(record["attempts"] >= 0, "journal record.attempts must be >= 0")
    require("cache" in record, "journal record: missing field 'cache'")
    cache = record["cache"]
    require(isinstance(cache, dict), "journal record.cache must be a dict")
    for name, kind in _CACHE_FIELDS.items():
        require(name in cache, f"journal record.cache: missing {name!r}")
        value = cache[name]
        require(
            isinstance(value, kind) and not isinstance(value, bool),
            f"journal record.cache.{name}: expected {kind}, "
            f"got {type(value).__name__}",
        )
    require(
        "result_b64" in record, "journal record: missing field 'result_b64'"
    )
    require(
        record["result_b64"] is None
        or isinstance(record["result_b64"], str),
        "journal record.result_b64 must be null or a base64 string",
    )
    require("trace" in record, "journal record: missing field 'trace'")
    require(
        record["trace"] is None or isinstance(record["trace"], list),
        "journal record.trace must be null or a list of span dicts",
    )


class JournalWriter:
    """Append-only, per-record-fsynced journal of completed tasks.

    Opening an empty or missing path writes the schema header first;
    opening an existing journal appends to it (the resume path).
    """

    def __init__(
        self, path: PathLike, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        fresh = (
            not self._path.exists() or self._path.stat().st_size == 0
        )
        self._handle = self._path.open("a", encoding="utf-8")
        if fresh:
            self._write({"schema": SCHEMA, "meta": dict(meta or {})})

    @property
    def path(self) -> Path:
        return self._path

    def _write(self, payload: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, fingerprint: str, outcome: TaskOutcome) -> None:
        """Durably record one completed task before the sweep moves on."""
        record = outcome_to_record(fingerprint, outcome)
        validate_record(record)
        self._write(record)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


def read_journal(
    path: PathLike,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a journal; returns ``(meta, records)``.

    The header line must carry the ``repro.journal/1`` schema and every
    record must validate.  A torn *final* line — the signature of a
    process killed mid-write — is silently dropped; garbage anywhere
    else raises :class:`ValidationError`.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    require(bool(lines), f"journal {path}: empty file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValidationError(f"journal {path}: unreadable header: {exc}")
    require(isinstance(header, dict), f"journal {path}: header must be a dict")
    require(
        header.get("schema") == SCHEMA,
        f"journal {path}: schema must be {SCHEMA!r}, "
        f"got {header.get('schema')!r}",
    )
    meta = header.get("meta", {})
    require(isinstance(meta, dict), f"journal {path}: meta must be a dict")
    records: List[Dict[str, Any]] = []
    last = len(lines) - 1
    for position, line in enumerate(lines[1:], start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if position == last:
                break  # torn tail from a crash mid-write: drop it
            raise ValidationError(
                f"journal {path}: corrupt record on line {position + 1}"
            )
        validate_record(record)
        records.append(record)
    return meta, records


def completed_by_fingerprint(
    records: Sequence[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Map fingerprint -> the latest *completed* record for that task.

    Cancelled records don't count as completed — a resume re-runs
    those tasks.  Later records win, so a journal appended to across
    several sessions resolves to the most recent state.
    """
    completed: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record["failure"] == "cancelled":
            completed.pop(record["fingerprint"], None)
            continue
        completed[record["fingerprint"]] = record
    return completed
