"""Runtime orchestration: parallel sweeps, cost caching, metrics.

Three layers:

* :mod:`repro.runtime.costcache` — the memoization layer the
  optimizers consult (``use_cache`` / ``CostCache``);
* :mod:`repro.runtime.runner` — the parallel sweep runner
  (``run_sweep`` / ``SweepTask`` / ``grid_tasks``);
* :mod:`repro.runtime.metrics` — the JSON instrumentation schema
  (``sweep_metrics`` / ``validate_metrics`` / ``write_metrics``);
* :mod:`repro.runtime.resilience` — fault-tolerant sweeps: retries,
  worker-death recovery, deterministic fault injection
  (``run_resilient_sweep`` / ``resume_sweep`` / ``RetryPolicy``);
* :mod:`repro.runtime.journal` — the crash-safe JSONL task journal
  behind resumability (``repro.journal/1``);
* :mod:`repro.runtime.registry` — the content-addressed instance
  store behind chunked dispatch and the service daemon's keep-alive
  LRU (``InstanceRegistry`` / ``instance_key``).

The cache symbols are imported eagerly; the other layers load lazily
on first attribute access because the cost model itself imports
:mod:`repro.runtime.costcache` (PEP 562 keeps that import acyclic).
"""

from repro.runtime.costcache import (
    CacheStats,
    CostCache,
    active_cache,
    fingerprint,
    install_cache,
    use_cache,
)

__all__ = [
    "CacheStats",
    "CostCache",
    "active_cache",
    "fingerprint",
    "install_cache",
    "use_cache",
    # lazily resolved:
    "OPTIMIZERS",
    "SweepTask",
    "TaskOutcome",
    "SweepResult",
    "run_sweep",
    "grid_tasks",
    "default_workers",
    "sweep_metrics",
    "validate_metrics",
    "write_metrics",
    "load_metrics",
    "RetryPolicy",
    "run_resilient_sweep",
    "resume_sweep",
    "read_journal",
    "task_fingerprint",
    "InstanceRegistry",
    "RegistryStats",
    "instance_key",
]

_RUNNER_NAMES = {
    "OPTIMIZERS", "SweepTask", "TaskOutcome", "SweepResult",
    "run_sweep", "grid_tasks", "default_workers", "SweepTimeout",
    "WorkerDied", "ExecutorStats", "auto_chunksize",
}
_METRICS_NAMES = {
    "sweep_metrics", "validate_metrics", "write_metrics", "load_metrics",
    "SCHEMA", "FAILURE_KINDS",
}
_RESILIENCE_NAMES = {
    "FaultInjection", "FaultPlan", "RetryPolicy",
    "run_resilient_sweep", "resume_sweep", "FaultInjected",
}
_JOURNAL_NAMES = {
    "JournalWriter", "read_journal", "task_fingerprint",
    "completed_by_fingerprint",
}
_REGISTRY_NAMES = {
    "InstanceRegistry", "InstanceRef", "RegistryStats", "instance_key",
}


def __getattr__(name: str) -> object:
    if name in _RUNNER_NAMES:
        from repro.runtime import runner

        return getattr(runner, name)
    if name in _METRICS_NAMES:
        from repro.runtime import metrics

        return getattr(metrics, name)
    if name in _RESILIENCE_NAMES:
        from repro.runtime import resilience

        return getattr(resilience, name)
    if name in _JOURNAL_NAMES:
        from repro.runtime import journal

        return getattr(journal, name)
    if name in _REGISTRY_NAMES:
        from repro.runtime import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
