"""The SQO-CP instance model (paper Appendix A.3).

A star query over ``R_0`` (central) and satellites ``R_1 .. R_m`` with
a predicate ``P_i`` between ``R_0`` and each ``R_i``.  Join methods are
nested-loops (``N``) and 2-pass sort-merge (``S``); cartesian products
are forbidden, so a feasible sequence either starts with ``R_0`` or
starts with some satellite immediately followed by ``R_0``.

Instance fields follow the appendix verbatim: ``k_s`` (2-pass sort
passes), page size ``P``, tuple counts ``n_i``, page counts ``b_i``,
sort costs ``A_i``, selectivities ``s_i``, nested-loops access costs
``w_i`` (into ``R_i``) and ``w_{0,i}`` (into ``R_0`` matching a tuple
of ``R_i``), and the cost threshold ``M``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Tuple

from repro.utils.validation import check_index, require


class JoinMethod(enum.Enum):
    """How one join operator is executed."""

    NESTED_LOOPS = "nl"
    SORT_MERGE = "sm"


@dataclass(frozen=True)
class StarPlan:
    """A feasible SQO-CP plan.

    ``sequence`` is the order of the ``m + 1`` relations (0 denotes
    ``R_0``); ``methods`` gives the method of each of the ``m`` join
    operators, ``methods[i]`` being the join that brings in
    ``sequence[i + 1]``.
    """

    sequence: Tuple[int, ...]
    methods: Tuple[JoinMethod, ...]

    def __post_init__(self) -> None:
        require(
            len(self.methods) == len(self.sequence) - 1,
            "need exactly one method per join",
        )


class SQOCPInstance:
    """An SQO-CP problem instance over ``m + 1`` relations."""

    __slots__ = (
        "_m",
        "_sort_passes",
        "_page_size",
        "_tuples",
        "_pages",
        "_sort_costs",
        "_selectivities",
        "_satellite_access",
        "_center_access",
        "_threshold",
        "__weakref__",
    )

    def __init__(
        self,
        num_satellites: int,
        sort_passes: int,
        page_size: int,
        tuples: Sequence[int],
        pages: Sequence[int],
        sort_costs: Sequence[int],
        selectivities: Sequence[Fraction],
        satellite_access: Sequence[int],
        center_access: Sequence[int],
        threshold: Optional[int] = None,
    ) -> None:
        m = num_satellites
        require(m >= 1, "need at least one satellite relation")
        require(sort_passes >= 2, "k_s models a 2-pass sort; must be >= 2")
        require(page_size >= 1, "page size must be positive")
        require(len(tuples) == m + 1, f"need {m + 1} tuple counts")
        require(len(pages) == m + 1, f"need {m + 1} page counts")
        require(len(sort_costs) == m + 1, f"need {m + 1} sort costs")
        require(len(selectivities) == m, f"need {m} selectivities (s_1..s_m)")
        require(len(satellite_access) == m, f"need {m} access costs w_i")
        require(len(center_access) == m, f"need {m} access costs w_0i")
        for value in list(tuples) + list(pages):
            require(value > 0, "tuple and page counts must be positive")
        for s in selectivities:
            require(0 < s <= 1, "selectivities must lie in (0, 1]")
        self._m = m
        self._sort_passes = sort_passes
        self._page_size = page_size
        self._tuples = tuple(tuples)
        self._pages = tuple(pages)
        self._sort_costs = tuple(sort_costs)
        self._selectivities = tuple(Fraction(s) for s in selectivities)
        self._satellite_access = tuple(satellite_access)
        self._center_access = tuple(center_access)
        self._threshold = threshold

    # -- accessors ---------------------------------------------------
    @property
    def num_satellites(self) -> int:
        return self._m

    @property
    def num_relations(self) -> int:
        return self._m + 1

    @property
    def sort_passes(self) -> int:
        """k_s: reads+writes per page in a 2-pass sort."""
        return self._sort_passes

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def threshold(self) -> Optional[int]:
        """The decision bound M (None for pure optimization use)."""
        return self._threshold

    def tuples(self, relation: int) -> int:
        check_index(relation, self._m + 1, "relation")
        return self._tuples[relation]

    def pages(self, relation: int) -> int:
        check_index(relation, self._m + 1, "relation")
        return self._pages[relation]

    def sort_cost(self, relation: int) -> int:
        """A_i: cost of sorting the disk-resident base relation."""
        check_index(relation, self._m + 1, "relation")
        return self._sort_costs[relation]

    def selectivity(self, satellite: int) -> Fraction:
        """s_i for the predicate between R_0 and R_i (1 <= i <= m)."""
        require(1 <= satellite <= self._m, "selectivity index out of range")
        return self._selectivities[satellite - 1]

    def satellite_access_cost(self, satellite: int) -> int:
        """w_i: least nested-loops probe cost into R_i."""
        require(1 <= satellite <= self._m, "access index out of range")
        return self._satellite_access[satellite - 1]

    def center_access_cost(self, satellite: int) -> int:
        """w_{0,i}: least nested-loops probe cost into R_0 from R_i."""
        require(1 <= satellite <= self._m, "access index out of range")
        return self._center_access[satellite - 1]

    def __repr__(self) -> str:
        return f"SQOCPInstance(m={self._m}, k_s={self._sort_passes})"

    # -- feasibility ---------------------------------------------------
    def is_feasible_sequence(self, sequence: Sequence[int]) -> bool:
        """No cartesian products: R_0 first or second."""
        if sorted(sequence) != list(range(self._m + 1)):
            return False
        return sequence[0] == 0 or sequence[1] == 0
