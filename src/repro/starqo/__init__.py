"""SQO-CP substrate (paper Appendix A/B) and its feeder problems.

SQO-CP — *Star Query Optimization minus Cross Products* — asks for a
cheapest join sequence over a star query (central relation ``R_0``
joined to satellites ``R_1 .. R_m``) where each join may run as
nested-loops or as a 2-pass sort-merge and cartesian products are
forbidden.  The paper proves it NP-complete via the chain

    PARTITION  ->  SPPCS  ->  SQO-CP

where SPPCS (*Subset Product Plus Complement Sum*) asks for a subset
``A`` minimizing ``prod_{i in A} p_i + sum_{j not in A} c_j``.

Modules:

* :mod:`repro.starqo.partition` — PARTITION + pseudo-polynomial DP;
* :mod:`repro.starqo.sppcs` — SPPCS + exact solvers;
* :mod:`repro.starqo.instance` — the SQO-CP instance model;
* :mod:`repro.starqo.cost` — the appendix's recursive cost ``D``;
* :mod:`repro.starqo.optimizer` — exhaustive plan search.
"""

from repro.starqo.partition import PartitionInstance, has_partition
from repro.starqo.sppcs import SPPCSInstance, sppcs_best_subset, sppcs_decide
from repro.starqo.instance import JoinMethod, SQOCPInstance, StarPlan
from repro.starqo.cost import plan_cost
from repro.starqo.optimizer import best_plan, enumerate_plans, sqocp_optimal
from repro.starqo.dp import dp_best_plan, sqocp_dp

__all__ = [
    "PartitionInstance",
    "has_partition",
    "SPPCSInstance",
    "sppcs_best_subset",
    "sppcs_decide",
    "JoinMethod",
    "SQOCPInstance",
    "StarPlan",
    "plan_cost",
    "best_plan",
    "enumerate_plans",
    "dp_best_plan",
    "sqocp_optimal",
    "sqocp_dp",
]
