"""Subset dynamic programming for SQO-CP.

Both the tuple count ``n(X)`` and the page count ``b(X)`` of a joined
prefix depend only on the *set* of satellites joined (``R_0`` is always
in by position 2), and the cost of bringing in satellite ``i`` by
either method depends only on that set and ``i``.  The optimal plan is
therefore a shortest path over the subset lattice — ``O(2^m m)``
states/transitions instead of ``O(m! 2^m)`` plans.

The first join is special-cased over its three forms (``R_0 N_i``,
``R_i N_0``, ``R_0 S_i`` = ``R_i S_0``); afterwards each transition
tries both methods for the incoming satellite.

Agrees with :func:`repro.starqo.optimizer.best_plan` on every instance
(property-tested) while handling twice as many satellites.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.results import PlanResult
from repro.starqo.cost import _first_join_cost, _later_join_cost
from repro.starqo.instance import JoinMethod, SQOCPInstance, StarPlan
from repro.utils.validation import require
from repro.observability.tracer import traced

_METHODS = (JoinMethod.NESTED_LOOPS, JoinMethod.SORT_MERGE)


def dp_best_plan(
    instance: SQOCPInstance, max_satellites: int = 18,
    stats: Optional[dict] = None,
) -> Tuple[Fraction, StarPlan]:
    """The optimal SQO-CP plan by subset DP (exact).

    When ``stats`` is a dict, ``stats["explored"]`` receives the number
    of DP transitions evaluated.
    """
    m = instance.num_satellites
    require(
        m <= max_satellites,
        f"subset DP limited to {max_satellites} satellites "
        f"(instance has {m}); raise max_satellites explicitly to override",
    )

    full = (1 << m) - 1
    # best[mask] = cheapest cost of a prefix containing R_0 and the
    # satellites in mask (mask bit i <-> satellite i+1); parent[mask]
    # reconstructs (previous mask, satellite, method, first_form).
    best: Dict[int, Fraction] = {}
    parent: Dict[int, Tuple[int, int, JoinMethod, Optional[str]]] = {}

    explored = 0
    # Seed: the first join always involves R_0 and one satellite.
    for satellite in range(1, m + 1):
        mask = 1 << (satellite - 1)
        for first, second, method, form in (
            (0, satellite, JoinMethod.NESTED_LOOPS, "center-first"),
            (satellite, 0, JoinMethod.NESTED_LOOPS, "satellite-first"),
            (0, satellite, JoinMethod.SORT_MERGE, "center-first"),
        ):
            cost = _first_join_cost(instance, first, second, method)
            explored += 1
            if mask not in best or cost < best[mask]:
                best[mask] = cost
                parent[mask] = (0, satellite, method, form)

    # Expand the lattice in increasing mask order (subsets precede
    # supersets numerically).
    for mask in range(1, full + 1):
        if mask not in best:
            continue
        base = best[mask]
        members = [i + 1 for i in range(m) if mask >> i & 1]
        prefix = tuple([0] + members)
        for satellite in range(1, m + 1):
            bit = 1 << (satellite - 1)
            if mask & bit:
                continue
            new_mask = mask | bit
            for method in _METHODS:
                cost = base + _later_join_cost(
                    instance, prefix, satellite, method
                )
                explored += 1
                if new_mask not in best or cost < best[new_mask]:
                    best[new_mask] = cost
                    parent[new_mask] = (mask, satellite, method, None)

    require(full in best, "DP failed to cover all satellites")

    # Reconstruct.
    sequence: List[int] = []
    methods: List[JoinMethod] = []
    first_form: Optional[str] = None
    mask = full
    while mask:
        previous, satellite, method, form = parent[mask]
        sequence.append(satellite)
        methods.append(method)
        if previous == 0:
            first_form = form
        mask = previous
    sequence.reverse()
    methods.reverse()
    if first_form == "satellite-first":
        ordered = (sequence[0], 0, *sequence[1:])
    else:
        ordered = (0, *sequence)
    plan = StarPlan(sequence=ordered, methods=tuple(methods))
    if stats is not None:
        stats["explored"] = explored
    return best[full], plan


@traced("optimize.sqocp_dp")
def sqocp_dp(
    instance: SQOCPInstance, max_satellites: int = 18
) -> PlanResult:
    """:func:`dp_best_plan` with the unified result type."""
    stats: dict = {}
    cost, plan = dp_best_plan(instance, max_satellites, stats=stats)
    return PlanResult(
        cost=cost,
        sequence=plan.sequence,
        optimizer="sqocp-dp",
        explored=stats["explored"],
        is_exact=True,
        plan=plan,
    )
