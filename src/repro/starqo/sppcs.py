"""SPPCS: Subset Product Plus Complement Sum (paper Appendix A.4).

An instance is ``m`` pairs of non-negative integers
``(p_1, c_1) .. (p_m, c_m)`` and a bound ``L``; the question is whether
some index subset ``A`` satisfies::

    prod_{i in A} p_i  +  sum_{j not in A} c_j  <=  L

(the product over the empty set is 1).  The paper proves SPPCS
NP-complete from PARTITION and then reduces SPPCS to SQO-CP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.utils.validation import require


@dataclass(frozen=True)
class SPPCSInstance:
    """An SPPCS instance."""

    pairs: Tuple[Tuple[int, int], ...]
    bound: int

    def __init__(self, pairs: Sequence[Sequence[int]], bound: int) -> None:
        normalized = tuple((int(p), int(c)) for p, c in pairs)
        for p, c in normalized:
            require(p >= 0 and c >= 0, "SPPCS values must be non-negative")
        object.__setattr__(self, "pairs", normalized)
        object.__setattr__(self, "bound", int(bound))

    @property
    def size(self) -> int:
        return len(self.pairs)

    def objective(self, subset: Sequence[int]) -> int:
        """``prod_{i in A} p_i + sum_{j not in A} c_j`` for ``A = subset``."""
        subset_set = set(subset)
        require(
            all(0 <= i < self.size for i in subset_set),
            "subset index out of range",
        )
        product = 1
        for index in subset_set:
            product *= self.pairs[index][0]
        complement_sum = sum(
            c for index, (_, c) in enumerate(self.pairs)
            if index not in subset_set
        )
        return product + complement_sum


def sppcs_best_subset(instance: SPPCSInstance) -> Tuple[int, List[int]]:
    """Exact minimum objective by branch and bound.

    Branches on each index (in or out of A), tracking the running
    product and the remaining complement-sum mass.  Prune when the
    product alone (which can only grow or stay, given p >= 1 — indices
    with ``p = 0`` or ``p = 1`` are always safe to include product-wise)
    already exceeds the incumbent plus everything removable.
    Exponential in the worst case; the harness uses small ``m``.
    """
    m = instance.size
    pairs = instance.pairs
    suffix_c = [0] * (m + 1)
    suffix_has_zero_p = [False] * (m + 1)
    for index in range(m - 1, -1, -1):
        suffix_c[index] = suffix_c[index + 1] + pairs[index][1]
        suffix_has_zero_p[index] = (
            suffix_has_zero_p[index + 1] or pairs[index][0] == 0
        )

    best_value: Optional[int] = None
    best_subset: List[int] = []
    chosen: List[int] = []

    def recurse(index: int, product: int, complement: int) -> None:
        nonlocal best_value, best_subset
        if (
            best_value is not None
            and not suffix_has_zero_p[index]
            and product + complement - suffix_c[index] >= best_value
        ):
            # The product cannot shrink (no zero factors remain) and at
            # best every undecided c leaves the sum, so the objective
            # cannot beat the incumbent.
            return
        if index == m:
            value = product + complement
            if best_value is None or value < best_value:
                best_value = value
                best_subset = list(chosen)
            return
        p, c = pairs[index]
        # Include in A: product multiplies by p, c leaves the sum.
        chosen.append(index)
        recurse(index + 1, product * p, complement - c)
        chosen.pop()
        # Exclude from A: c stays in the sum.
        recurse(index + 1, product, complement)

    recurse(0, 1, suffix_c[0])
    assert best_value is not None
    return best_value, sorted(best_subset)


def sppcs_decide(instance: SPPCSInstance) -> bool:
    """True iff some subset meets the bound ``L``."""
    best, _ = sppcs_best_subset(instance)
    return best <= instance.bound


def sppcs_brute_force(instance: SPPCSInstance) -> Tuple[int, List[int]]:
    """Plain 2^m enumeration; oracle for testing the branch and bound."""
    m = instance.size
    best_value: Optional[int] = None
    best_subset: List[int] = []
    for mask in range(1 << m):
        subset = [i for i in range(m) if mask >> i & 1]
        value = instance.objective(subset)
        if best_value is None or value < best_value:
            best_value = value
            best_subset = subset
    assert best_value is not None
    return best_value, best_subset
