"""Exhaustive SQO-CP plan search.

Feasible sequences of a star query are ``R_0`` first (any satellite
order after it) or one satellite first with ``R_0`` second.  With two
methods per join there are ``(m + 1)! / m * 2^m``-ish plans; the
instance sizes used by the Appendix-B verification keep this
enumerable.  A branch-and-bound prune on the running cost keeps the
search fast in practice.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterator, List, Optional, Tuple

from repro.core.results import PlanResult
from repro.starqo.cost import _first_join_cost, _later_join_cost
from repro.starqo.instance import JoinMethod, SQOCPInstance, StarPlan
from repro.utils.validation import require
from repro.observability.tracer import traced

_METHODS = (JoinMethod.NESTED_LOOPS, JoinMethod.SORT_MERGE)


def feasible_sequences(instance: SQOCPInstance) -> Iterator[Tuple[int, ...]]:
    """All cartesian-product-free relation orders."""
    satellites = list(range(1, instance.num_relations))
    for order in itertools.permutations(satellites):
        yield (0, *order)
    for first in satellites:
        others = [s for s in satellites if s != first]
        for order in itertools.permutations(others):
            yield (first, 0, *order)


def enumerate_plans(instance: SQOCPInstance) -> Iterator[StarPlan]:
    """Every feasible plan (sequence x method vector)."""
    num_joins = instance.num_relations - 1
    for sequence in feasible_sequences(instance):
        for methods in itertools.product(_METHODS, repeat=num_joins):
            yield StarPlan(sequence=sequence, methods=methods)


def best_plan(
    instance: SQOCPInstance, max_satellites: int = 7,
    stats: Optional[dict] = None,
) -> Tuple[Fraction, StarPlan]:
    """The optimal plan by pruned exhaustive search.

    When ``stats`` is a dict, ``stats["explored"]`` receives the number
    of search states examined (the work metric the unified
    :func:`sqocp_optimal` wrapper reports).
    """
    require(
        instance.num_satellites <= max_satellites,
        f"exhaustive SQO-CP search limited to {max_satellites} satellites "
        f"(instance has {instance.num_satellites}); raise max_satellites "
        "explicitly to override",
    )
    best_cost: Optional[Fraction] = None
    best: Optional[StarPlan] = None
    explored = 0

    for sequence in feasible_sequences(instance):
        # Depth-first over method choices with running-cost pruning.
        stack: List[Tuple[int, Fraction, Tuple[JoinMethod, ...]]] = []
        for method in _METHODS:
            cost = _first_join_cost(instance, sequence[0], sequence[1], method)
            stack.append((2, cost, (method,)))
        while stack:
            position, cost, methods = stack.pop()
            explored += 1
            if best_cost is not None and cost >= best_cost:
                continue
            if position == len(sequence):
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best = StarPlan(sequence=sequence, methods=methods)
                continue
            prefix = sequence[:position]
            for method in _METHODS:
                step = _later_join_cost(
                    instance, prefix, sequence[position], method
                )
                stack.append((position + 1, cost + step, methods + (method,)))
    assert best_cost is not None and best is not None
    if stats is not None:
        stats["explored"] = explored
    return best_cost, best


@traced("optimize.sqocp_exhaustive")
def sqocp_optimal(
    instance: SQOCPInstance, max_satellites: int = 7
) -> PlanResult:
    """:func:`best_plan` with the unified result type."""
    stats: dict = {}
    cost, plan = best_plan(instance, max_satellites, stats=stats)
    return PlanResult(
        cost=cost,
        sequence=plan.sequence,
        optimizer="sqocp-exhaustive",
        explored=stats["explored"],
        is_exact=True,
        plan=plan,
    )


def decide(instance: SQOCPInstance) -> bool:
    """The decision problem: is there a plan of cost <= M?"""
    require(instance.threshold is not None, "instance carries no threshold M")
    cost, _ = best_plan(instance)
    return cost <= instance.threshold
