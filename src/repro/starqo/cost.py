"""The SQO-CP cost recursion ``D`` (paper Appendix A.2).

Intermediate results containing ``R_0`` project onto ``R_0``'s
attribute list, and the paper fixes their tuple size at one page, so
``b(X) = n(X)`` for any prefix with at least two relations, where

    n(X) = n_0 * prod_{i in X, i != 0} n_i * s_i .

Join operator costs, for a prefix ``W`` (at least two relations):

* sort-merge ``S_i``:  ``b(W) * (k_s - 1) + A_i``  — sort the stream,
  sort the disk-resident satellite;
* nested loops ``N_i``:  ``n(W) * w_i``.

The first join (which always involves ``R_0``) is special-cased:

* ``R_0 N_i``: ``b_0 + n_0 * w_i``      (read R_0, probe R_i per tuple);
* ``R_r N_0``: ``b_r + n_r * w_{0,r}``  (read R_r, probe R_0 per tuple);
* ``R_r S_i``: ``C_sm = sort(R_r) + sort(R_i) = b_r k_s + b_i k_s``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence, Tuple

from repro.starqo.instance import JoinMethod, SQOCPInstance, StarPlan
from repro.utils.validation import require


def prefix_tuples(instance: SQOCPInstance, prefix: Sequence[int]) -> Fraction:
    """``n(X)`` for a prefix containing R_0 and at least one satellite."""
    require(0 in prefix, "n(X) is defined once R_0 has been joined")
    value = Fraction(instance.tuples(0))
    for relation in prefix:
        if relation == 0:
            continue
        value *= instance.tuples(relation)
        value *= instance.selectivity(relation)
    return value


def prefix_pages(instance: SQOCPInstance, prefix: Sequence[int]) -> Fraction:
    """``b(X)``: base-relation pages, or ``n(X)`` for joined prefixes."""
    if len(prefix) == 1:
        return Fraction(instance.pages(prefix[0]))
    return prefix_tuples(instance, prefix)


def _first_join_cost(
    instance: SQOCPInstance, first: int, second: int, method: JoinMethod
) -> Fraction:
    """Cost of the first join operator (always involves R_0)."""
    if method is JoinMethod.SORT_MERGE:
        # C_sm(R_first, R_second): both base relations are on disk.
        return Fraction(
            instance.pages(first) * instance.sort_passes
            + instance.pages(second) * instance.sort_passes
        )
    if first == 0:
        # R_0 N_second: read R_0, probe R_second per tuple of R_0.
        return Fraction(
            instance.pages(0)
            + instance.tuples(0) * instance.satellite_access_cost(second)
        )
    # R_first N_0: read R_first, probe R_0 per tuple of R_first.
    require(second == 0, "the second relation must be R_0 here")
    return Fraction(
        instance.pages(first)
        + instance.tuples(first) * instance.center_access_cost(first)
    )


def _later_join_cost(
    instance: SQOCPInstance,
    prefix: Sequence[int],
    incoming: int,
    method: JoinMethod,
) -> Fraction:
    """Cost of a join operator applied after a joined prefix ``W``."""
    require(incoming != 0, "R_0 can only appear in the first join")
    if method is JoinMethod.SORT_MERGE:
        return (
            prefix_pages(instance, prefix) * (instance.sort_passes - 1)
            + instance.sort_cost(incoming)
        )
    return prefix_tuples(instance, prefix) * instance.satellite_access_cost(
        incoming
    )


def plan_cost(instance: SQOCPInstance, plan: StarPlan) -> Fraction:
    """``C(Z)``: total cost of a feasible plan."""
    sequence = plan.sequence
    require(
        instance.is_feasible_sequence(sequence),
        "plan sequence has a cartesian product (R_0 must be first or second)",
    )
    total = _first_join_cost(
        instance, sequence[0], sequence[1], plan.methods[0]
    )
    for position in range(2, len(sequence)):
        prefix = sequence[:position]
        total += _later_join_cost(
            instance, prefix, sequence[position], plan.methods[position - 1]
        )
    return total


def join_costs(
    instance: SQOCPInstance, plan: StarPlan
) -> Tuple[Fraction, ...]:
    """Per-operator costs, for inspection and tests."""
    sequence = plan.sequence
    require(
        instance.is_feasible_sequence(sequence),
        "plan sequence has a cartesian product (R_0 must be first or second)",
    )
    costs = [
        _first_join_cost(instance, sequence[0], sequence[1], plan.methods[0])
    ]
    for position in range(2, len(sequence)):
        prefix = sequence[:position]
        costs.append(
            _later_join_cost(
                instance, prefix, sequence[position], plan.methods[position - 1]
            )
        )
    return tuple(costs)
