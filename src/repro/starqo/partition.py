"""The PARTITION problem (paper Appendix A.4 variant).

An instance is a multiset of non-negative integers whose total is
even; the question is whether a subset sums to exactly half.  The
paper notes the even-total variant stays NP-complete (double every
element of a standard instance — :func:`from_standard_instance`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.utils.validation import require


@dataclass(frozen=True)
class PartitionInstance:
    """A PARTITION instance with an even total."""

    values: Tuple[int, ...]

    def __init__(self, values: Sequence[int]) -> None:
        normalized = tuple(int(v) for v in values)
        for value in normalized:
            require(value >= 0, "PARTITION values must be non-negative")
        require(sum(normalized) % 2 == 0, "PARTITION total must be even")
        object.__setattr__(self, "values", normalized)

    @property
    def total(self) -> int:
        return sum(self.values)

    @property
    def half(self) -> int:
        return self.total // 2


def from_standard_instance(values: Sequence[int]) -> PartitionInstance:
    """Double every value: the standard->even-total reduction."""
    return PartitionInstance([2 * int(v) for v in values])


def find_partition(instance: PartitionInstance) -> Optional[List[int]]:
    """Indices of a subset summing to half the total, or None.

    Pseudo-polynomial subset-sum DP, reconstructing one witness.
    """
    target = instance.half
    values = instance.values
    # reachable[s] = index of the last value used to first reach sum s.
    reachable: List[Optional[int]] = [None] * (target + 1)
    reachable_from: List[int] = [-1] * (target + 1)
    achieved = [False] * (target + 1)
    achieved[0] = True
    for index, value in enumerate(values):
        if value == 0:
            continue
        for s in range(target, value - 1, -1):
            if not achieved[s] and achieved[s - value]:
                achieved[s] = True
                reachable[s] = index
                reachable_from[s] = s - value
    if not achieved[target]:
        # Zeros alone can realize target 0.
        return [] if target == 0 else None
    chosen: List[int] = []
    s = target
    while s > 0:
        index = reachable[s]
        assert index is not None
        chosen.append(index)
        s = reachable_from[s]
    return sorted(chosen)


def has_partition(instance: PartitionInstance) -> bool:
    """True iff a half-total subset exists."""
    return find_partition(instance) is not None


def verify_partition(instance: PartitionInstance, indices: Sequence[int]) -> bool:
    """Check a claimed witness."""
    index_set = set(indices)
    require(
        all(0 <= i < len(instance.values) for i in index_set),
        "witness index out of range",
    )
    picked = sum(instance.values[i] for i in index_set)
    return picked == instance.half
