"""Analysis helpers for the benchmark harness.

The asymptotic claims of Theorems 9 and 15 are statements about
exponents; these helpers turn measured series into the quantities the
paper reports:

* :func:`fit_power_law` — least-squares fit of ``y = a * x^b`` in
  log-log space (used to confirm ``log K = Theta(n^2 log alpha)``);
* :func:`gap_exponent` — the measured ``log2(gap) / log2(K)^e`` curve,
  locating the ``e`` at which the gap stops being polylog;
* :func:`competitive_ratio_log2` — ratio bookkeeping that works for
  thousands-of-bits costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.utils.lognum import Numeric, log2_of
from repro.utils.validation import require


@dataclass(frozen=True)
class PowerLawFit:
    """``y ~ coefficient * x^exponent`` with an R^2 quality score."""

    exponent: float
    coefficient: float
    r_squared: float


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log y = b log x + log a``.

    Pure-Python closed form (no numpy dependency in the library core).
    """
    require(len(xs) == len(ys), "series must have equal length")
    require(len(xs) >= 2, "need at least two points")
    require(all(x > 0 for x in xs), "x values must be positive")
    require(all(y > 0 for y in ys), "y values must be positive")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    n = len(xs)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    ss_xx = sum((x - mean_x) ** 2 for x in log_x)
    require(ss_xx > 0, "x values must not be all equal")
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in zip(log_x, log_y))
    slope = ss_xy / ss_xx
    intercept = mean_y - slope * mean_x
    predictions = [slope * x + intercept for x in log_x]
    ss_res = sum((y - p) ** 2 for y, p in zip(log_y, predictions))
    ss_tot = sum((y - mean_y) ** 2 for y in log_y)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        exponent=slope, coefficient=math.exp(intercept), r_squared=r_squared
    )


def competitive_ratio_log2(found_cost: Numeric, optimal_cost: Numeric) -> float:
    """``log2(found / optimal)``, safe for astronomically large costs."""
    return float(log2_of(found_cost) - log2_of(optimal_cost))


def gap_exponent(gap_log2: float, cost_log2: float) -> float:
    """The ``e`` such that ``gap = 2^{(log2 K)^e}``.

    Theorem 9 asserts the reductions achieve ``e -> 1`` as delta -> 0;
    any ``e > 0`` already defeats every polylog ratio asymptotically.
    """
    require(gap_log2 > 0, "gap must exceed 1")
    require(cost_log2 > 1, "cost must exceed 2")
    return math.log(gap_log2) / math.log(cost_log2)


def summarize_series(
    ns: Sequence[int], k_log2s: Sequence[float], gap_log2s: Sequence[float]
) -> List[Tuple[int, float, float, float]]:
    """Per-n rows of (n, log2 K, gap log2, gap exponent)."""
    rows = []
    for n, k_log2, gap_log2 in zip(ns, k_log2s, gap_log2s):
        rows.append((n, k_log2, gap_log2, gap_exponent(gap_log2, k_log2)))
    return rows
