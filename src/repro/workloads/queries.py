"""Ordinary query-optimization workloads.

Standard query-graph topologies with randomized statistics, in the
style of the join-ordering literature (Steinbrunn et al.): relation
sizes log-uniform in ``[size_min, size_max]``, selectivities of the
form ``1 / domain`` with a log-uniform domain.  Exact ``Fraction``
statistics keep every optimizer comparison exact.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Tuple

from repro.graphs.graph import Graph
from repro.joinopt.instance import QONInstance
from repro.utils.rng import Random, RngLike, make_rng
from repro.utils.validation import require


def _random_sizes(
    rng: Random, n: int, size_min: int, size_max: int
) -> list[int]:
    low = math.log(size_min)
    high = math.log(size_max)
    return [
        max(1, round(math.exp(rng.uniform(low, high)))) for _ in range(n)
    ]


def _random_selectivities(
    rng: Random, graph: Graph, domain_min: int, domain_max: int
) -> Dict[Tuple[int, int], Fraction]:
    low = math.log(domain_min)
    high = math.log(domain_max)
    return {
        edge: Fraction(1, max(2, round(math.exp(rng.uniform(low, high)))))
        for edge in graph.edges
    }


def _build(
    graph: Graph,
    rng: RngLike,
    size_min: int,
    size_max: int,
    domain_min: int,
    domain_max: int,
) -> QONInstance:
    generator = make_rng(rng)
    sizes = _random_sizes(generator, graph.num_vertices, size_min, size_max)
    selectivities = _random_selectivities(
        generator, graph, domain_min, domain_max
    )
    return QONInstance(graph, sizes, selectivities)


def chain_query(
    n: int,
    rng: RngLike = None,
    size_min: int = 10,
    size_max: int = 100_000,
    domain_min: int = 2,
    domain_max: int = 10_000,
) -> QONInstance:
    """R_0 - R_1 - ... - R_{n-1}: the tractable tree family."""
    require(n >= 2, "chain query needs at least two relations")
    graph = Graph(n, [(i, i + 1) for i in range(n - 1)])
    return _build(graph, rng, size_min, size_max, domain_min, domain_max)


def star_query(
    n: int,
    rng: RngLike = None,
    size_min: int = 10,
    size_max: int = 100_000,
    domain_min: int = 2,
    domain_max: int = 10_000,
) -> QONInstance:
    """Hub relation 0 joined to n-1 satellites (also a tree)."""
    require(n >= 2, "star query needs at least two relations")
    graph = Graph(n, [(0, i) for i in range(1, n)])
    return _build(graph, rng, size_min, size_max, domain_min, domain_max)


def cycle_query(
    n: int,
    rng: RngLike = None,
    size_min: int = 10,
    size_max: int = 100_000,
    domain_min: int = 2,
    domain_max: int = 10_000,
) -> QONInstance:
    """A ring: the smallest non-tree family (one extra edge)."""
    require(n >= 3, "cycle query needs at least three relations")
    graph = Graph(n, [(i, (i + 1) % n) for i in range(n)])
    return _build(graph, rng, size_min, size_max, domain_min, domain_max)


def clique_query(
    n: int,
    rng: RngLike = None,
    size_min: int = 10,
    size_max: int = 100_000,
    domain_min: int = 2,
    domain_max: int = 10_000,
) -> QONInstance:
    """Every pair joined: the dense extreme."""
    require(n >= 2, "clique query needs at least two relations")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    graph = Graph(n, edges)
    return _build(graph, rng, size_min, size_max, domain_min, domain_max)


def random_query(
    n: int,
    edge_probability: float = 0.5,
    rng: RngLike = None,
    size_min: int = 10,
    size_max: int = 100_000,
    domain_min: int = 2,
    domain_max: int = 10_000,
) -> QONInstance:
    """G(n, p) query graph, patched up to connectivity with a path."""
    require(n >= 2, "random query needs at least two relations")
    generator = make_rng(rng)
    edges = {
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if generator.random() < edge_probability
    }
    # Ensure connectivity: thread a random spanning path through.
    order = list(range(n))
    generator.shuffle(order)
    for a, b in zip(order, order[1:]):
        edges.add((min(a, b), max(a, b)))
    graph = Graph(n, sorted(edges))
    return _build(graph, generator, size_min, size_max, domain_min, domain_max)


def snowflake_query(
    num_dimensions: int,
    satellites_per_dimension: int = 2,
    rng: RngLike = None,
    size_min: int = 10,
    size_max: int = 100_000,
    domain_min: int = 2,
    domain_max: int = 10_000,
) -> QONInstance:
    """A snowflake: facts (0) -> dimensions -> per-dimension satellites.

    A tree, hence IKKBZ-optimizable — the schema shape of most
    analytics workloads, and a useful contrast to the dense hardness
    families.
    """
    require(num_dimensions >= 1, "need at least one dimension")
    require(satellites_per_dimension >= 0, "satellite count must be >= 0")
    edges = []
    next_vertex = 1
    for _ in range(num_dimensions):
        dimension = next_vertex
        next_vertex += 1
        edges.append((0, dimension))
        for _ in range(satellites_per_dimension):
            edges.append((dimension, next_vertex))
            next_vertex += 1
    graph = Graph(next_vertex, edges)
    return _build(graph, rng, size_min, size_max, domain_min, domain_max)


def grid_query(
    rows: int,
    columns: int,
    rng: RngLike = None,
    size_min: int = 10,
    size_max: int = 100_000,
    domain_min: int = 2,
    domain_max: int = 10_000,
) -> QONInstance:
    """A rows x columns grid: cyclic but sparse (e(n) ~ 2n edges),
    sitting between the tractable trees and the dense gap families —
    exactly the regime Section 6 is about."""
    require(rows >= 2 and columns >= 2, "grid needs at least 2x2")
    def vertex(r: int, c: int) -> int:
        return r * columns + c

    edges = []
    for r in range(rows):
        for c in range(columns):
            if c + 1 < columns:
                edges.append((vertex(r, c), vertex(r, c + 1)))
            if r + 1 < rows:
                edges.append((vertex(r, c), vertex(r + 1, c)))
    graph = Graph(rows * columns, edges)
    return _build(graph, rng, size_min, size_max, domain_min, domain_max)
