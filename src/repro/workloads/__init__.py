"""Parametric workload families for examples and benchmarks.

* :mod:`repro.workloads.queries` — "ordinary" query-optimization
  workloads (chain / star / cycle / clique / random queries with
  random statistics), used to exercise the optimizers outside the
  adversarial gap families;
* :mod:`repro.workloads.gaps` — the hardness families: planted-clique
  QO_N/QO_H gap instances with known YES/NO status, plus matched
  PARTITION suites.
"""

from repro.workloads.queries import (
    chain_query,
    grid_query,
    snowflake_query,
    clique_query,
    cycle_query,
    random_query,
    star_query,
)
from repro.workloads.gaps import (
    GapPair,
    qoh_gap_pair,
    qon_gap_pair,
    partition_suite,
)

__all__ = [
    "chain_query",
    "grid_query",
    "snowflake_query",
    "clique_query",
    "cycle_query",
    "random_query",
    "star_query",
    "GapPair",
    "qoh_gap_pair",
    "qon_gap_pair",
    "partition_suite",
]
