"""Hardness workloads: matched YES/NO gap-instance pairs.

The SAT-driven chains produce faithful but large instances; for
benchmark sweeps it is often enough to *plant* the clique structure
directly, which these helpers do:

* :func:`qon_gap_pair` — a YES instance (graph with a planted clique
  of ``k_yes``) and a NO instance (graph with maximum clique certified
  ``<= k_no``), both mapped through f_N with identical parameters;
* :func:`qoh_gap_pair` — the same for f_H / 2/3-CLIQUE;
* :func:`partition_suite` — YES/NO PARTITION instances for the
  appendix chain.

NO-side graphs are built as balanced complete multipartite graphs
(Turan graphs): ``K_{r x s}`` has maximum clique exactly ``r`` — a
*certified* bound with no clique search needed — and is dense, matching
the reduction families' degree profile.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.core.reductions.clique_to_qoh import FHReduction, clique_to_qoh
from repro.core.reductions.clique_to_qon import FNReduction, clique_to_qon
from repro.graphs.graph import Graph
from repro.starqo.partition import PartitionInstance
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require


def turan_graph(n: int, parts: int) -> Graph:
    """The Turan graph T(n, parts): complete multipartite with balanced
    classes; its maximum clique has exactly ``parts`` vertices."""
    require(1 <= parts <= n, "parts must lie in [1, n]")
    assignment = [v % parts for v in range(n)]
    edges = [
        (u, v)
        for u, v in itertools.combinations(range(n), 2)
        if assignment[u] != assignment[v]
    ]
    return Graph(n, edges)


@dataclass(frozen=True)
class GapPair:
    """A matched YES/NO pair of reduction outputs.

    ``yes_clique`` witnesses the YES side (a clique of ``k_yes``
    vertices, by construction); ``no_reduction.graph`` has maximum
    clique exactly ``k_no`` (a Turan graph).
    """

    yes_reduction: object
    no_reduction: object
    yes_clique: Tuple[int, ...]


def qon_gap_pair(
    n: int,
    k_yes: int,
    k_no: int,
    alpha: Optional[int] = None,
    delta: float = 1.0,
) -> GapPair:
    """Matched f_N YES/NO instances on ``n`` relations.

    YES graph: complete graph (clique = n >= k_yes, witnessed by the
    first ``k_yes`` vertices).  NO graph: Turan T(n, k_no), maximum
    clique exactly ``k_no``.
    """
    require(1 <= k_no < k_yes <= n, "need 1 <= k_no < k_yes <= n")
    yes_graph = Graph(
        n, list(itertools.combinations(range(n), 2))
    )
    no_graph = turan_graph(n, k_no)
    yes_reduction = clique_to_qon(yes_graph, k_yes, k_no, alpha, delta)
    no_reduction = clique_to_qon(no_graph, k_yes, k_no, alpha, delta)
    return GapPair(
        yes_reduction=yes_reduction,
        no_reduction=no_reduction,
        yes_clique=tuple(range(max(k_yes, yes_reduction.k_yes))),
    )


def qoh_gap_pair(
    n: int,
    epsilon: Fraction = Fraction(1, 4),
    alpha: Optional[int] = None,
    delta: float = 1.0,
) -> GapPair:
    """Matched f_H YES/NO instances on source graphs of ``n`` vertices.

    YES graph: complete (clique 2n/3 trivially exists).  NO graph:
    Turan with ``floor((2 - eps) n / 3)`` parts — maximum clique
    certified at the Lemma 13 bound.
    """
    require(n >= 6 and n % 3 == 0, "need n divisible by 3, at least 6")
    target = 2 * n // 3
    no_clique = int((2 - epsilon) * n / 3)
    require(1 <= no_clique < target, "epsilon leaves no gap")
    yes_graph = Graph(n, list(itertools.combinations(range(n), 2)))
    no_graph = turan_graph(n, no_clique)
    yes_reduction = clique_to_qoh(yes_graph, epsilon, alpha, delta)
    no_reduction = clique_to_qoh(no_graph, epsilon, alpha, delta)
    return GapPair(
        yes_reduction=yes_reduction,
        no_reduction=no_reduction,
        yes_clique=tuple(range(target)),
    )


def partition_suite(
    count: int, size: int, value_range: int = 50, rng: RngLike = None
) -> List[Tuple[PartitionInstance, bool]]:
    """Random PARTITION instances labelled by ground truth.

    Half are forced YES (built as two halves with equal sums), half are
    sampled and labelled by the exact DP.
    """
    from repro.starqo.partition import has_partition

    require(size >= 2, "need at least two values")
    generator = make_rng(rng)
    suite: List[Tuple[PartitionInstance, bool]] = []
    for index in range(count):
        if index % 2 == 0:
            # Planted YES: mirror a random half.
            half = [2 * generator.randint(1, value_range) for _ in range(size // 2)]
            values = half + half if size % 2 == 0 else half + half + [0]
            instance = PartitionInstance(values)
            suite.append((instance, True))
        else:
            values = [2 * generator.randint(1, value_range) for _ in range(size)]
            instance = PartitionInstance(values)
            suite.append((instance, has_partition(instance)))
    return suite
