"""The ``repro.rpc/1`` wire protocol: newline-delimited JSON frames.

One frame per line, UTF-8, ``\\n``-terminated.  A client sends request
frames::

    {"rpc": "repro.rpc/1", "id": 7, "op": "optimize", "payload": {...}}

and receives exactly one reply frame per request, carrying a
``repro.reply/1`` :class:`~repro.core.requests.ServiceReply` payload::

    {"rpc": "repro.rpc/1", "id": 7, "reply": {...}}

``id`` is a client-chosen integer echoed verbatim, so a client may
pipeline requests over one connection and match replies out of order
(the server answers cache hits immediately while computations are
still queued).

Operations:

* ``hello`` — handshake; replies with :func:`repro.api.capabilities`.
* ``optimize`` — payload is a ``repro.request/1`` optimize_request.
* ``sweep`` — payload is a ``repro.request/1`` sweep_spec.
* ``stats`` — replies with the ``repro.stats/1`` counter snapshot.
* ``metrics`` — replies with the live ``repro.metrics/1`` snapshot of
  the daemon's telemetry registry (``repro top`` polls this).
* ``shutdown`` — ask the server to drain and exit (same as SIGTERM).

Framing errors (non-JSON line, wrong schema, unknown op) produce an
``error`` reply with ``id`` echoed when recoverable; a line that is
not a JSON object at all closes the connection.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.utils.validation import ValidationError, require

RPC_SCHEMA = "repro.rpc/1"

#: Every operation a request frame may carry.
OPS: Tuple[str, ...] = (
    "hello", "optimize", "sweep", "stats", "metrics", "shutdown"
)

#: Operations that enqueue a computation (admission-controlled); the
#: rest are answered inline by the connection reader.
COMPUTE_OPS: Tuple[str, ...] = ("optimize", "sweep")

#: Hard cap on one frame's wire size (16 MiB) — a line longer than
#: this is a protocol violation, not a request.
MAX_FRAME_BYTES = 16 * 1024 * 1024


def request_frame(
    op: str, frame_id: int, payload: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Build a request frame (client side)."""
    require(op in OPS, f"unknown op {op!r}; known: {list(OPS)}")
    return {"rpc": RPC_SCHEMA, "id": frame_id, "op": op,
            "payload": payload}


def reply_frame(frame_id: int, reply: Dict[str, Any]) -> Dict[str, Any]:
    """Build a reply frame (server side) around a reply payload."""
    return {"rpc": RPC_SCHEMA, "id": frame_id, "reply": reply}


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """One frame as its wire line (terminator included)."""
    return (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a frame dict.

    Raises :class:`ValidationError` on anything that is not a JSON
    object — the caller decides whether that kills the connection.
    """
    require(
        len(line) <= MAX_FRAME_BYTES,
        f"frame exceeds {MAX_FRAME_BYTES} bytes",
    )
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"undecodable frame: {exc}")
    require(isinstance(frame, dict), "frame must be a JSON object")
    return frame


def validate_request_frame(frame: Dict[str, Any]) -> None:
    """Schema-check a request frame; raises :class:`ValidationError`."""
    require(
        frame.get("rpc") == RPC_SCHEMA,
        f"frame rpc must be {RPC_SCHEMA!r}, got {frame.get('rpc')!r}",
    )
    frame_id = frame.get("id")
    require(
        isinstance(frame_id, int) and not isinstance(frame_id, bool),
        "frame id must be an integer",
    )
    op = frame.get("op")
    require(op in OPS, f"unknown op {op!r}; known: {list(OPS)}")
    payload = frame.get("payload")
    require(
        payload is None or isinstance(payload, dict),
        "frame payload must be null or an object",
    )
    if op in COMPUTE_OPS:
        require(
            isinstance(payload, dict),
            f"op {op!r} requires a request payload",
        )


def validate_reply_frame(frame: Dict[str, Any]) -> None:
    """Schema-check a reply frame; raises :class:`ValidationError`."""
    require(
        frame.get("rpc") == RPC_SCHEMA,
        f"frame rpc must be {RPC_SCHEMA!r}, got {frame.get('rpc')!r}",
    )
    frame_id = frame.get("id")
    require(
        isinstance(frame_id, int) and not isinstance(frame_id, bool),
        "frame id must be an integer",
    )
    require(
        isinstance(frame.get("reply"), dict),
        "reply frame must carry a reply object",
    )


__all__ = [
    "COMPUTE_OPS",
    "MAX_FRAME_BYTES",
    "OPS",
    "RPC_SCHEMA",
    "ValidationError",
    "decode_line",
    "encode_frame",
    "reply_frame",
    "request_frame",
    "validate_reply_frame",
    "validate_request_frame",
]
