"""The optimization service daemon (``repro serve``).

A long-running server speaking ``repro.rpc/1`` (newline-delimited JSON
frames, :mod:`repro.service.protocol`) over a local socket — AF_UNIX
when given a filesystem path, TCP on localhost otherwise.  One reader
thread per connection parses and validates frames; compute operations
pass through admission control into a bounded queue consumed by a
fixed worker pool; everything else (handshake, stats, shutdown) is
answered inline.

What the admission path guarantees, in order:

1. **Result cache** — a request whose fingerprint was computed before
   is answered immediately from the bounded LRU result cache,
   bit-identically to the original computation (the cache stores the
   decoded reply object; the codec layer guarantees value/type/repr
   equality).  ``no_cache`` on the request bypasses this (and dedup)
   but still refreshes the cache.
2. **Dedup** — a request identical to one currently queued or running
   coalesces onto it: no second computation, one reply per requester
   when the shared computation finishes (``coalesced`` is set on the
   piggybacked replies).
3. **Backpressure** — when the pending queue is full (or the server is
   draining) the request is *rejected with an explicit retry-after
   reply*; nothing is ever silently dropped.

Workers run each computation through :func:`repro.api.execute_request`
— the only optimization entry point this package may touch (lint rule
RPR011) — under a per-worker-thread
:class:`~repro.runtime.costcache.CostCache` and a per-request
:class:`~repro.observability.tracer.Tracer`, so replies carry span
counter totals and optional span trees.  Decoded instances are kept in
a bounded keep-alive cache keyed by their wire payload, so repeated
requests against the same instance reuse the per-instance compiled
cost kernels (which are memoized per *live* object).

SIGTERM/SIGINT (or the ``shutdown`` op) triggers a graceful drain:
the listener closes, late requests get retry-after rejections, queued
work finishes, workers exit, and :meth:`OptimizationServer.shutdown`
returns the final ``repro.stats/1`` snapshot — whose counters sum to
exactly the number of compute requests received.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import socket
import threading
import time
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro import api
from repro.observability.events import EventLog, use_event_log
from repro.observability.export import TelemetryExporter
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.observability.tracer import Tracer, counter_totals, use_tracer
from repro.service import protocol
from repro.service.stats import ServerStats
from repro.utils.validation import ValidationError, require

Address = Union[str, Tuple[str, int]]

RequestLike = Union[api.OptimizeRequest, api.SweepSpec]


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for one :class:`OptimizationServer`.

    ``address`` — AF_UNIX socket path (str) or ``(host, port)`` tuple;
    ``port 0`` picks a free port (read it back from
    :attr:`OptimizationServer.address`).
    ``workers`` — worker threads = max in-flight computations.
    ``max_queue`` — pending requests admitted beyond the in-flight
    ones; the backpressure bound.
    ``retry_after_s`` — the hint attached to rejection replies.
    ``result_cache_size`` — result-cache entries (0 disables caching
    *and* dedup-by-cache, not dedup-by-inflight).
    ``instance_cache_size`` — decoded instances kept alive for
    compiled-kernel reuse.
    ``worker_cache_maxsize`` — per-worker :class:`~repro.api.CostCache`
    bound (None = unbounded).
    ``metrics_out`` — append ``repro.metrics/1`` snapshot lines here
    every ``metrics_interval_s`` seconds (None disables the exporter;
    the live registry and the ``metrics`` RPC op work either way).
    ``events_out`` — append ``repro.events/1`` lines here (None
    disables the event log).
    ``slow_ms`` — requests slower than this emit a sampled
    ``service.slow_request`` event (requires ``events_out``).
    """

    address: Address = ("127.0.0.1", 0)
    workers: int = 2
    max_queue: int = 32
    retry_after_s: float = 0.05
    result_cache_size: int = 256
    instance_cache_size: int = 64
    worker_cache_maxsize: Optional[int] = None
    metrics_out: Optional[str] = None
    metrics_interval_s: float = 1.0
    events_out: Optional[str] = None
    slow_ms: Optional[float] = None


class _Job:
    """One admitted computation plus everyone waiting on it."""

    __slots__ = ("op", "request", "fingerprint", "waiters", "done")

    def __init__(
        self, op: str, request: RequestLike, fingerprint: str,
    ) -> None:
        self.op = op
        self.request = request
        self.fingerprint = fingerprint
        #: ``(connection, frame_id, coalesced)`` per requester.
        self.waiters: List[Tuple["_Connection", int, bool]] = []
        self.done = False


class _Connection:
    """One accepted socket with a write lock (readers never share)."""

    __slots__ = ("sock", "_write_lock", "closed")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._write_lock = threading.Lock()
        self.closed = False

    def send_frame(self, frame: Dict[str, Any]) -> None:
        """Write one frame; a dead peer marks the connection closed
        (the reply is undeliverable, not droppable — the peer left)."""
        data = protocol.encode_frame(frame)
        with self._write_lock:
            if self.closed:
                return
            try:
                self.sock.sendall(data)
            except OSError:
                self.closed = True

    def close(self) -> None:
        with self._write_lock:
            self.closed = True
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass


class OptimizationServer:
    """The daemon behind ``repro serve``; see the module docstring."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        require(self.config.workers >= 1, "need at least one worker")
        require(self.config.max_queue >= 1, "need a queue of at least 1")
        self.stats = ServerStats()
        # Live telemetry: one registry per server lifetime.  The
        # counters below mirror ServerStats exactly (same names, same
        # increment sites), so the ``received == computed + cache_hits
        # + coalesced + rejected + errors`` identity holds in every
        # exported snapshot too.
        self.metrics = MetricsRegistry()
        self._event_log: Optional[EventLog] = (
            EventLog(self.config.events_out, slow_ms=self.config.slow_ms)
            if self.config.events_out is not None else None
        )
        self._exporter: Optional[TelemetryExporter] = None
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._pending: Deque[_Job] = deque()
        self._inflight: Dict[str, _Job] = {}
        self._running_count = 0
        self._results: "OrderedDict[str, api.ServiceReply]" = OrderedDict()
        # Keep-alive instance LRU, shared machinery with the sweep
        # runner: the live tier of the runtime's content-addressed
        # registry (internally locked; max_live=0 is pass-through).
        self._registry = api.InstanceRegistry(
            max_live=max(self.config.instance_cache_size, 0)
        )
        self._connections: List[_Connection] = []
        self._threads: List[threading.Thread] = []
        self._listener: Optional[socket.socket] = None
        self._unix_path: Optional[str] = None
        self._address: Optional[Address] = None
        self._stop_event = threading.Event()
        self._drained = threading.Condition(self._lock)
        self._started = False
        self._closed = False

    # -- lifecycle ----------------------------------------------------

    @property
    def address(self) -> Address:
        """Where clients connect (valid after :meth:`start`)."""
        require(self._address is not None, "server is not started")
        assert self._address is not None
        return self._address

    def start(self) -> Address:
        """Bind, listen, and launch the accept + worker threads."""
        require(not self._started, "server already started")
        self._started = True
        address = self.config.address
        if isinstance(address, str):
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(address)
            self._unix_path = address
            self._address = address
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(address)
            self._address = listener.getsockname()[:2]
        listener.listen(128)
        self._listener = listener
        if self.config.metrics_out is not None:
            self._exporter = TelemetryExporter(
                self.metrics,
                self.config.metrics_out,
                interval_s=self.config.metrics_interval_s,
            )
            self._exporter.start()
        accept = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)
        return self._address

    def request_stop(self) -> None:
        """Ask the server to drain and stop (signal-handler safe)."""
        self._stop_event.set()
        with self._lock:
            self._work_ready.notify_all()

    def wait_stopped(self, timeout: Optional[float] = None) -> bool:
        """Block until a stop was requested (signal, shutdown op)."""
        return self._stop_event.wait(timeout)

    def shutdown(self, drain_timeout: float = 60.0) -> Dict[str, Any]:
        """Gracefully drain and stop; returns the final stats snapshot.

        Closes the listener (no new connections), lets admission
        reject late arrivals with retry-after, waits for every queued
        and running computation to finish and its replies to be sent,
        then stops the workers and closes the remaining connections.
        """
        self._stop_event.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        deadline = time.monotonic() + drain_timeout
        with self._drained:
            while self._pending or self._running_count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._drained.wait(remaining)
            self._closed = True
            self._work_ready.notify_all()
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
        if self._exporter is not None:
            # Final snapshot line: drained counters, settled identity.
            self._exporter.stop()
            self._exporter = None
        if self._event_log is not None:
            self._event_log.close()
        return self.stats_snapshot()

    def serve_forever(self) -> Dict[str, Any]:
        """Start (unless already started), handle SIGTERM/SIGINT as
        graceful drain, and block until stopped; returns the final
        stats snapshot."""
        if not self._started:
            self.start()
        try:
            signal.signal(signal.SIGTERM, lambda *_: self.request_stop())
            signal.signal(signal.SIGINT, lambda *_: self.request_stop())
        except ValueError:
            pass  # not the main thread; rely on request_stop()/shutdown op
        self._stop_event.wait()
        return self.shutdown()

    def stats_snapshot(self) -> Dict[str, Any]:
        """The current ``repro.stats/1`` payload."""
        with self._lock:
            queue_depth = len(self._pending)
            in_flight = self._running_count
        return self.stats.snapshot(
            queue_depth=queue_depth,
            in_flight=in_flight,
            workers=self.config.workers,
        )

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The current ``repro.metrics/1`` payload (the ``metrics`` op,
        which ``repro top`` polls)."""
        with self._lock:
            queue_depth = len(self._pending)
            in_flight = self._running_count
        self.metrics.set_gauge("service.queue_depth", queue_depth)
        self.metrics.set_gauge("service.in_flight", in_flight)
        self.metrics.set_gauge("service.workers", self.config.workers)
        if self._event_log is not None:
            self.metrics.set_gauge(
                "service.events_logged", float(self._event_log.emitted)
            )
        return self.metrics.snapshot()

    def _count(self, name: str) -> None:
        """One admission-control counter, in both sinks at once.

        ``ServerStats`` (the ``repro.stats/1`` snapshot) and the live
        registry must never disagree, so every count goes through here.
        """
        self.stats.count(name)
        self.metrics.inc(f"service.{name}")

    # -- accept / read ------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while not self._stop_event.is_set():
            try:
                sock, _peer = listener.accept()
            except OSError:
                return  # listener closed: drain in progress
            connection = _Connection(sock)
            with self._lock:
                self._connections.append(connection)
            reader = threading.Thread(
                target=self._reader_loop,
                args=(connection,),
                name="repro-reader",
                daemon=True,
            )
            reader.start()

    def _reader_loop(self, connection: _Connection) -> None:
        stream = connection.sock.makefile(
            "rb", buffering=protocol.MAX_FRAME_BYTES
        )
        try:
            for line in stream:
                if not line.strip():
                    continue
                try:
                    frame = protocol.decode_line(line)
                except ValidationError:
                    return  # not even a JSON object: hang up
                self._handle_frame(connection, frame)
        except (OSError, ValueError):
            pass
        finally:
            stream.close()
            connection.close()
            with self._lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    def _handle_frame(
        self, connection: _Connection, frame: Dict[str, Any]
    ) -> None:
        frame_id = frame.get("id")
        if not isinstance(frame_id, int) or isinstance(frame_id, bool):
            frame_id = -1
        try:
            protocol.validate_request_frame(frame)
        except ValidationError as exc:
            self._send_reply(
                connection, frame_id,
                api.ServiceReply(op="error", status="error", error=str(exc)),
            )
            return
        op = frame["op"]
        if op == "hello":
            self._send_reply(
                connection, frame_id,
                api.ServiceReply(op="hello", result=api.capabilities()),
            )
        elif op == "stats":
            self._send_reply(
                connection, frame_id,
                api.ServiceReply(op="stats", result=self.stats_snapshot()),
            )
        elif op == "metrics":
            self._send_reply(
                connection, frame_id,
                api.ServiceReply(
                    op="metrics", result=self.metrics_snapshot()
                ),
            )
        elif op == "shutdown":
            self._send_reply(
                connection, frame_id, api.ServiceReply(op="shutdown")
            )
            self.request_stop()
        else:
            self._admit(connection, frame_id, op, frame["payload"])

    # -- admission control --------------------------------------------

    def _decode_request(
        self, op: str, payload: Dict[str, Any]
    ) -> RequestLike:
        if op == "optimize":
            request = api.OptimizeRequest.from_dict(payload)
            return dataclasses.replace(
                request,
                instance=self._canonical_instance(
                    payload["instance"], request.instance
                ),
            )
        spec = api.SweepSpec.from_dict(payload)
        return dataclasses.replace(
            spec,
            instances=tuple(
                (label, self._canonical_instance(encoded, instance))
                for (label, instance), (_label, encoded)
                in zip(spec.instances, payload["instances"])
            ),
        )

    def _canonical_instance(
        self, encoded: Dict[str, Any], decoded: Any
    ) -> Any:
        """One live object per distinct instance payload.

        The compiled cost kernels are memoized per live instance, so
        serving repeated requests from the same decoded object makes
        every request after the first reuse the compiled kernel
        instead of recompiling it.  The LRU itself lives in
        :mod:`repro.runtime.registry` (via the :mod:`repro.api`
        facade) — the same live tier the chunked sweep runner's
        workers use — keyed here by the canonical request JSON.
        """
        if self.config.instance_cache_size <= 0:
            return decoded
        key = json.dumps(encoded, sort_keys=True)
        return self._registry.canonical(key, decoded)

    def _admit(
        self,
        connection: _Connection,
        frame_id: int,
        op: str,
        payload: Dict[str, Any],
    ) -> None:
        self._count("received")
        try:
            request = self._decode_request(op, payload)
            fingerprint = request.fingerprint()
        except (ValidationError, KeyError, TypeError, ValueError) as exc:
            self._count("errors")
            self._send_reply(
                connection, frame_id,
                api.ServiceReply(op=op, status="error", error=str(exc)),
            )
            return
        bypass = bool(request.no_cache)
        reply: Optional[api.ServiceReply] = None
        decision = "admit"
        with self._lock:
            if not bypass:
                cached = self._results.get(fingerprint)
                if cached is not None:
                    self._results.move_to_end(fingerprint)
                    self._count("cache_hits")
                    reply = dataclasses.replace(cached, cached=True)
                else:
                    running = self._inflight.get(fingerprint)
                    if running is not None and not running.done:
                        running.waiters.append(
                            (connection, frame_id, True)
                        )
                        self._count("coalesced")
                        decision = "coalesce"
            if reply is None and decision == "admit":
                if (
                    self._stop_event.is_set()
                    or len(self._pending) >= self.config.max_queue
                ):
                    self._count("rejected")
                    decision = "reject"
                    reply = api.ServiceReply(
                        op=op,
                        status="rejected",
                        error=(
                            "server draining"
                            if self._stop_event.is_set()
                            else "queue full"
                        ),
                        retry_after=self.config.retry_after_s,
                        fingerprint=fingerprint,
                    )
                else:
                    job = _Job(op, request, fingerprint)
                    job.waiters.append((connection, frame_id, False))
                    if not bypass:
                        self._inflight[fingerprint] = job
                    self._pending.append(job)
                    self.metrics.set_gauge(
                        "service.queue_depth", len(self._pending)
                    )
                    self._work_ready.notify()
        # Event I/O stays outside the admission lock.
        if self._event_log is not None and decision != "admit":
            self._event_log.emit(
                f"service.{decision}", op=op, fingerprint=fingerprint
            )
        elif self._event_log is not None and reply is None:
            self._event_log.emit(
                "service.admit", op=op, fingerprint=fingerprint
            )
        if reply is not None:
            self._send_reply(connection, frame_id, reply)

    # -- workers ------------------------------------------------------

    def _worker_loop(self) -> None:
        worker_cache = api.CostCache(
            maxsize=self.config.worker_cache_maxsize
        )
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._work_ready.wait()
                if self._closed and not self._pending:
                    return
                job = self._pending.popleft()
                self.metrics.set_gauge(
                    "service.queue_depth", len(self._pending)
                )
                self._running_count += 1
            # _run_job handles every exception itself, so the
            # bookkeeping below always runs with a reply in hand.
            reply = self._run_job(job, worker_cache)
            evicted: List[str] = []
            with self._lock:
                self._running_count -= 1
                job.done = True
                self._inflight.pop(job.fingerprint, None)
                if (
                    reply.status == "ok"
                    and self.config.result_cache_size > 0
                ):
                    self._results[job.fingerprint] = reply
                    self._results.move_to_end(job.fingerprint)
                    while (
                        len(self._results) > self.config.result_cache_size
                    ):
                        dropped, _ = self._results.popitem(last=False)
                        evicted.append(dropped)
                waiters = list(job.waiters)
                if not self._pending and not self._running_count:
                    self._drained.notify_all()
            if evicted:
                self.metrics.inc("service.result_evictions", len(evicted))
                if self._event_log is not None:
                    for dropped in evicted:
                        self._event_log.emit(
                            "service.evict", fingerprint=dropped
                        )
            for connection, frame_id, coalesced in waiters:
                self._send_reply(
                    connection, frame_id,
                    dataclasses.replace(reply, coalesced=coalesced),
                )

    def _run_job(
        self, job: _Job, worker_cache: "api.CostCache"
    ) -> api.ServiceReply:
        trace_id = getattr(job.request, "trace_id", None)
        # A request-supplied trace context implies the caller is
        # reconstructing a distributed trace, so the server-side spans
        # always travel back with the reply in that case.
        wants_trace = (
            bool(getattr(job.request, "trace", False))
            or trace_id is not None
        )
        tracer = Tracer(root_name=f"service.{job.op}")
        if trace_id is not None:
            tracer.root["attrs"] = {
                "trace_id": trace_id,
                "parent_span": getattr(job.request, "parent_span", None),
            }
        started = time.perf_counter()
        try:
            # The worker thread's dynamic extent reports into the
            # server's registry: cost evaluations/cache hits emitted by
            # the cost cache during this request land in the same
            # ``runtime.*`` counters the exporter snapshots.
            with use_metrics(self.metrics), \
                    use_event_log(self._event_log), \
                    use_tracer(tracer), api.use_cache(worker_cache):
                with tracer.span(f"execute.{job.fingerprint[:12]}"):
                    result = api.execute_request(job.request)
        except Exception as exc:
            self._count("errors")
            records = tracer.finish()
            return api.ServiceReply(
                op=job.op,
                status="error",
                error=f"{type(exc).__name__}: {exc}",
                fingerprint=job.fingerprint,
                wall_time_s=time.perf_counter() - started,
                counters=tuple(sorted(counter_totals(records).items())),
                trace_records=(
                    tuple(records) if wants_trace else None
                ),
            )
        self._count("computed")
        elapsed = time.perf_counter() - started
        self.stats.observe_latency(elapsed)
        self.metrics.observe("service.latency_ms", elapsed * 1000.0)
        if self._event_log is not None:
            self._event_log.observe_latency(
                elapsed, op=job.op, fingerprint=job.fingerprint
            )
        records = tracer.finish()
        return api.ServiceReply(
            op=job.op,
            result=result,
            fingerprint=job.fingerprint,
            wall_time_s=elapsed,
            counters=tuple(sorted(counter_totals(records).items())),
            trace_records=tuple(records) if wants_trace else None,
        )

    # -- replies ------------------------------------------------------

    def _send_reply(
        self,
        connection: _Connection,
        frame_id: int,
        reply: "api.ServiceReply",
    ) -> None:
        try:
            payload = reply.to_dict()
        except Exception:
            payload = api.ServiceReply(
                op=reply.op,
                status="error",
                error="reply serialization failed:\n"
                + traceback.format_exc(limit=3),
            ).to_dict()
        connection.send_frame(protocol.reply_frame(frame_id, payload))


def serve(config: Optional[ServerConfig] = None) -> Dict[str, Any]:
    """Run a server until SIGTERM/SIGINT; returns the final stats."""
    return OptimizationServer(config).serve_forever()


__all__ = ["OptimizationServer", "ServerConfig", "serve"]
