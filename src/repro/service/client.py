"""Blocking client for the optimization service (``repro.rpc/1``).

:class:`ServiceClient` owns one socket connection to a ``repro serve``
daemon.  Connecting performs the ``hello`` handshake and verifies the
server speaks this client's wire schemas, so version skew fails fast
with a clear message instead of a decode error mid-request.

The high-level calls (:meth:`ServiceClient.optimize`,
:meth:`ServiceClient.sweep`) submit a typed request object and block
for the decoded :class:`~repro.core.requests.ServiceReply`.  By
default they honor backpressure: a ``rejected`` reply is retried after
the server's suggested ``retry_after`` delay until ``max_wait_s`` is
exhausted — so a caller either gets an answer or an explicit timeout,
never a silent drop.  Pass ``wait=False`` to surface rejections
directly.

The client is not thread-safe; use one client per thread (the server
happily serves many connections).
"""

from __future__ import annotations

import dataclasses
import socket
import time
import uuid
from typing import Any, Dict, Optional, Tuple, Union

from repro import api
from repro.observability.tracer import active_tracer
from repro.service import protocol
from repro.utils.validation import ValidationError, require

Address = Union[str, Tuple[str, int]]


class ServiceError(RuntimeError):
    """The server answered with a protocol-level error reply."""


class ServiceUnavailable(RuntimeError):
    """The request kept being rejected until ``max_wait_s`` ran out."""

    def __init__(self, message: str, reply: "api.ServiceReply") -> None:
        super().__init__(message)
        self.reply = reply


class ServiceClient:
    """One blocking connection to an optimization service daemon."""

    def __init__(
        self,
        address: Address,
        connect_timeout: float = 10.0,
        handshake: bool = True,
    ) -> None:
        self._address = address
        if isinstance(address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(connect_timeout)
        sock.connect(address if isinstance(address, str)
                     else tuple(address))
        sock.settimeout(None)
        self._sock = sock
        self._stream = sock.makefile("rb", buffering=protocol.MAX_FRAME_BYTES)
        self._next_id = 0
        self.capabilities: Optional[Dict[str, Any]] = None
        if handshake:
            self.capabilities = self.hello()

    # -- plumbing -----------------------------------------------------

    def call(
        self, op: str, payload: Optional[Dict[str, Any]] = None
    ) -> "api.ServiceReply":
        """One raw round trip: send a frame, block for its reply."""
        frame_id = self._next_id
        self._next_id += 1
        frame = protocol.request_frame(op, frame_id, payload)
        self._sock.sendall(protocol.encode_frame(frame))
        while True:
            line = self._stream.readline()
            if not line:
                raise ServiceError(
                    f"connection to {self._address!r} closed mid-call"
                )
            if not line.strip():
                continue
            reply_frame = protocol.decode_line(line)
            protocol.validate_reply_frame(reply_frame)
            if reply_frame["id"] != frame_id:
                continue  # stale reply from an earlier abandoned call
            return api.ServiceReply.from_dict(reply_frame["reply"])

    def _submit(
        self,
        op: str,
        payload: Dict[str, Any],
        wait: bool,
        max_wait_s: float,
    ) -> "api.ServiceReply":
        deadline = time.monotonic() + max_wait_s
        while True:
            reply = self.call(op, payload)
            if not reply.rejected or not wait:
                return reply
            delay = reply.retry_after or 0.01
            if time.monotonic() + delay > deadline:
                raise ServiceUnavailable(
                    f"{op} request kept being rejected for "
                    f"{max_wait_s:.1f}s ({reply.error})",
                    reply,
                )
            time.sleep(delay)

    # -- operations ---------------------------------------------------

    def hello(self) -> Dict[str, Any]:
        """Handshake; returns the server's capability payload."""
        reply = self.call("hello")
        if not reply.ok or not isinstance(reply.result, dict):
            raise ServiceError(f"handshake failed: {reply.error}")
        schemas = reply.result.get("rpc_schemas", [])
        for needed in (protocol.RPC_SCHEMA, api.REQUEST_SCHEMA,
                       api.REPLY_SCHEMA):
            require(
                needed in schemas,
                f"server does not speak {needed!r} "
                f"(offers {schemas!r})",
            )
        return reply.result

    def optimize(
        self,
        request: "api.OptimizeRequest",
        wait: bool = True,
        max_wait_s: float = 60.0,
    ) -> "api.ServiceReply":
        """Submit one optimize request; blocks for the reply.

        When the calling thread has an active tracer and the request
        carries no trace context yet, the call participates in
        distributed tracing: a ``service.optimize`` client span is
        opened, a fresh ``trace_id`` plus that span's id travel with
        the request, and the server-side span subtree returned in the
        reply is grafted under the client span — one stitched trace
        whose counters equal the server's work exactly.
        """
        require(
            isinstance(request, api.OptimizeRequest),
            f"expected an OptimizeRequest, got {type(request)!r}",
        )
        tracer = active_tracer()
        if tracer is None or request.trace_id is not None:
            return self._submit(
                "optimize", request.to_dict(), wait, max_wait_s
            )
        trace_id = uuid.uuid4().hex
        with tracer.span("service.optimize"):
            traced = dataclasses.replace(
                request,
                trace_id=trace_id,
                parent_span=tracer.current_span_id,
            )
            reply = self._submit(
                "optimize", traced.to_dict(), wait, max_wait_s
            )
            if reply.trace_records:
                tracer.graft(
                    list(reply.trace_records),
                    origin=f"service-{trace_id[:8]}",
                )
            return reply

    def sweep(
        self,
        spec: "api.SweepSpec",
        wait: bool = True,
        max_wait_s: float = 300.0,
    ) -> "api.ServiceReply":
        """Submit one sweep spec; blocks for the reply."""
        require(
            isinstance(spec, api.SweepSpec),
            f"expected a SweepSpec, got {type(spec)!r}",
        )
        return self._submit("sweep", spec.to_dict(), wait, max_wait_s)

    def stats(self) -> Dict[str, Any]:
        """The server's current ``repro.stats/1`` snapshot."""
        reply = self.call("stats")
        if not reply.ok or not isinstance(reply.result, dict):
            raise ServiceError(f"stats call failed: {reply.error}")
        return reply.result

    def metrics(self) -> Dict[str, Any]:
        """The server's live ``repro.metrics/1`` telemetry snapshot."""
        reply = self.call("metrics")
        if not reply.ok or not isinstance(reply.result, dict):
            raise ServiceError(f"metrics call failed: {reply.error}")
        return reply.result

    def shutdown_server(self) -> "api.ServiceReply":
        """Ask the server to drain and exit (equivalent to SIGTERM)."""
        return self.call("shutdown")

    def close(self) -> None:
        try:
            self._stream.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "ValidationError",
]
