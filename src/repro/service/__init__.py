"""Optimization service: a local daemon serving ``repro.api`` requests.

``repro serve`` runs :class:`~repro.service.server.OptimizationServer`
— a socket daemon with request deduplication, a bit-identical result
cache, bounded-queue admission control and per-request span tracing —
and :class:`~repro.service.client.ServiceClient` talks to it (as does
``repro request``).  The wire protocol lives in
:mod:`repro.service.protocol`, the ``repro.stats/1`` counters in
:mod:`repro.service.stats`; see ``docs/service.md`` for the full
protocol and lifecycle story.

This package invokes optimization exclusively through
:mod:`repro.api` request objects (lint rule RPR011) — it contains no
optimizer logic of its own.
"""

from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.server import OptimizationServer, ServerConfig, serve
from repro.service.stats import STATS_SCHEMA, ServerStats, validate_stats

__all__ = [
    "STATS_SCHEMA",
    "OptimizationServer",
    "ServerConfig",
    "ServerStats",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "serve",
    "validate_stats",
]
