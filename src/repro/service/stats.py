"""Server-side counters and latency tracking (``repro.stats/1``).

One :class:`ServerStats` instance per server, mutated under its own
lock by the reader and worker threads; :meth:`ServerStats.snapshot`
returns the JSON-safe payload the ``stats`` RPC serves.

Counter semantics (all monotone):

* ``received`` — compute requests that arrived (after frame
  validation), regardless of how they were answered;
* ``computed`` — requests answered by actually running the optimizer;
* ``cache_hits`` — requests answered from the result cache;
* ``coalesced`` — requests attached to an identical in-flight
  computation (dedup);
* ``rejected`` — requests refused by admission control (the client
  got an explicit retry-after reply — rejection is never silent);
* ``errors`` — computations that raised.

``received == computed + cache_hits + coalesced + rejected + errors``
holds at quiescence — the smoke test asserts it after a drain.

Latency percentiles are computed over a bounded window of the most
recent computed-request wall times, by sorted-rank interpolation
(nearest-rank on the sorted window; deterministic, stdlib-only).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Tuple

STATS_SCHEMA = "repro.stats/1"

#: Percentile marks reported by :meth:`ServerStats.snapshot`.
PERCENTILES: Tuple[int, ...] = (50, 90, 99)


def percentile(sorted_values: Tuple[float, ...], mark: int) -> float:
    """Nearest-rank percentile of an already-sorted tuple."""
    if not sorted_values:
        return 0.0
    rank = max(
        0,
        min(
            len(sorted_values) - 1,
            -(-mark * len(sorted_values) // 100) - 1,
        ),
    )
    return sorted_values[rank]


class ServerStats:
    """Thread-safe counters + latency window for one server."""

    def __init__(self, latency_window: int = 1024) -> None:
        self._lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        self.received = 0
        self.computed = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.rejected = 0
        self.errors = 0

    def count(self, name: str, amount: int = 1) -> None:
        """Bump one of the public counters."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def observe_latency(self, seconds: float) -> None:
        """Record one computed request's wall time."""
        with self._lock:
            self._latencies.append(seconds)

    def snapshot(
        self, queue_depth: int, in_flight: int, workers: int
    ) -> Dict[str, Any]:
        """The ``repro.stats/1`` payload (JSON-safe)."""
        with self._lock:
            window = tuple(sorted(self._latencies))
            counters = {
                "received": self.received,
                "computed": self.computed,
                "cache_hits": self.cache_hits,
                "coalesced": self.coalesced,
                "rejected": self.rejected,
                "errors": self.errors,
            }
        served = (
            counters["computed"] + counters["cache_hits"]
            + counters["coalesced"]
        )
        answered = served + counters["rejected"] + counters["errors"]
        lookups = counters["computed"] + counters["cache_hits"]
        return {
            "schema": STATS_SCHEMA,
            "queue_depth": queue_depth,
            "in_flight": in_flight,
            "workers": workers,
            "counters": counters,
            "served": served,
            "answered": answered,
            "cache_hit_rate": (
                counters["cache_hits"] / lookups if lookups else 0.0
            ),
            "latency_s": {
                "count": len(window),
                "max": window[-1] if window else 0.0,
                **{
                    f"p{mark}": percentile(window, mark)
                    for mark in PERCENTILES
                },
            },
        }


def validate_stats(payload: Dict[str, Any]) -> None:
    """Schema-check a ``repro.stats/1`` payload (raises ValueError)."""
    if not isinstance(payload, dict):
        raise ValueError("stats payload must be a dict")
    if payload.get("schema") != STATS_SCHEMA:
        raise ValueError(
            f"stats schema must be {STATS_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    for name in ("queue_depth", "in_flight", "workers", "served",
                 "answered"):
        value = payload.get(name)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"stats.{name} must be an int")
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        raise ValueError("stats.counters must be a dict")
    for name in ("received", "computed", "cache_hits", "coalesced",
                 "rejected", "errors"):
        value = counters.get(name)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"stats.counters.{name} must be an int")
    latency = payload.get("latency_s")
    if not isinstance(latency, dict):
        raise ValueError("stats.latency_s must be a dict")
    for name in ("count", "max", *(f"p{mark}" for mark in PERCENTILES)):
        value = latency.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"stats.latency_s.{name} must be a number")


__all__ = [
    "PERCENTILES",
    "STATS_SCHEMA",
    "ServerStats",
    "percentile",
    "validate_stats",
]
