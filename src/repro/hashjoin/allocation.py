"""Optimal memory allocation within a pipeline (paper Lemma 10).

A pipeline runs joins ``J_i .. J_k``; join ``J_j`` has inner relation
``bs_j`` (a base relation) and outer stream ``br_j = N_{j-1}``.  Memory
``M`` must be split with ``m_j >= hjmin(bs_j)`` and ``sum m_j <= M``.

Because ``g`` is linear in ``m`` on ``[hjmin(b), b]``, the partitioning
overhead ``(br_j + bs_j) * g(m_j, bs_j)`` decreases at the constant
rate ``(br_j + bs_j) * g_scale / (bs_j - hjmin(bs_j))`` per page of
memory, and giving a join more than ``bs_j`` pages is useless.  The
optimal split is therefore a greedy fill: start everyone at the floor,
then pour the remaining memory into joins in decreasing order of that
rate.  This reproduces Lemma 10's qualitative statement — the joins
with the *smallest outer streams* are the ones left at minimum memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.hashjoin.cost_model import HashJoinCostModel
from repro.utils.validation import require


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of the memory-allocation LP (solved greedily).

    Attributes:
        allocation: memory page share per join, in pipeline order.
        join_costs: ``h`` value per join under that allocation.
        total_join_cost: sum of the join costs.
        starved: indices (pipeline-local) of joins left below their
            inner size — the joins that pay partitioning overhead.
    """

    allocation: Tuple[Fraction, ...]
    join_costs: Tuple[Fraction, ...]
    total_join_cost: Fraction
    starved: Tuple[int, ...]


def allocate_memory(
    model: HashJoinCostModel,
    outer_sizes: Sequence[Fraction],
    inner_sizes: Sequence[int],
    memory: int,
) -> Optional[AllocationResult]:
    """Optimal split of ``memory`` among the pipeline's joins.

    Returns None when even the floors don't fit (infeasible pipeline).
    """
    count = len(inner_sizes)
    require(count == len(outer_sizes), "outer/inner length mismatch")
    require(count >= 1, "pipeline must contain at least one join")
    floors = [model.hjmin(inner) for inner in inner_sizes]
    if sum(floors) > memory:
        return None

    allocation: List[Fraction] = [Fraction(floor) for floor in floors]
    spare = Fraction(memory - sum(floors))

    # Rate of cost decrease per page, zero once m reaches the inner size.
    def fill_priority(index: int) -> Fraction:
        span = inner_sizes[index] - floors[index]
        if span <= 0:
            return Fraction(0)
        return (
            (Fraction(outer_sizes[index]) + inner_sizes[index])
            * model.g_scale
            / span
        )

    order = sorted(range(count), key=fill_priority, reverse=True)
    for index in order:
        if spare <= 0:
            break
        headroom = Fraction(inner_sizes[index]) - allocation[index]
        if headroom <= 0:
            continue
        grant = min(headroom, spare)
        allocation[index] += grant
        spare -= grant

    join_costs = [
        model.h(allocation[index], outer_sizes[index], inner_sizes[index])
        for index in range(count)
    ]
    total = Fraction(0)
    for cost in join_costs:
        total += cost
    starved = tuple(
        index
        for index in range(count)
        if allocation[index] < inner_sizes[index]
    )
    return AllocationResult(
        allocation=tuple(allocation),
        join_costs=tuple(join_costs),
        total_join_cost=total,
        starved=starved,
    )
