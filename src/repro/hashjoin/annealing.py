"""Simulated annealing over QO_H join sequences.

Completes the polynomial-heuristic family for the hash-join model:
neighbors are adjacent swaps / single-relation moves on the sequence
(skipping moves that break feasibility — e.g. displacing a pinned
oversized head), each candidate costed by the exact decomposition DP.
Acceptance works on log2 cost deltas, as in the QO_N annealer, so the
hardness instances' scales are handled.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import List, Optional, Tuple

from repro.hashjoin.instance import QOHInstance
from repro.core.results import PlanResult
from repro.perf.incremental import sample_moves
from repro.perf.qoh import QOHEvaluator
from repro.utils.lognum import log2_of
from repro.utils.rng import Random, RngLike, make_rng
from repro.utils.validation import require
from repro.observability.tracer import traced


def _initial_sequence(
    instance: QOHInstance, rng: Random
) -> Optional[Tuple[int, ...]]:
    """A random feasible sequence (oversized relation first, if any)."""
    n = instance.num_relations
    oversized = [
        r for r in range(n) if instance.hjmin(r) > instance.memory
    ]
    if len(oversized) > 1:
        return None
    if oversized:
        rest = [r for r in range(n) if r != oversized[0]]
        rng.shuffle(rest)
        return (oversized[0], *rest)
    order = list(range(n))
    rng.shuffle(order)
    return tuple(order)


def _neighbor(sequence: Tuple[int, ...], rng: Random) -> Tuple[int, ...]:
    """A single non-identity neighbor (swap or single-relation move).

    Delegates to :func:`~repro.perf.incremental.sample_moves`, which
    redraws degenerate move targets — a no-op "neighbor" used to count
    toward ``explored`` without exploring anything.
    """
    (move,) = sample_moves(len(sequence), rng, 1)
    return move.apply(sequence)


@traced("optimize.qoh_annealing")
def qoh_simulated_annealing(
    instance: QOHInstance,
    initial_temperature: float = 12.0,
    cooling: float = 0.9,
    steps_per_temperature: int = 12,
    min_temperature: float = 0.1,
    rng: RngLike = None,
) -> Optional[PlanResult]:
    """Anneal over sequences; each state costed by the decomposition DP.

    Returns None when no feasible sequence exists.
    """
    n = instance.num_relations
    require(n >= 2, "need at least two relations")
    generator = make_rng(rng)
    evaluator = QOHEvaluator(instance)
    current_sequence = _initial_sequence(instance, generator)
    if current_sequence is None:
        return None
    current_plan = evaluator.best_plan(current_sequence)
    explored = 1
    # The random start may be infeasible (oversized relation displaced);
    # retry a few times before giving up.
    for _ in range(20):
        if current_plan is not None:
            break
        current_sequence = _initial_sequence(instance, generator)
        current_plan = evaluator.best_plan(current_sequence)
        explored += 1
    if current_plan is None:
        return None

    current_log = log2_of(current_plan.cost)
    best_plan = current_plan
    best_log = current_log

    temperature = initial_temperature
    while temperature > min_temperature:
        for _ in range(steps_per_temperature):
            candidate_sequence = _neighbor(current_plan.sequence, generator)
            candidate_plan = evaluator.best_plan(candidate_sequence)
            explored += 1
            if candidate_plan is None:
                continue
            delta = log2_of(candidate_plan.cost) - current_log
            if delta <= 0 or generator.random() < math.exp(-delta / temperature):
                current_plan = candidate_plan
                current_log = log2_of(candidate_plan.cost)
                if current_log < best_log:
                    best_plan = current_plan
                    best_log = current_log
        temperature *= cooling
    # explored counts every sequence the annealer costed.
    return replace(best_plan, optimizer="qoh-annealing", explored=explored)
