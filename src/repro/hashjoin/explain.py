"""Human-readable execution plans for QO_H pipeline decompositions.

Renders a plan pipeline by pipeline: the memory split across the hash
tables, which joins are starved into hybrid-hash partitioning, and the
materialization points — the moving parts of the Section 2.2 execution
model and of Lemma 10's allocation argument.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.hashjoin.instance import QOHInstance
from repro.core.results import PlanResult
from repro.hashjoin.pipeline import pipeline_allocation
from repro.utils.lognum import Numeric, log2_of


def _format_number(value: Numeric) -> str:
    try:
        log2 = log2_of(value)
    except (TypeError, ValueError):
        return str(value)
    if log2 < 40:
        return str(value)
    return f"2^{log2:.1f}"


def explain_plan(
    instance: QOHInstance,
    plan: PlanResult,
    relation_names: Sequence[str] | None = None,
) -> str:
    """Render a QO_H plan (sequence + decomposition) as text."""
    if relation_names is None:
        relation_names = [f"R{r}" for r in range(instance.num_relations)]
    sequence = plan.sequence
    intermediates = instance.intermediate_sizes(sequence)

    lines = [
        f"outermost stream: {relation_names[sequence[0]]}"
        f"  ({_format_number(intermediates[0])} pages)",
        f"memory per pipeline: {_format_number(instance.memory)} pages",
    ]
    for number, pipeline in enumerate(plan.decomposition.pipelines, start=1):
        allocation = pipeline_allocation(instance, sequence, pipeline)
        lines.append(
            f"pipeline {number}: joins J_{pipeline.first_join}"
            f"..J_{pipeline.last_join}"
            f"  (reads {_format_number(intermediates[pipeline.first_join - 1])},"
            f" writes {_format_number(intermediates[pipeline.last_join])})"
        )
        if allocation is None:
            lines.append("  INFEASIBLE: hjmin floors exceed memory")
            continue
        for offset in range(pipeline.num_joins):
            join_index = pipeline.first_join + offset
            inner = sequence[join_index]
            starved = offset in allocation.starved
            note = "  [starved: hybrid-hash partitioning]" if starved else ""
            lines.append(
                f"  build hash({relation_names[inner]}):"
                f" {_format_number(allocation.allocation[offset])} pages,"
                f" h = {_format_number(allocation.join_costs[offset])}{note}"
            )
    lines.append(f"total cost = {_format_number(plan.cost)}")
    return "\n".join(lines)
