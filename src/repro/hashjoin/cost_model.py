"""The hybrid hash-join I/O cost abstraction (paper Section 2.2.2).

``h(m, b_R, b_S) = (b_R + b_S) * g(m, b_S) + b_S`` for
``m >= hjmin(b_S)``, where:

* ``hjmin(b) = ceil(b ** psi)`` for a constant ``0 < psi < 1`` — the
  minimum memory for the join to be feasible (paper: Theta(b^psi));
* ``g`` is continuous, linear and decreasing in ``m`` on
  ``[hjmin(b), b]``, zero for ``m >= b`` and Theta(1) at
  ``m = hjmin(b)``.

We instantiate ``g(m, b) = g_scale * (b - m) / (b - hjmin(b))``
(clamped at zero), so ``h(hjmin(b), b_R, b_S) = Theta(b_R + b_S)``
exactly as the paper requires.  All arithmetic is exact (``Fraction``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from repro.utils.validation import require

ExactReal = Union[int, Fraction]


def ceil_root(value: int, degree: int) -> int:
    """``ceil(value ** (1/degree))`` for non-negative big ints."""
    require(value >= 0, "ceil_root needs a non-negative value")
    require(degree >= 1, "degree must be at least 1")
    if value in (0, 1) or degree == 1:
        return value
    # Newton-style bisection on integers.
    low, high = 1, 1
    while high**degree < value:
        high <<= 1
    while low < high:
        mid = (low + high) // 2
        if mid**degree >= value:
            high = mid
        else:
            low = mid + 1
    return low


@dataclass(frozen=True)
class HashJoinCostModel:
    """Concrete instantiation of the paper's abstract cost functions.

    Attributes:
        psi: exponent of the minimum-memory law, ``hjmin(b) = ceil(b**psi)``.
            Stored as a ``Fraction`` with small denominator so integer
            roots stay exact.
        g_scale: the Theta(1) value of ``g`` at minimum memory.
    """

    psi: Fraction = Fraction(1, 2)
    g_scale: int = 1

    def __post_init__(self) -> None:
        require(0 < self.psi < 1, "psi must lie strictly in (0, 1)")
        require(self.g_scale > 0, "g_scale must be positive")

    def hjmin(self, inner_pages: int) -> int:
        """Minimum memory to hash-join against an inner of ``b`` pages."""
        require(inner_pages >= 0, "inner_pages must be non-negative")
        powered = inner_pages ** self.psi.numerator
        return ceil_root(powered, self.psi.denominator)

    def g(self, memory: ExactReal, inner_pages: int) -> Fraction:
        """The partitioning-overhead factor; linear decreasing in memory."""
        floor = self.hjmin(inner_pages)
        require(memory >= floor, "memory below hjmin: join is infeasible")
        if memory >= inner_pages:
            return Fraction(0)
        span = inner_pages - floor
        if span <= 0:
            return Fraction(0)
        return Fraction(self.g_scale) * (Fraction(inner_pages) - Fraction(memory)) / span

    def h(
        self, memory: ExactReal, outer_pages: ExactReal, inner_pages: int
    ) -> Fraction:
        """I/O cost of one hybrid hash join (outer streams, inner on disk)."""
        overhead = self.g(memory, inner_pages)
        return (
            Fraction(outer_pages) + inner_pages
        ) * overhead + inner_pages

    def is_feasible(self, memory: ExactReal, inner_pages: int) -> bool:
        """True when ``memory`` satisfies the ``hjmin`` floor."""
        return memory >= self.hjmin(inner_pages)
