"""Pipelines and pipeline decompositions (paper Section 2.2.1).

A decomposition partitions the join operations ``J_1 .. J_{n-1}`` of a
sequence into contiguous fragments.  Fragment ``P(i, k)`` costs:

1. reading its outer input ``N_{i-1}`` (the previous fragment's
   materialized output, or the first base relation);
2. the hash-join costs ``sum_j h(m_j, N_{j-1}, t_inner_j)`` under the
   optimal memory allocation;
3. writing its output ``N_k`` to disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.hashjoin.allocation import AllocationResult, allocate_memory
from repro.hashjoin.instance import QOHInstance
from repro.utils.validation import require


@dataclass(frozen=True)
class Pipeline:
    """Fragment ``P(Z, first_join, last_join)`` — 1-based join indices."""

    first_join: int
    last_join: int

    def __post_init__(self) -> None:
        require(
            1 <= self.first_join <= self.last_join,
            "pipeline bounds must satisfy 1 <= i <= k",
        )

    @property
    def num_joins(self) -> int:
        return self.last_join - self.first_join + 1


@dataclass(frozen=True)
class PipelineDecomposition:
    """A partition of joins ``1 .. n-1`` into contiguous pipelines."""

    pipelines: Tuple[Pipeline, ...]

    @classmethod
    def from_breaks(cls, num_joins: int, breaks: Sequence[int]) -> "PipelineDecomposition":
        """Build from the sorted positions after which to materialize.

        ``breaks`` lists join indices ``k`` where a fragment ends,
        excluding the final join (which always ends the last fragment).
        """
        require(num_joins >= 1, "need at least one join")
        boundaries = sorted(set(breaks))
        for k in boundaries:
            require(1 <= k < num_joins, f"break {k} out of range")
        pipelines: List[Pipeline] = []
        start = 1
        for k in boundaries:
            pipelines.append(Pipeline(start, k))
            start = k + 1
        pipelines.append(Pipeline(start, num_joins))
        return cls(tuple(pipelines))

    @classmethod
    def single(cls, num_joins: int) -> "PipelineDecomposition":
        """One pipeline spanning all joins."""
        return cls.from_breaks(num_joins, [])

    @classmethod
    def fully_materialized(cls, num_joins: int) -> "PipelineDecomposition":
        """Every join in its own pipeline (materialize everything)."""
        return cls.from_breaks(num_joins, list(range(1, num_joins)))

    def __post_init__(self) -> None:
        previous_end = 0
        for pipeline in self.pipelines:
            require(
                pipeline.first_join == previous_end + 1,
                "pipelines must tile the joins contiguously",
            )
            previous_end = pipeline.last_join

    @property
    def num_joins(self) -> int:
        return self.pipelines[-1].last_join


def pipeline_cost(
    instance: QOHInstance,
    sequence: Sequence[int],
    pipeline: Pipeline,
    intermediates: Optional[Sequence[Fraction]] = None,
) -> Optional[Fraction]:
    """Cost of one fragment under the optimal memory allocation.

    Returns None when the fragment is infeasible (its ``hjmin`` floors
    exceed the memory budget).
    """
    if intermediates is None:
        intermediates = instance.intermediate_sizes(sequence)
    i, k = pipeline.first_join, pipeline.last_join
    require(k < instance.num_relations, "pipeline exceeds the join count")
    outer_sizes = [intermediates[j - 1] for j in range(i, k + 1)]
    inner_sizes = [instance.size(sequence[j]) for j in range(i, k + 1)]
    allocation = allocate_memory(
        instance.model, outer_sizes, inner_sizes, instance.memory
    )
    if allocation is None:
        return None
    read_input = intermediates[i - 1]
    write_output = intermediates[k]
    return read_input + allocation.total_join_cost + write_output


def decomposition_cost(
    instance: QOHInstance,
    sequence: Sequence[int],
    decomposition: PipelineDecomposition,
) -> Optional[Fraction]:
    """Total cost of a sequence under a given decomposition.

    None when any fragment is infeasible.
    """
    require(
        decomposition.num_joins == instance.num_relations - 1,
        "decomposition must cover exactly n-1 joins",
    )
    intermediates = instance.intermediate_sizes(sequence)
    total = Fraction(0)
    for pipeline in decomposition.pipelines:
        cost = pipeline_cost(instance, sequence, pipeline, intermediates)
        if cost is None:
            return None
        total += cost
    return total


def pipeline_allocation(
    instance: QOHInstance,
    sequence: Sequence[int],
    pipeline: Pipeline,
) -> Optional[AllocationResult]:
    """Expose the optimal allocation for inspection (Lemma 10 checks)."""
    intermediates = instance.intermediate_sizes(sequence)
    i, k = pipeline.first_join, pipeline.last_join
    outer_sizes = [intermediates[j - 1] for j in range(i, k + 1)]
    inner_sizes = [instance.size(sequence[j]) for j in range(i, k + 1)]
    return allocate_memory(
        instance.model, outer_sizes, inner_sizes, instance.memory
    )
