"""The QO_H instance model (paper Section 2.2).

``(n, Q=(V,E), S, T, M)``: query graph, selectivities and sizes exactly
as in QO_N, plus the total memory ``M`` available to each pipeline and
the concrete :class:`~repro.hashjoin.cost_model.HashJoinCostModel`.

Relation sizes must be integers (page counts); selectivities are
``Fraction``; intermediate sizes follow the same product estimate
``N(X)`` as QO_N.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.graphs.graph import Graph
from repro.hashjoin.cost_model import HashJoinCostModel
from repro.utils.validation import check_index, require

EdgeKey = Tuple[int, int]


def _edge_key(i: int, j: int) -> EdgeKey:
    return (i, j) if i < j else (j, i)


class QOHInstance:
    """A QO_H problem instance."""

    # __weakref__ so caches can memoize per live instance without
    # pinning it (see repro.runtime.costcache / repro.perf.kernels).
    __slots__ = (
        "_graph", "_sizes", "_selectivities", "_memory", "_model",
        "__weakref__",
    )

    def __init__(
        self,
        graph: Graph,
        sizes: Sequence[int],
        selectivities: Mapping[EdgeKey, Fraction],
        memory: int,
        model: HashJoinCostModel = HashJoinCostModel(),
    ) -> None:
        n = graph.num_vertices
        require(len(sizes) == n, f"need {n} sizes, got {len(sizes)}")
        for index, size in enumerate(sizes):
            require(
                isinstance(size, int) and size > 0,
                f"relation size t_{index} must be a positive int (pages)",
            )
        require(memory > 0, "memory M must be positive")
        normalized: Dict[EdgeKey, Fraction] = {}
        for (i, j), value in selectivities.items():
            check_index(i, n, "selectivity index")
            check_index(j, n, "selectivity index")
            require(graph.has_edge(i, j), f"selectivity on non-edge ({i},{j})")
            fraction = Fraction(value)
            require(0 < fraction <= 1, f"selectivity {fraction} out of (0,1]")
            normalized[_edge_key(i, j)] = fraction
        for edge in graph.edges:
            require(edge in normalized, f"missing selectivity for edge {edge}")
        self._graph = graph
        self._sizes = tuple(sizes)
        self._selectivities = normalized
        self._memory = memory
        self._model = model

    # -- accessors ---------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def num_relations(self) -> int:
        return self._graph.num_vertices

    @property
    def sizes(self) -> Tuple[int, ...]:
        return self._sizes

    @property
    def memory(self) -> int:
        return self._memory

    @property
    def model(self) -> HashJoinCostModel:
        return self._model

    def size(self, relation: int) -> int:
        return self._sizes[relation]

    def selectivity(self, i: int, j: int) -> Fraction:
        if not self._graph.has_edge(i, j):
            return Fraction(1)
        return self._selectivities[_edge_key(i, j)]

    def hjmin(self, relation: int) -> int:
        """Minimum memory to build a hash table on ``relation``."""
        return self._model.hjmin(self._sizes[relation])

    def __repr__(self) -> str:
        return (
            f"QOHInstance(n={self.num_relations}, "
            f"m={self._graph.num_edges}, M={self._memory})"
        )

    # -- intermediate sizes -------------------------------------------
    def intermediate_sizes(self, sequence: Sequence[int]) -> List[Fraction]:
        """``[N_0, N_1 .. N_{n-1}]`` for the sequence.

        ``N_0`` is the size of the first relation (the outermost
        stream of the first pipeline); ``N_i`` for ``i >= 1`` is the
        output size of join ``J_i``.
        """
        n = self.num_relations
        require(
            len(sequence) == n and sorted(sequence) == list(range(n)),
            f"join sequence must be a permutation of range({n})",
        )
        sizes: List[Fraction] = [Fraction(self.size(sequence[0]))]
        current = sizes[0]
        for position in range(1, n):
            incoming = sequence[position]
            current = current * self.size(incoming)
            for earlier in sequence[:position]:
                selectivity = self.selectivity(earlier, incoming)
                if selectivity != 1:
                    current = current * selectivity
            sizes.append(current)
        return sizes
